//! MHP explorer: the paper's Figure 8 interleaving-analysis example.
//!
//! ```text
//! cargo run --example mhp_explorer
//! ```
//!
//! Builds the Figure 8 program, prints the thread relations (spawning,
//! joining, siblings, happens-before) and the context-sensitive
//! may-happen-in-parallel facts the interleaving analysis computes.

use fsam_andersen::PreAnalysis;
use fsam_ir::icfg::Icfg;
use fsam_ir::parse::parse_module;
use fsam_ir::StmtKind;
use fsam_threads::flow::precompute_contexts;
use fsam_threads::mhp::MhpOracle;
use fsam_threads::{Interleaving, ThreadModel};

const PROGRAM: &str = r#"
// Figure 8 of the FSAM paper: t0 forks t1 (foo1) and t2 (foo2);
// t1 forks and fully joins t3 (bar); bar is also *called* from foo2.
global g

func bar() {
entry:
  s5 = &g
  ret
}
func foo1() {
entry:
  t3 = fork bar()
  join t3
  ret
}
func foo2() {
entry:
  call bar()
  ret
}
func main() {
entry:
  s1 = &g
  t1 = fork foo1()
  s2 = &g
  join t1
  t2 = fork foo2()
  s3 = &g
  join t2
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(PROGRAM)?;
    let pre = PreAnalysis::run(&module);
    let icfg = Icfg::build(&module, pre.call_graph());
    let tm = ThreadModel::build(&module, &pre, &icfg);
    let ctxs = precompute_contexts(&icfg, pre.call_graph(), &tm);
    let inter = Interleaving::compute(&module, &icfg, &pre, &tm, &ctxs);

    println!("== thread relations (paper Fig 8(b)) ==");
    for ti in tm.threads() {
        let spawner = ti
            .spawner
            .map(|s| format!("{s:?}"))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "  {:?}: routine={:<6} spawner={:<4} multi-forked={}",
            ti.id,
            module.func(ti.routine).name,
            spawner,
            ti.multi_forked
        );
    }
    println!("\n  siblings / happens-before:");
    for a in tm.threads() {
        for b in tm.threads() {
            if a.id < b.id && tm.are_siblings(a.id, b.id) {
                let hb_ab = tm.happens_before(&icfg, a.id, b.id);
                let hb_ba = tm.happens_before(&icfg, b.id, a.id);
                let rel = if hb_ab {
                    format!("{:?} > {:?}", a.id, b.id)
                } else if hb_ba {
                    format!("{:?} > {:?}", b.id, a.id)
                } else {
                    "unordered".to_owned()
                };
                println!("    {:?} ~ {:?}: {rel}", a.id, b.id);
            }
        }
    }

    // Collect the named marker statements (s1, s2, s3, s5).
    let marker = |name: &str| {
        module
            .stmts()
            .find(|(_, s)| match &s.kind {
                StmtKind::Addr { dst, .. } => module.var(*dst).name == name,
                _ => false,
            })
            .map(|(id, _)| id)
            .expect("marker exists")
    };
    let markers = ["s1", "s2", "s3", "s5"];

    println!("\n== I(t, c, s): threads alive in parallel (paper Fig 8(c)) ==");
    for &m in &markers {
        let sid = marker(m);
        for (t, c) in inter.instances(sid) {
            let alive = inter
                .alive_at(&icfg, t, c, sid)
                .map(|set| format!("{:?}", set.iter().collect::<Vec<_>>()))
                .unwrap_or_default();
            println!("  I({t:?}, {}, {m}) = {alive}", ctxs.display(c));
        }
    }

    println!("\n== MHP pairs among markers (paper Fig 8(d)) ==");
    for &a in &markers {
        for &b in &markers {
            if a < b && inter.mhp_stmt(marker(a), marker(b)) {
                println!("  {a} || {b}");
            }
        }
    }
    Ok(())
}

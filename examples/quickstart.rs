//! Quickstart: analyze the paper's Figure 1(a) program with the staged
//! [`Pipeline`] API.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small multithreaded program in the FIR textual syntax, runs the
//! full FSAM pipeline and prints flow-sensitive points-to sets. The store
//! `*p = q` in the forked thread interferes with `c = *p` in main, so
//! `pt(c) = {y, z}` — dropping the interference analyses would lose the
//! soundness (or the precision) the paper's Figure 1 walks through.
//!
//! The example then re-runs the three Figure 12 ablations through the *same*
//! pipeline: the Andersen pre-analysis, ICFG/thread model, context table and
//! thread-oblivious SVFG are each built exactly once and shared by all four
//! configurations.

use fsam::{PhaseConfig, Pipeline};
use fsam_ir::parse::parse_module;
use fsam_query::QueryEngine;

const PROGRAM: &str = r#"
// Figure 1(a) of the FSAM paper (CGO'16).
global x
global y
global z

func foo() {
entry:
  p2 = &x
  q = &y
  store p2, q        // *p = q   (thread t)
  ret
}

func main() {
entry:
  p = &x
  r = &z
  t = fork foo()     // spawn t
  store p, r         // *p = r
  c = load p         // c = *p
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(PROGRAM)?;
    fsam_ir::verify::verify_module(&module).expect("program is well-formed");

    // Stage the pipeline once; each `run` materializes (or reuses) the
    // phases its configuration needs.
    let pipeline = Pipeline::for_module(&module);
    let fsam = pipeline.run(PhaseConfig::full());

    println!("== FSAM quickstart ==");
    println!("threads discovered: {}", fsam.tm.len());
    for ti in fsam.tm.threads() {
        println!("  {:?} -> routine {}", ti.id, module.func(ti.routine).name);
    }

    // Queries go through the demand-driven engine: a frozen snapshot of
    // the solved run that could equally have been loaded from disk.
    let engine = QueryEngine::from_fsam(&module, &fsam);
    println!("\nflow-sensitive points-to sets (main):");
    for var in ["p", "r", "t", "c"] {
        println!("  pt({var}) = {:?}", engine.pt_names("main", var).unwrap());
    }

    println!("\npipeline statistics:");
    println!("  thread-aware def-use edges: {}", fsam.vf_stats.edges);
    println!(
        "  strong updates:             {}",
        fsam.result.stats.strong_updates
    );
    println!(
        "  weak updates:               {}",
        fsam.result.stats.weak_updates
    );
    println!("  total time:                 {:?}", fsam.times.total());
    println!("  analysis memory:            {}", fsam.memory());

    assert_eq!(engine.pt_names("main", "c").unwrap(), ["y", "z"]);
    println!("\npt(c) = {{y, z}} — matches the paper's Figure 1(a).");

    // Reusing stages across ablations: the three Figure 12 ablations ride
    // the stages the full run already built — only the per-configuration
    // phases (value-flow, edge insertion, sparse solve) run again.
    println!("\n== Figure 12 ablations on shared stages ==");
    for cfg in [
        PhaseConfig::no_interleaving(),
        PhaseConfig::no_value_flow(),
        PhaseConfig::no_lock(),
    ] {
        let ablated = pipeline.run(cfg);
        let ablated_engine = QueryEngine::from_fsam(&module, &ablated);
        println!(
            "  {cfg:?}: {} thread-aware edges, pt(c) = {:?}",
            ablated.vf_stats.edges,
            ablated_engine.pt_names("main", "c").unwrap()
        );
    }
    let counts = pipeline.build_counts();
    println!(
        "\nstage builds across all four runs: pre-analysis {}, ICFG {}, SVFG {}",
        counts.pre_analysis, counts.icfg, counts.svfg
    );
    assert_eq!(counts.pre_analysis, 1, "the pre-analysis ran exactly once");
    assert_eq!(
        counts.svfg, 1,
        "the thread-oblivious SVFG was built exactly once"
    );
    Ok(())
}

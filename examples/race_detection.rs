//! Race detection: the client analysis the paper names as FSAM's first
//! application (§1, §6).
//!
//! ```text
//! cargo run --example race_detection
//! ```
//!
//! A small worker-pool program with one seeded bug: the hit counter is
//! updated under a lock by the workers but read without the lock by the
//! logger thread. The `fsam-lint` registry combines FSAM's flow-sensitive
//! aliasing, the interleaving analysis (MHP) and the lock analysis
//! (locksets) through its staged reducer, so the properly locked accesses
//! produce no reports.

use fsam::Fsam;
use fsam_ir::parse::parse_module;
use fsam_lint::{render_text, LintContext, Registry};
use fsam_query::QueryEngine;

const PROGRAM: &str = r#"
global hits        // shared counter (locked by workers, bug: logger reads raw)
global config      // shared read-only configuration
global mu          // the mutex

func worker(cfg) {
entry:
  c = load cfg          // read-only shared access: no race with other reads
  p = &hits
  l = &mu
  lock l
  v = load p
  store p, v            // hits update, properly locked
  unlock l
  ret
}

func logger(cfg) {
entry:
  p = &hits
  snapshot = load p     // BUG: unlocked read of hits
  ret
}

func main() {
entry:
  cf = &config
  seed = &config
  store cf, seed        // initialize config before any thread exists
  t1 = fork worker(cf)
  t2 = fork worker(cf)
  t3 = fork logger(cf)
  join t1
  join t2
  join t3
  final = load cf       // after all joins: ordered, not a race
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(PROGRAM)?;
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let report = Registry::with_default_checkers().run(&cx);

    println!("== concurrency checkers over FSAM results ==");
    println!("threads: {}", fsam.tm.len());
    println!(
        "lock-release spans: {}",
        fsam.lock.as_ref().map_or(0, |l| l.span_count)
    );
    let stats = cx.reduction().stats;
    println!(
        "reducer funnel: {} candidates -> {} shared -> {} MHP -> {} HB -> {} lockset -> {} confirmed",
        stats.candidates,
        stats.after_shared(),
        stats.after_mhp(),
        stats.after_hb(),
        stats.after_lockset(),
        stats.confirmed,
    );
    println!();
    print!("{}", render_text(&module, &report));

    // The seeded bug — and only it — must be found: the logger's unlocked
    // read races with the workers' locked writes.
    assert_eq!(
        report.count_of("FL0001"),
        1,
        "exactly the seeded race: {report:?}"
    );
    let diag = report.with_code("FL0001").next().unwrap();
    assert!(diag.message.contains("hits"), "{}", diag.message);
    println!("\nexactly the seeded `hits` race was reported — locked accesses are clean.");
    Ok(())
}

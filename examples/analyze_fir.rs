//! Analyze a FIR source file from the command line.
//!
//! ```text
//! cargo run --example analyze_fir -- path/to/program.fir [--races] [--report]
//! cargo run --example analyze_fir            # runs on a built-in demo
//! ```
//!
//! Parses the program, verifies it, runs the full FSAM pipeline and prints
//! the flow-sensitive points-to set of every variable. `--races` also runs
//! the `fsam-lint` concurrency checkers; `--report` prints per-phase
//! statistics.

use fsam::Fsam;
use fsam_ir::parse::parse_module;
use fsam_lint::{render_text, LintContext, Registry};
use fsam_query::QueryEngine;

const DEMO: &str = r#"
// A worker pool incrementing a shared counter under a lock, with an
// unsynchronized reader.
global counter
global mu

func worker(c) {
entry:
  l = &mu
  lock l
  v = load c
  store c, v
  unlock l
  ret
}

func main() {
entry:
  c = &counter
  t1 = fork worker(c)
  t2 = fork worker(c)
  snapshot = load c     // races with the workers' stores
  join t1
  join t2
  final = load c        // ordered: after both joins
  ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let want_races = args.iter().any(|a| a == "--races");
    let want_report = args.iter().any(|a| a == "--report");
    let path = args.iter().skip(1).find(|a| !a.starts_with("--"));

    let source = match path {
        Some(p) => std::fs::read_to_string(p)?,
        None => {
            println!("(no file given; analyzing the built-in demo)\n");
            DEMO.to_owned()
        }
    };

    let module = match parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            // Display form carries the line:column position.
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(errors) = fsam_ir::verify::verify_module(&module) {
        eprintln!("program is ill-formed:");
        for e in errors.iter().take(10) {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }

    let fsam = Fsam::analyze(&module);

    println!("== flow-sensitive points-to sets ==");
    for func in module.funcs() {
        if func.is_external {
            continue;
        }
        for v in module.var_ids().filter(|&v| module.var(v).func == func.id) {
            let pts = fsam.result.pt_var(v);
            if pts.is_empty() {
                continue;
            }
            let names: Vec<String> = pts
                .iter()
                .map(|o| fsam.pre.objects().display_name(&module, o))
                .collect();
            println!("  pt({}) = {{{}}}", module.var_name(v), names.join(", "));
        }
    }

    if want_races || path.is_none() {
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let report = Registry::with_default_checkers().run(&cx);
        println!("\n== concurrency checkers ==");
        print!("{}", render_text(&module, &report));
    }

    if want_report {
        println!("\n{}", fsam.report(&module));
        let plan = fsam::plan_instrumentation(&module, &fsam);
        println!(
            "ThreadSanitizer plan: instrument {} accesses, skip {} ({:.0}% reduction)",
            plan.instrument.len(),
            plan.skip.len(),
            plan.reduction() * 100.0
        );
    }
    Ok(())
}

//! Cold full-pipeline wall time per suite program: the probe behind the
//! disabled-tracing overhead numbers in EXPERIMENTS.md. Each program is
//! staged, warmed once, then timed over five cold pipelines (median
//! reported). Run the same probe on a build without the trace
//! instrumentation sites for the A/B comparison.
//!
//! ```text
//! cargo run --release --example overhead_probe
//! ```

use std::time::Instant;

use fsam::{PhaseConfig, Pipeline};
use fsam_suite::{Program, Scale};

fn main() {
    let scale = Scale(0.32);
    let samples = 5;
    for p in Program::all() {
        let m = p.generate(scale);
        // warm-up
        std::hint::black_box(Pipeline::for_module(&m).run(PhaseConfig::full()));
        let mut times = Vec::new();
        for _ in 0..samples {
            let t0 = Instant::now();
            std::hint::black_box(Pipeline::for_module(&m).run(PhaseConfig::full()));
            times.push(t0.elapsed());
        }
        times.sort();
        println!(
            "{:<14} median {:.3} ms",
            p.name(),
            times[times.len() / 2].as_secs_f64() * 1e3
        );
    }
}

//! FSAM vs. the NonSparse baseline on one generated benchmark — a single
//! row of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example compare_nonsparse [program] [scale]
//! ```
//!
//! `program` is a Table 1 name (default `bodytrack`); `scale` is a size
//! multiplier (default 0.3). Prints analysis time and analysis-state memory
//! for both analyses, plus the precision relation (FSAM must be at least as
//! precise as the baseline on every variable).

use std::time::{Duration, Instant};

use fsam::{NonSparseOutcome, PhaseConfig, Pipeline};
use fsam_suite::{Program, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bodytrack".to_owned());
    let scale = Scale(
        std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.3),
    );
    let program = Program::all()
        .into_iter()
        .find(|p| p.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown program `{name}`; use one of:");
            for p in Program::all() {
                eprintln!("  {}", p.name());
            }
            std::process::exit(1);
        });

    println!("generating {} at scale {:.2}...", program.name(), scale.0);
    let module = program.generate(scale);
    println!(
        "  {} IR statements, {} functions",
        module.stmt_count(),
        module.func_count()
    );

    // One staged pipeline: FSAM and the NonSparse baseline share the
    // pre-analysis and ICFG/thread-model stages.
    let pipeline = Pipeline::for_module(&module);
    let t0 = Instant::now();
    let fsam = pipeline.run(PhaseConfig::full());
    let fsam_time = t0.elapsed();
    let fsam_mem = fsam.memory();

    let t0 = Instant::now();
    let outcome = pipeline.run_nonsparse(Some(Duration::from_secs(300)));
    let ns_time = t0.elapsed();

    println!("\n{:<12} {:>12} {:>14}", "", "time", "memory");
    println!(
        "{:<12} {:>12.2?} {:>11.2} MiB",
        "FSAM",
        fsam_time,
        fsam_mem.total_mib()
    );
    match outcome {
        NonSparseOutcome::Done(res) => {
            println!(
                "{:<12} {:>12.2?} {:>11.2} MiB",
                "NonSparse",
                ns_time,
                res.pts_bytes() as f64 / (1024.0 * 1024.0)
            );
            println!(
                "\nspeedup: {:.1}x   memory ratio: {:.1}x",
                ns_time.as_secs_f64() / fsam_time.as_secs_f64(),
                res.pts_bytes() as f64 / fsam_mem.total_bytes() as f64
            );
            // Precision: both refine Andersen; report the average set sizes
            // (on multithreaded programs neither flow-sensitive analysis
            // dominates the other pointwise — see DESIGN.md).
            let mut fsam_total = 0usize;
            let mut ns_total = 0usize;
            for v in module.var_ids() {
                assert!(
                    fsam.result.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                    "FSAM must refine Andersen on {}",
                    module.var_name(v)
                );
                assert!(
                    res.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                    "NonSparse must refine Andersen on {}",
                    module.var_name(v)
                );
                fsam_total += fsam.result.pt_var(v).len();
                ns_total += res.pt_var(v).len();
            }
            println!(
                "precision: avg |pt(v)| = {:.2} (FSAM) vs {:.2} (NonSparse) over {} variables",
                fsam_total as f64 / module.var_count() as f64,
                ns_total as f64 / module.var_count() as f64,
                module.var_count()
            );
        }
        NonSparseOutcome::OutOfTime { elapsed, bytes, .. } => {
            println!(
                "{:<12} {:>12} {:>11.2} MiB   (gave up after {:.1?})",
                "NonSparse",
                "OOT",
                bytes as f64 / (1024.0 * 1024.0),
                elapsed
            );
        }
    }
}

//! # fsam-repro — facade crate for the FSAM reproduction workspace
//!
//! Re-exports the public API of every workspace crate; the repository-level
//! integration tests and examples build against this crate.

#![forbid(unsafe_code)]

pub use fsam;
pub use fsam_andersen as andersen;
pub use fsam_ir as ir;
pub use fsam_mssa as mssa;
pub use fsam_pts as pts;
pub use fsam_query as query;
pub use fsam_server as server;
pub use fsam_suite as suite;
pub use fsam_threads as threads;

//! Dynamic soundness validation: concrete executions under many randomized
//! schedules must observe only points-to facts the static analyses report
//! (`observed(v) ⊆ pt(v)`). This reproduces the role of the paper
//! artifact's "micro-benchmarks to validate pointer analysis results".

use fsam::{nonsparse, Fsam, NonSparseOutcome};
use fsam_ir::interp::{self, InterpConfig};
use fsam_ir::rng::SmallRng;
use fsam_ir::Module;
use fsam_suite::{Program, Scale};

fn validate(module: &Module, seeds: std::ops::Range<u64>) {
    let fsam = Fsam::analyze(module);
    let ns = match nonsparse::run(module, &fsam.pre, &fsam.icfg, &fsam.tm, None) {
        NonSparseOutcome::Done(r) => Some(r),
        NonSparseOutcome::OutOfTime { .. } => None,
    };
    // The interpreter tracks base objects (fields share their base's
    // runtime storage), so the comparison happens at root-object
    // granularity: a static set covers an observed base object if it
    // contains the base or any of its field objects.
    let om = fsam.pre.objects();
    let covers =
        |set: &fsam_pts::PtsSet, base: fsam_pts::MemId| set.iter().any(|m| om.root(m) == base);
    for seed in seeds {
        let obs = interp::run(
            module,
            InterpConfig {
                seed,
                ..Default::default()
            },
        );
        for (&v, objs) in &obs.var_points_to {
            for &obj in objs {
                let base = om.base(obj);
                assert!(
                    covers(fsam.result.pt_var(v), base),
                    "seed {seed}: FSAM missed observed fact {} -> {} (static: {:?})",
                    module.var_name(v),
                    module.obj(obj).name,
                    fsam.result.pt_var(v),
                );
                assert!(
                    covers(fsam.pre.pt_var(v), base),
                    "seed {seed}: Andersen missed observed fact {} -> {}",
                    module.var_name(v),
                    module.obj(obj).name,
                );
                if let Some(ns) = &ns {
                    assert!(
                        covers(ns.pt_var(v), base),
                        "seed {seed}: NonSparse missed observed fact {} -> {}",
                        module.var_name(v),
                        module.obj(obj).name,
                    );
                }
            }
        }
    }
}

/// The paper's Figure 1(a)/(c) programs under 64 schedules each.
#[test]
fn figure_programs_validate_dynamically() {
    for src in [
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t = fork foo()
          store p, r
          c = load p
          join t
          d = load p
          ret
        }
        "#,
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          store p, r
          t = fork foo()
          join t
          c = load p
          ret
        }
        "#,
    ] {
        let module = fsam_ir::parse::parse_module(src).unwrap();
        validate(&module, 0..64);
    }
}

/// Every suite benchmark, executed under a handful of schedules.
#[test]
fn suite_programs_validate_dynamically() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        validate(&module, 0..6);
    }
}

/// Random mill programs with fork/join/locks validate dynamically
/// (12 deterministic seeded cases, formerly a proptest).
#[test]
fn random_programs_validate_dynamically() {
    let mut cases = SmallRng::seed_from_u64(0x5EED_CA5E);
    for _ in 0..12 {
        let seed = cases.next_u64();
        let body = cases.gen_range(10usize..50);
        let workers = cases.gen_range(1usize..3);
        random_program_validates_dynamically(seed, body, workers);
    }
}

fn random_program_validates_dynamically(seed: u64, body: usize, workers: usize) {
    {
        use fsam_ir::ModuleBuilder;
        use fsam_suite::mill::{mixed_body, Mill};

        let mut mb = ModuleBuilder::new();
        let g1 = mb.global("g1");
        let g2 = mb.global("g2");
        let lk = mb.global("lk");
        let mut ids = Vec::new();
        for w in 0..workers {
            let id = mb.declare_func(&format!("worker{w}"), &["arg"]);
            let mut f = mb.define_func(id);
            let local = f.local(&format!("scratch{w}"));
            let lptr = f.addr("l", lk);
            {
                let mut mill = Mill::new(&mut f, vec![g1, g2], vec![local], seed ^ w as u64, "w");
                mill.locked_region(lptr, 3);
                mixed_body(&mut mill, body, seed.wrapping_add(w as u64));
            }
            f.ret(None);
            f.finish();
            ids.push(id);
        }
        let mut f = mb.func("main", &[]);
        let arg = f.addr("arg", g1);
        let mut handles = Vec::new();
        for (w, &id) in ids.iter().enumerate() {
            handles.push(f.fork(&format!("t{w}"), id, Some(arg)));
        }
        for &h in &handles {
            f.join(h);
        }
        {
            let mut mill = Mill::new(&mut f, vec![g1, g2], vec![], seed ^ 0xAB, "m");
            mixed_body(&mut mill, body / 2, seed ^ 0xCD);
        }
        f.ret(None);
        f.finish();
        let module = mb.build();
        fsam_ir::verify::verify_module(&module).unwrap();
        validate(&module, 0..4);
    }
}

//! End-to-end tests of the tracing tentpole: the pipeline's trace stream
//! agrees with the solver's own statistics, validates against the JSONL
//! schema, explains a points-to fact from the paper's quickstart program,
//! costs nothing when disabled, and pins the exported benchmark key sets
//! against drift.

use std::sync::Arc;

use fsam::{PhaseConfig, Pipeline};
use fsam_ir::parse::parse_module;
use fsam_suite::{Program, Scale};
use fsam_trace::{json, schema, why_points_to, Event, Recorder};

fn counter(events: &[Event], name: &str) -> Option<u64> {
    // Last reading wins (a single run emits each counter once).
    events.iter().rev().find_map(|e| match e {
        Event::Counter { name: n, value, .. } if n == name => Some(*value),
        _ => None,
    })
}

/// The trace stream carries the same solver counters the result struct
/// reports, on more than one suite program.
#[test]
fn solver_trace_counters_match_result_stats_on_suite_programs() {
    for p in [Program::WordCount, Program::Ferret] {
        let module = p.generate(Scale::SMOKE);
        let rec = Arc::new(Recorder::new(1 << 14));
        let pipeline = Pipeline::for_module(&module).with_trace(Arc::clone(&rec));
        let run = pipeline.run(PhaseConfig::full());
        let events = rec.events();
        let s = &run.result.stats;
        let pairs: [(&str, usize); 8] = [
            ("solve.worklist_items", s.processed),
            ("solve.delta_items", s.delta_items),
            ("solve.recompute_items", s.recompute_items),
            ("solve.strong_updates", s.strong_updates),
            ("solve.weak_updates", s.weak_updates),
            ("solve.var_pts_entries", s.var_pts_entries),
            ("solve.def_pts_entries", s.def_pts_entries),
            ("solve.peak_pts_bytes", s.peak_pts_bytes),
        ];
        for (name, want) in pairs {
            assert_eq!(
                counter(&events, name),
                Some(want as u64),
                "{}: {name}",
                p.name()
            );
        }
        assert_eq!(rec.dropped(), 0, "{}: ring sized for a full run", p.name());
    }
}

/// Every event a traced pipeline run records serializes to a JSONL line
/// the strict schema validator accepts, and the span tree is rooted.
#[test]
fn traced_run_exports_valid_jsonl_with_nested_spans() {
    let module = Program::WordCount.generate(Scale::SMOKE);
    let rec = Arc::new(Recorder::new(1 << 14));
    let pipeline = Pipeline::for_module(&module).with_trace(Arc::clone(&rec));
    let _ = pipeline.run(PhaseConfig::full());
    let events = rec.events();
    assert!(!events.is_empty());
    for line in schema::export_jsonl(&events).lines() {
        schema::validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    // The solve span nests under the pipeline.run span.
    let span_of = |name: &str| {
        events.iter().find_map(|e| match e {
            Event::Span {
                id,
                parent,
                name: n,
                ..
            } if n == name => Some((*id, *parent)),
            _ => None,
        })
    };
    let (run_id, run_parent) = span_of("pipeline.run").expect("run span");
    let (_, solve_parent) = span_of("solve").expect("solve span");
    assert_eq!(run_parent, None);
    assert_eq!(solve_parent, Some(run_id));
    // Shared stages were traced too (as roots: they are built once and
    // shared by later runs, so they belong to no single run).
    for stage in ["stage.pre_analysis", "stage.svfg"] {
        assert!(span_of(stage).is_some(), "missing {stage}");
    }
}

/// `why_points_to` on the paper's Figure 1(a) program: the fact
/// `pt(main::c) ∋ y` is only true because of thread interference, so its
/// derivation must ride a `thread` edge back to `q = &y` in the forked
/// function.
#[test]
fn why_points_to_explains_quickstart_fact_through_a_thread_edge() {
    let m = parse_module(
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q      // *p = q (in thread t)
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t = fork foo()
          store p, r       // *p = r
          c = load p       // c = *p
          ret
        }
    "#,
    )
    .unwrap();
    let rec = Arc::new(Recorder::with_explain(1 << 16));
    let pipeline = Pipeline::for_module(&m).with_trace(Arc::clone(&rec));
    let run = pipeline.run(PhaseConfig::full());
    let c = fsam::Fsam::var_named(&m, "main", "c");
    let y = run
        .result
        .pt_var(c)
        .iter()
        .find(|&o| run.pre.objects().display_name(&m, o) == "y")
        .expect("pt(c) contains y");
    let events = rec.events();
    assert_eq!(rec.dropped(), 0);
    let path = why_points_to(&events, c.index() as u64, u64::from(y.raw()))
        .expect("the fact pt(c) ∋ y has a recorded derivation");
    // Valid SVFG path: starts at c, chains src → dst, ends at the seed.
    assert_eq!(
        path.first().unwrap().dst,
        fsam_trace::ExplainNode::Var(c.index() as u64)
    );
    for w in path.windows(2) {
        assert_eq!(w[0].src, Some(w[1].dst), "{path:#?}");
        assert_eq!(w[0].src_obj, w[1].obj, "{path:#?}");
    }
    let last = path.last().unwrap();
    assert_eq!(last.via, "addr", "{path:#?}");
    assert_eq!(last.src, None);
    assert!(
        path.iter().any(|s| s.via == "thread"),
        "y reaches c only across the fork's interference edge: {path:#?}"
    );
    // z, by contrast, arrives without leaving main (sequential store).
    let z = run
        .result
        .pt_var(c)
        .iter()
        .find(|&o| run.pre.objects().display_name(&m, o) == "z")
        .expect("pt(c) contains z");
    let z_path = why_points_to(&events, c.index() as u64, u64::from(z.raw())).expect("derivable");
    assert_eq!(z_path.last().unwrap().via, "addr");
}

/// Tracing off is genuinely free: zero events, zero recorder heap, and
/// the analysis result is bit-identical to an untraced run.
#[test]
fn disabled_tracing_records_nothing_and_changes_nothing() {
    let module = Program::WordCount.generate(Scale::SMOKE);
    let rec = Arc::new(Recorder::disabled());
    let traced = Pipeline::for_module(&module)
        .with_trace(Arc::clone(&rec))
        .run(PhaseConfig::full());
    let plain = Pipeline::for_module(&module).run(PhaseConfig::full());
    assert_eq!(traced.result, plain.result);
    assert_eq!(rec.events().len(), 0);
    assert_eq!(rec.recorded(), 0);
    assert_eq!(rec.dropped(), 0);
    assert_eq!(
        rec.heap_bytes(),
        0,
        "disabled tracing must not grow the heap"
    );
    // The default pipeline recorder is the same inert instance.
    let default_pipeline = Pipeline::for_module(&module);
    assert!(!default_pipeline.trace().is_enabled());
    assert_eq!(default_pipeline.trace().heap_bytes(), 0);
}

fn record_keys(path: &str, want: &[&str]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let parsed = json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let json::Value::Arr(records) = parsed else {
        panic!("{path}: expected a top-level array");
    };
    assert!(!records.is_empty(), "{path}: no records");
    for r in &records {
        let json::Value::Obj(fields) = r else {
            panic!("{path}: expected object records");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, want, "{path}: exported key set drifted");
    }
}

/// The exported benchmark files keep their exact key sets (in order):
/// EXPERIMENTS.md and the CI trace-smoke job read them by name.
#[test]
fn bench_export_keys_have_not_drifted() {
    record_keys(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_solver.json"),
        &[
            "program",
            "scale",
            "worklist_items",
            "delta_items",
            "recompute_items",
            "strong_updates",
            "weak_updates",
            "peak_pts_bytes",
            "fsam_wall_ms",
            "nonsparse_wall_ms",
        ],
    );
    record_keys(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_trace.json"),
        &[
            "program",
            "scale",
            "pre_analysis_us",
            "thread_model_us",
            "svfg_us",
            "interleaving_us",
            "hb_us",
            "lock_us",
            "value_flow_us",
            "sparse_solve_us",
            "total_us",
            "worklist_items",
            "delta_items",
            "recompute_items",
            "strong_updates",
            "weak_updates",
            "peak_pts_bytes",
            "thread_edges_added",
            "mhp_pairs",
            "aliased_pairs",
            "events_recorded",
            "events_dropped",
            "threads",
            "par_value_flow_us",
            "par_sparse_solve_us",
            "speedup_vs_seq",
        ],
    );
    record_keys(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_server.json"),
        &[
            "program",
            "scale",
            "clients",
            "batch",
            "queries",
            "wall_ms",
            "qps",
            "p50_us",
            "p95_us",
            "p99_us",
            "alias_hits",
            "alias_front_hits",
            "alias_misses",
            "swaps",
            "errors",
            "peak_rss_kb",
        ],
    );
    record_keys(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_lint.json"),
        &[
            "program",
            "scale",
            "candidates",
            "after_shared",
            "after_mhp",
            "after_hb",
            "killed_hb",
            "after_lockset",
            "confirmed",
            "confirmed_groups",
            "hb_groups",
            "races",
            "deadlocks",
            "double_acquires",
            "lockset_inconsistencies",
            "hb_protected",
            "suppressed",
            "sarif_bytes",
            "sarif_results",
            "sarif_omitted",
            "peak_rss_kb",
            "wall_ms",
        ],
    );
}

/// The factored representations leave their evidence in the stream: the
/// pipeline's `stage.mhp_relation` span exports the region bitmatrix's
/// shape (`mhp.*`), and a traced lint run adds the reducer funnel plus
/// the grouping/class counters (`lint.*`) — the numbers EXPERIMENTS.md
/// quotes for "no per-statement pair set was materialized".
#[test]
fn factored_mhp_and_lint_dedup_counters_are_exported() {
    let module = Program::WordCount.generate(Scale::SMOKE);
    let rec = Arc::new(Recorder::new(1 << 16));
    let fsam = Pipeline::for_module(&module)
        .with_trace(Arc::clone(&rec))
        .run(PhaseConfig::full());
    let engine = fsam_query::QueryEngine::from_fsam(&module, &fsam);
    let cx = fsam_lint::LintContext::with_trace(&module, &fsam, &engine, Arc::clone(&rec));
    let _ = fsam_lint::Registry::with_default_checkers().run(&cx);
    let events = rec.events();

    let regions = counter(&events, "mhp.regions").expect("pipeline exports mhp.regions");
    let stmts = counter(&events, "mhp.region_stmts").expect("mhp.region_stmts");
    assert!(
        regions >= 1 && regions <= stmts,
        "{regions} regions / {stmts} stmts"
    );
    let matrix = counter(&events, "mhp.matrix_bits").expect("mhp.matrix_bits");
    assert_eq!(matrix, regions * regions);
    assert!(counter(&events, "mhp.parallel_bits").expect("mhp.parallel_bits") <= matrix);

    let s = cx.reduction().stats;
    assert_eq!(counter(&events, "lint.candidates"), Some(s.candidates));
    assert_eq!(counter(&events, "lint.confirmed"), Some(s.confirmed));
    assert_eq!(
        counter(&events, "lint.confirmed_groups"),
        Some(s.confirmed_groups)
    );
    assert_eq!(counter(&events, "lint.hb_groups"), Some(s.hb_groups));
    assert_eq!(counter(&events, "lint.killed_hb"), Some(s.killed_hb));
    let classes = counter(&events, "lint.alias_classes").expect("lint.alias_classes");
    let probes = counter(&events, "lint.class_probes").expect("lint.class_probes");
    assert!(
        classes >= 1,
        "accessed pointers intern to at least one class"
    );
    assert!(
        probes <= s.after_hb() * 2,
        "memoised membership never exceeds two probes per pair entering the \
         lockset stage: {probes} probes, {classes} classes, {} pairs",
        s.after_hb()
    );
}

/// The NonSparse baseline feeds the same stream with the shared counter
/// schema plus its own `nonsparse.*` section.
#[test]
fn nonsparse_trace_shares_the_counter_schema() {
    let module = Program::WordCount.generate(Scale::SMOKE);
    let rec = Arc::new(Recorder::new(1 << 12));
    let pipeline = Pipeline::for_module(&module).with_trace(Arc::clone(&rec));
    let _ = pipeline.run_nonsparse(None);
    let events = rec.events();
    assert!(counter(&events, "solve.worklist_items").is_some());
    assert!(counter(&events, "nonsparse.nodes").is_some());
    assert_eq!(counter(&events, "nonsparse.out_of_time"), Some(0));
    for line in schema::export_jsonl(&events).lines() {
        schema::validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
}

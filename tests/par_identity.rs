//! Parallel/sequential identity: the level-synchronous schedule must
//! reproduce the sequential fixpoint on every suite program, for both MHP
//! backends, at any worker count — and be deterministic run to run.
//!
//! The sequential run pins `with_threads(1)` (the exact legacy code path);
//! the parallel runs force at least two workers even on a single-core host
//! (`FSAM_THREADS` in CI's par-smoke job raises this further). Points-to
//! sets and entry counts must match across schedules; the *full* result —
//! solver statistics included — must match across all parallel counts,
//! because evaluation is pure and application replays one deterministic
//! order regardless of how the levels were sharded.

use fsam::{PhaseConfig, Pipeline};
use fsam_query::AnalysisDb;
use fsam_suite::{Program, Scale};

/// Every program × both MHP backends: the parallel fixpoint equals the
/// sequential one, with identical entry counts and value-flow statistics.
#[test]
fn parallel_matches_sequential_on_all_programs_and_backends() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        for config in [PhaseConfig::full(), PhaseConfig::no_interleaving()] {
            let seq = Pipeline::for_module(&module).with_threads(1).run(config);
            let par = Pipeline::for_module(&module)
                .with_threads(fsam::thread_count().max(2))
                .run(config);
            assert!(
                seq.result.points_to_eq(&par.result),
                "{}: parallel fixpoint diverged (interleaving={})",
                p.name(),
                config.interleaving
            );
            assert_eq!(
                seq.result.stats.var_pts_entries,
                par.result.stats.var_pts_entries,
                "{}: var entry counts diverged",
                p.name()
            );
            assert_eq!(
                seq.result.stats.def_pts_entries,
                par.result.stats.def_pts_entries,
                "{}: def entry counts diverged",
                p.name()
            );
            assert_eq!(
                seq.vf_stats,
                par.vf_stats,
                "{}: value-flow stats diverged",
                p.name()
            );
        }
    }
}

/// Thread-count independence: two and eight workers produce the *same*
/// result, statistics and all.
#[test]
fn two_and_eight_workers_are_bit_identical() {
    for p in [Program::X264, Program::MtDaapd, Program::WordCount] {
        let module = p.generate(Scale::SMOKE);
        let two = Pipeline::for_module(&module)
            .with_threads(2)
            .run(PhaseConfig::full());
        let eight = Pipeline::for_module(&module)
            .with_threads(8)
            .run(PhaseConfig::full());
        assert_eq!(
            two.result,
            eight.result,
            "{}: results differ between 2 and 8 workers",
            p.name()
        );
        assert_eq!(two.vf_stats, eight.vf_stats, "{}", p.name());
    }
}

/// Run-to-run determinism at eight workers: the frozen [`AnalysisDb`]
/// snapshot — points-to sets, definitions, interned pool, the lot — is
/// byte-identical across two independent pipeline runs. Any unordered
/// iteration smuggled into the parallel path (a `HashMap` walk feeding the
/// merge, a schedule-dependent intern order leaking into the result)
/// breaks this.
#[test]
fn eight_worker_runs_are_byte_deterministic() {
    for p in [Program::Raytrace, Program::HttpdServer] {
        let module = p.generate(Scale::SMOKE);
        let run = || {
            let fsam = Pipeline::for_module(&module)
                .with_threads(8)
                .run(PhaseConfig::full());
            AnalysisDb::capture(&module, &fsam).to_bytes()
        };
        assert_eq!(
            run(),
            run(),
            "{}: snapshot bytes differ run to run",
            p.name()
        );
    }
}

//! Print/parse round-trip properties of the FIR frontend, driven by the
//! suite's program generators and by the pointer-code mill.

use fsam_ir::parse::parse_module;
use fsam_ir::print::module_to_string;
use fsam_ir::rng::SmallRng;
use fsam_ir::verify::verify_module;
use fsam_suite::{Program, Scale};

/// Every generated benchmark prints to FIR that parses back to a module
/// with identical structure, and printing is a fixed point.
#[test]
fn suite_programs_roundtrip_through_fir() {
    for p in Program::all() {
        let m1 = p.generate(Scale::SMOKE);
        let text1 = module_to_string(&m1);
        let m2 =
            parse_module(&text1).unwrap_or_else(|e| panic!("{} reparse failed: {e}", p.name()));
        verify_module(&m2).unwrap_or_else(|e| panic!("{} reparse invalid: {e:?}", p.name()));
        assert_eq!(m1.stmt_count(), m2.stmt_count(), "{}", p.name());
        assert_eq!(m1.func_count(), m2.func_count(), "{}", p.name());
        assert_eq!(m1.var_count(), m2.var_count(), "{}", p.name());
        assert_eq!(m1.obj_count(), m2.obj_count(), "{}", p.name());
        let text2 = module_to_string(&m2);
        assert_eq!(text1, text2, "{}: printing is not a fixed point", p.name());
    }
}

/// Analysis results are identical across a print/parse round trip (the
/// textual form is a faithful serialization).
#[test]
fn analysis_results_survive_roundtrip() {
    let m1 = Program::WordCount.generate(Scale::SMOKE);
    let m2 = parse_module(&module_to_string(&m1)).unwrap();
    let r1 = fsam::Fsam::analyze(&m1);
    let r2 = fsam::Fsam::analyze(&m2);
    // Variable ids may be assigned in a different order by the parser; match
    // by qualified name.
    let by_name: std::collections::HashMap<String, fsam_ir::VarId> =
        m2.var_ids().map(|v| (m2.var_name(v), v)).collect();
    for v1 in m1.var_ids() {
        let name = m1.var_name(v1);
        let v2 = by_name[&name];
        assert_eq!(
            r1.result.pt_var(v1).len(),
            r2.result.pt_var(v2).len(),
            "{name}: {:?} vs {:?}",
            r1.result.pt_var(v1),
            r2.result.pt_var(v2)
        );
    }
    assert_eq!(r1.vf_stats.edges, r2.vf_stats.edges);
}

/// Mill-generated modules round trip through FIR for arbitrary seeds
/// (16 deterministic cases, formerly a proptest).
#[test]
fn milled_modules_roundtrip() {
    use fsam_ir::ModuleBuilder;
    use fsam_suite::mill::{mixed_body, Mill};

    let mut cases = SmallRng::seed_from_u64(0xF1A_0001);
    for _ in 0..16 {
        let seed = cases.next_u64();
        let body = cases.gen_range(20usize..150);

        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let arr = mb.global_array("arr");
        let mut f = mb.func("main", &[]);
        let local = f.local("buf");
        {
            let mut mill = Mill::new(&mut f, vec![g, arr], vec![local], seed, "m");
            mixed_body(&mut mill, body, seed ^ 0x1234);
        }
        f.ret(None);
        f.finish();
        let m1 = mb.build();
        verify_module(&m1).unwrap();

        let text1 = module_to_string(&m1);
        let m2 = parse_module(&text1).expect("printer output parses");
        verify_module(&m2).expect("reparsed module is valid");
        assert_eq!(m1.stmt_count(), m2.stmt_count());
        assert_eq!(text1, module_to_string(&m2));
    }
}

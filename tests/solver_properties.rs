//! Property tests of the sparse solver's semantics (Figure 10).

use fsam::Fsam;
use fsam_ir::parse::parse_module;

/// Sorted points-to names for `func::var`, read through the query engine
/// (the shipping replacement for the core crate's retired name-based
/// accessors).
fn pt_names(m: &fsam_ir::Module, fsam: &Fsam, func: &str, var: &str) -> Vec<String> {
    fsam_query::QueryEngine::from_fsam(m, fsam)
        .pt_names(func, var)
        .unwrap_or_else(|| panic!("no var {func}::{var}"))
        .into_iter()
        .map(str::to_owned)
        .collect()
}

// Sequential chain of stores to a singleton: the last store wins (strong
// updates kill everything earlier), for any chain length.
#[test]
fn last_store_wins_on_singletons() {
    for n in 1usize..12 {
        let mut src = String::from("global cell\n");
        for i in 0..n {
            src.push_str(&format!("global v{i}\n"));
        }
        src.push_str("func main() {\nentry:\n  p = &cell\n");
        for i in 0..n {
            src.push_str(&format!("  x{i} = &v{i}\n  store p, x{i}\n"));
        }
        src.push_str("  c = load p\n  ret\n}\n");
        let m = parse_module(&src).unwrap();
        let fsam = Fsam::analyze(&m);
        let names = pt_names(&m, &fsam, "main", "c");
        assert_eq!(names, vec![format!("v{}", n - 1)]);
    }
}

/// The same chain through a heap cell (never a singleton) accumulates
/// every store (weak updates), for any chain length.
#[test]
fn heap_accumulates_all_stores() {
    for n in 1usize..12 {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("global v{i}\n"));
        }
        src.push_str("func main() {\nentry:\n  p = alloc \"cell\"\n");
        for i in 0..n {
            src.push_str(&format!("  x{i} = &v{i}\n  store p, x{i}\n"));
        }
        src.push_str("  c = load p\n  ret\n}\n");
        let m = parse_module(&src).unwrap();
        let fsam = Fsam::analyze(&m);
        let names = pt_names(&m, &fsam, "main", "c");
        assert_eq!(names.len(), n);
    }
}

/// Analysis is deterministic: two runs produce identical results.
#[test]
fn analysis_is_deterministic() {
    let p = fsam_suite::Program::Kmeans;
    let m = p.generate(fsam_suite::Scale::SMOKE);
    let a = Fsam::analyze(&m);
    let b = Fsam::analyze(&m);
    for v in m.var_ids() {
        assert_eq!(a.result.pt_var(v), b.result.pt_var(v));
    }
    assert_eq!(a.vf_stats, b.vf_stats);
    assert_eq!(&a.result.stats, &b.result.stats);
}

/// Strong updates across a branch merge become weak (the def doesn't
/// dominate: a memory phi merges both arms).
#[test]
fn branch_merge_is_weak() {
    let m = parse_module(
        r#"
        global cell
        global a
        global b
        global init
        func main() {
        entry:
          p = &cell
          i = &init
          store p, i
          br ?, l, r
        l:
          x = &a
          store p, x
          br done
        r:
          y = &b
          store p, y
          br done
        done:
          c = load p
          ret
        }
    "#,
    )
    .unwrap();
    let fsam = Fsam::analyze(&m);
    let names = pt_names(&m, &fsam, "main", "c");
    // Each arm strongly updates, so `init` is killed on both paths; the
    // merge unions the two arms.
    assert_eq!(names, vec!["a", "b"]);
}

/// A loop-carried store keeps both the initial and the loop value at the
/// header (memory phi), but a post-loop load past a final store sees only
/// the final value.
#[test]
fn loop_memory_phi() {
    let m = parse_module(
        r#"
        global cell
        global start
        global iter
        global last
        func main() {
        entry:
          p = &cell
          s = &start
          store p, s
          br header
        header:
          inloop = load p
          br ?, body, exit
        body:
          it = &iter
          store p, it
          br header
        exit:
          lv = &last
          store p, lv
          c = load p
          ret
        }
    "#,
    )
    .unwrap();
    let fsam = Fsam::analyze(&m);
    let inloop = pt_names(&m, &fsam, "main", "inloop");
    assert!(inloop.contains(&"start".to_owned()) && inloop.contains(&"iter".to_owned()));
    assert_eq!(pt_names(&m, &fsam, "main", "c"), vec!["last"]);
}

/// Recursive functions converge and their locals are not strongly updated.
#[test]
fn recursion_terminates_with_weak_locals() {
    let m = parse_module(
        r#"
        global a
        global b
        func rec(p) {
        local frame
        entry:
          f = &frame
          br ?, again, base
        again:
          x = &a
          store f, x
          r1 = call rec(f)
          br out
        base:
          y = &b
          store f, y
          br out
        out:
          c = load f
          ret c
        }
        func main() {
        entry:
          seed = &a
          r = call rec(seed)
          ret
        }
    "#,
    )
    .unwrap();
    let fsam = Fsam::analyze(&m);
    // Both stores' values survive: `frame` is a recursive local, no strong
    // updates (Fig 10 singletons exclude locals in recursion).
    let names = pt_names(&m, &fsam, "rec", "c");
    assert!(
        names.contains(&"a".to_owned()) && names.contains(&"b".to_owned()),
        "{names:?}"
    );
}

//! Cross-crate soundness invariants, checked on the benchmark suite and on
//! randomly generated programs.
//!
//! The invariants (DESIGN.md §2):
//!
//! * `pt_FSAM(v) ⊆ pt_NonSparse(v) ⊆ pt_Andersen(v)` for every top-level
//!   variable — the sparse analysis refines the baseline, both refine the
//!   pre-analysis;
//! * MHP is symmetric, and nothing is parallel with statements that
//!   happen before every fork;
//! * every ablation configuration over-approximates the full configuration.

use fsam::{nonsparse, Fsam, NonSparseOutcome, PhaseConfig};
use fsam_ir::rng::SmallRng;
use fsam_ir::Module;
use fsam_suite::{Program, Scale, SyncProgram};
use fsam_threads::mhp::MhpOracle;

fn check_soundness_chain(module: &Module) {
    let fsam = Fsam::analyze(module);
    let outcome = nonsparse::run(module, &fsam.pre, &fsam.icfg, &fsam.tm, None);
    let NonSparseOutcome::Done(ns) = outcome else {
        panic!("baseline did not finish");
    };
    let sequential = fsam.tm.is_empty();
    for v in module.var_ids() {
        // Both flow-sensitive analyses refine the pre-analysis.
        assert!(
            fsam.result.pt_var(v).is_subset(fsam.pre.pt_var(v)),
            "FSAM ⊄ Andersen on {}",
            module.var_name(v),
        );
        assert!(
            ns.pt_var(v).is_subset(fsam.pre.pt_var(v)),
            "NonSparse ⊄ Andersen on {}",
            module.var_name(v),
        );
        // On sequential programs the two flow-sensitive analyses agree up
        // to FSAM's extra precision. On multithreaded programs neither
        // dominates pointwise: FSAM's weak-update pass-through chains
        // (store → store → load thread edges) over-approximate some flows
        // the baseline's generated-facts-only interference does not, and
        // vice versa — both are sound over-approximations of the runtime
        // truth (see DESIGN.md).
        if sequential {
            assert!(
                fsam.result.pt_var(v).is_subset(ns.pt_var(v)),
                "sequential FSAM ⊄ NonSparse on {}: {:?} vs {:?}",
                module.var_name(v),
                fsam.result.pt_var(v),
                ns.pt_var(v),
            );
        }
    }
}

#[test]
fn suite_programs_satisfy_the_soundness_chain() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        check_soundness_chain(&module);
    }
}

#[test]
fn suite_ablations_over_approximate() {
    for p in [Program::WordCount, Program::Radiosity, Program::Ferret] {
        let module = p.generate(Scale::SMOKE);
        let full = Fsam::analyze(&module);
        for cfg in [
            PhaseConfig::no_interleaving(),
            PhaseConfig::no_value_flow(),
            PhaseConfig::no_lock(),
            PhaseConfig::no_hb(),
        ] {
            let ablated = Fsam::analyze_with(&module, cfg);
            for v in module.var_ids() {
                assert!(
                    full.result.pt_var(v).is_subset(ablated.result.pt_var(v)),
                    "{}: {cfg:?} lost soundness on {}",
                    p.name(),
                    module.var_name(v)
                );
            }
        }
    }
}

#[test]
fn suite_mhp_is_symmetric() {
    let module = Program::Radiosity.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let inter = fsam.mhp.interleaving().expect("full config");
    let stmts: Vec<_> = module.stmt_ids().collect();
    // Sample pairs (full quadratic check is wasteful).
    for (i, &a) in stmts.iter().enumerate() {
        for &b in stmts.iter().skip(i).step_by(7) {
            assert_eq!(
                inter.mhp_stmt(a, b),
                inter.mhp_stmt(b, a),
                "MHP not symmetric for {a} / {b}"
            );
        }
    }
}

#[test]
fn race_detection_runs_on_the_suite() {
    for p in [Program::HttpdServer, Program::Automount] {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        // The servers intentionally contain unlocked shared mutations.
        let engine = fsam_query::QueryEngine::from_fsam(&module, &fsam);
        let races = fsam_query::detect_races(&module, &fsam, &engine);
        // No assertion on the count (generator-dependent); the detector
        // must terminate and report shared objects only.
        for r in &races {
            assert!(
                fsam_threads::SharedObjects::compute(&module, &fsam.pre)
                    .is_shared(&fsam.pre, r.obj),
                "race on a thread-private object: {r:?}"
            );
        }
    }
}

// --------------------------------------------- happens-before end-to-end --

/// Runs the default lint registry and returns (reducer stats, FL0001
/// diagnostic count).
fn lint_funnel(module: &Module, cfg: PhaseConfig) -> (fsam_lint::ReductionStats, usize) {
    let fsam = Fsam::analyze_with(module, cfg);
    let engine = fsam_query::QueryEngine::from_fsam(module, &fsam);
    let cx = fsam_lint::LintContext::new(module, &fsam, &engine);
    let report = fsam_lint::Registry::with_default_checkers().run(&cx);
    (cx.reduction().stats, report.count_of("FL0001"))
}

/// The HB stage's end-to-end contract on the synchronization
/// micro-benchmarks: with HB enabled every condvar/barrier/atomic-ordered
/// candidate dies before the alias stage (zero FL0001 groups, nonzero
/// `killed_hb`); with the *No-HB* ablation the same pairs resurface as
/// confirmed races.
#[test]
fn sync_programs_are_race_free_with_hb_and_racy_without() {
    for p in SyncProgram::all() {
        let module = p.generate(Scale::SMOKE);

        let (stats, fl1) = lint_funnel(&module, PhaseConfig::full());
        assert_eq!(
            fl1,
            0,
            "{}: the synchronized form must report no races",
            p.name()
        );
        assert_eq!(stats.confirmed, 0, "{}: {stats:?}", p.name());
        assert!(
            stats.killed_hb > 0,
            "{}: the ordered candidates must be killed by HB, not upstream: {stats:?}",
            p.name()
        );

        let (ablated, fl1_ablated) = lint_funnel(&module, PhaseConfig::no_hb());
        assert!(
            fl1_ablated > 0 && ablated.confirmed > 0,
            "{}: ablating HB must resurface the ordered pairs: {ablated:?}",
            p.name()
        );
        assert_eq!(ablated.killed_hb, 0, "{}: {ablated:?}", p.name());
    }
}

/// The seeded-bug forms stay racy even with HB enabled: the rogue thread
/// reads the cells without synchronizing, and the diagnostic names them.
#[test]
fn sync_programs_with_seeded_bug_stay_racy_under_hb() {
    for p in SyncProgram::all() {
        let module = p.generate_with(Scale::SMOKE, true);
        let fsam = Fsam::analyze(&module);
        let engine = fsam_query::QueryEngine::from_fsam(&module, &fsam);
        let cx = fsam_lint::LintContext::new(&module, &fsam, &engine);
        let report = fsam_lint::Registry::with_default_checkers().run(&cx);
        let races: Vec<_> = report.with_code("FL0001").collect();
        assert!(
            !races.is_empty(),
            "{}: the seeded race must survive HB",
            p.name()
        );
        assert!(
            races.iter().any(|d| d.message.contains(p.bug_object())),
            "{}: no reported race names `{}`: {races:?}",
            p.name(),
            p.bug_object()
        );
    }
}

// ------------------------------------------------------ randomized shapes --

/// A compact description of a random multithreaded program: a few worker
/// routines with milled bodies, forked (optionally in loops) and joined
/// (fully, partially or not at all) by main.
#[derive(Clone, Debug)]
struct ProgramShape {
    workers: usize,
    body: usize,
    fork_in_loop: bool,
    join_kind: u8, // 0 = full, 1 = partial, 2 = none
    use_locks: bool,
    seed: u64,
}

/// Deterministically samples a shape (formerly a proptest strategy).
fn sample_shape(rng: &mut SmallRng) -> ProgramShape {
    ProgramShape {
        workers: rng.gen_range(1usize..4),
        body: rng.gen_range(10usize..60),
        fork_in_loop: rng.gen_bool(0.5),
        join_kind: rng.gen_range(0u32..3) as u8,
        use_locks: rng.gen_bool(0.5),
        seed: rng.next_u64(),
    }
}

fn build_random_module(shape: &ProgramShape) -> Module {
    use fsam_ir::ModuleBuilder;
    use fsam_suite::mill::{mixed_body, Mill};

    let mut mb = ModuleBuilder::new();
    let g1 = mb.global("g1");
    let g2 = mb.global("g2");
    let arr = mb.global_array("buf");
    let lk = mb.global("lk");

    let mut worker_ids = Vec::new();
    for w in 0..shape.workers {
        let id = mb.declare_func(&format!("worker{w}"), &["arg"]);
        let mut f = mb.define_func(id);
        let local = f.local(&format!("scratch{w}"));
        let lptr = f.addr("l", lk);
        {
            let mut mill = Mill::new(
                &mut f,
                vec![g1, g2, arr],
                vec![local],
                shape.seed ^ (w as u64),
                "w",
            );
            if shape.use_locks {
                mill.locked_region(lptr, 4);
            }
            mixed_body(&mut mill, shape.body, shape.seed.wrapping_add(w as u64));
        }
        f.ret(None);
        f.finish();
        worker_ids.push(id);
    }

    let mut f = mb.func("main", &[]);
    let arg = f.addr("arg", g1);
    let mut handles = Vec::new();
    if shape.fork_in_loop {
        let header = f.block("h");
        let body = f.block("b");
        let exit = f.block("x");
        f.jump(header);
        f.switch_to(header);
        f.branch(body, exit);
        f.switch_to(body);
        for (w, &id) in worker_ids.iter().enumerate() {
            f.fork(&format!("t{w}"), id, Some(arg));
        }
        f.jump(header);
        f.switch_to(exit);
    } else {
        for (w, &id) in worker_ids.iter().enumerate() {
            handles.push(f.fork(&format!("t{w}"), id, Some(arg)));
        }
    }
    match shape.join_kind {
        0 => {
            for &h in &handles {
                f.join(h);
            }
        }
        1 => {
            if let Some(&h) = handles.first() {
                let do_join = f.block("dj");
                let skip = f.block("sk");
                let cont = f.block("ct");
                f.branch(do_join, skip);
                f.switch_to(do_join);
                f.join(h);
                f.jump(cont);
                f.switch_to(skip);
                f.jump(cont);
                f.switch_to(cont);
            }
        }
        _ => {}
    }
    {
        let mut mill = Mill::new(&mut f, vec![g1, g2], vec![], shape.seed ^ 0xFF, "m");
        mixed_body(&mut mill, shape.body / 2, shape.seed ^ 0xF0);
    }
    f.ret(None);
    f.finish();
    mb.build()
}

/// Random programs are well-formed, every analysis terminates, and the
/// FSAM ⊆ NonSparse ⊆ Andersen chain holds (24 deterministic cases).
#[test]
fn random_programs_satisfy_the_soundness_chain() {
    let mut rng = SmallRng::seed_from_u64(0xC0FF_EE01);
    for case in 0..24 {
        let shape = sample_shape(&mut rng);
        let module = build_random_module(&shape);
        fsam_ir::verify::verify_module(&module)
            .unwrap_or_else(|e| panic!("case {case} ({shape:?}): invalid SSA: {e:?}"));
        check_soundness_chain(&module);
    }
}

/// Random programs: ablations never drop points-to facts (24 cases).
#[test]
fn random_programs_ablations_over_approximate() {
    let mut rng = SmallRng::seed_from_u64(0xC0FF_EE02);
    for case in 0..24 {
        let shape = sample_shape(&mut rng);
        let module = build_random_module(&shape);
        let full = Fsam::analyze(&module);
        let ablated = Fsam::analyze_with(&module, PhaseConfig::no_lock());
        for v in module.var_ids() {
            assert!(
                full.result.pt_var(v).is_subset(ablated.result.pt_var(v)),
                "case {case}: no-lock lost soundness on {}",
                module.var_name(v)
            );
        }
    }
}

//! End-to-end reproductions of the paper's worked examples (Figures 1, 6,
//! 8, 9 and 11), checked through the full FSAM pipeline.

use fsam::{Fsam, PhaseConfig};
use fsam_ir::parse::parse_module;
use fsam_ir::Module;
use fsam_query::QueryEngine;

fn analyze(src: &str) -> (Module, Fsam) {
    let module = parse_module(src).expect("figure program parses");
    fsam_ir::verify::verify_module(&module).expect("figure program is well-formed");
    let fsam = Fsam::analyze(&module);
    (module, fsam)
}

/// Sorted points-to names for `func::var`, read through the query engine
/// (the shipping replacement for the core crate's retired name-based
/// accessors).
fn pt_names(m: &Module, fsam: &Fsam, func: &str, var: &str) -> Vec<String> {
    QueryEngine::from_fsam(m, fsam)
        .pt_names(func, var)
        .unwrap_or_else(|| panic!("no var {func}::{var}"))
        .into_iter()
        .map(str::to_owned)
        .collect()
}

/// Figure 1(a): `c = *p` can observe the store in the same thread *and* the
/// store in the parallel thread — pt(c) = {y, z}.
#[test]
fn figure_1a_interleaving() {
    let (m, fsam) = analyze(
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t = fork foo()
          store p, r
          c = load p
          ret
        }
    "#,
    );
    assert_eq!(pt_names(&m, &fsam, "main", "c"), vec!["y", "z"]);
}

/// Figure 1(b): thread t2 outlives its spawner t1 (t1 is joined, t2 is
/// not), so `*p = r` in main still interferes with t2's statements —
/// pt(c) = {y, z} at t2's load.
#[test]
fn figure_1b_escaping_thread() {
    let (m, fsam) = analyze(
        r#"
        global x
        global y
        global z
        func bar() {
        entry:
          p3 = &x
          q = &y
          store p3, q      // *p = q in t2
          c = load p3      // c = *p in t2
          ret
        }
        func foo() {
        entry:
          t2 = fork bar()  // t2 outlives foo (never joined)
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t1 = fork foo()
          join t1          // t1 dies; t2 lives on
          store p, r       // *p = r: interferes with t2
          ret
        }
    "#,
    );
    let names = pt_names(&m, &fsam, "bar", "c");
    assert!(names.contains(&"y".to_owned()), "{names:?}");
    assert!(
        names.contains(&"z".to_owned()),
        "unjoined grandchild must see the store: {names:?}"
    );
}

/// Figure 1(c): `*p = r`, `*p = q` and `c = *p` execute serially (fork +
/// full join); the strong update at `*p = q` kills `&z` — pt(c) = {y}.
#[test]
fn figure_1c_strong_update_with_thread_ordering() {
    let (m, fsam) = analyze(
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          store p, r
          t = fork foo()
          join t
          c = load p
          ret
        }
    "#,
    );
    assert_eq!(pt_names(&m, &fsam, "main", "c"), vec!["y"]);
}

/// Figure 1(d): `*x` and `*p` are not aliases, so the parallel store
/// through x's contents never reaches `c = *p` — pt(c) = {y} (+ main's own
/// store).
#[test]
fn figure_1d_sparsity() {
    let (m, fsam) = analyze(
        r#"
        global x
        global y
        global a
        func foo() {
        entry:
          p2 = &x
          q = &y
          xv = load p2
          store xv, xv   // *x = ... : writes object a, not x
          store p2, q    // *p = q
          ret
        }
        func main() {
        entry:
          p = &x
          aa = &a
          store p, aa    // x = &a
          t = fork foo()
          c = load p
          join t
          ret
        }
    "#,
    );
    let names = pt_names(&m, &fsam, "main", "c");
    assert!(names.contains(&"y".to_owned()), "{names:?}");
    assert!(
        !names.contains(&"x".to_owned()),
        "non-aliased store must not leak: {names:?}"
    );
}

/// Figure 1(e): l1 and l2 must-alias the same lock; the spurious def-use
/// from `*u = v` (in the other span, not the tail) to `c = *p` is avoided:
/// pt(c) = {y, z} but NOT {v}.
#[test]
fn figure_1e_lock_analysis() {
    let (m, fsam) = analyze(
        r#"
        global x
        global y
        global z
        global vobj
        global lk
        func foo() {
        entry:
          p2 = &x
          u = alloc "uobj"
          vv = &vobj
          l2 = &lk
          lock l2
          store u, vv    // *u = v : different object, inside the span
          q = &y
          store p2, q    // *p = q : the span's tail store of x
          unlock l2
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          l1 = &lk
          t = fork foo()
          store p, r     // *p = r
          lock l1
          c = load p     // c = *p, protected by the same lock
          unlock l1
          ret
        }
    "#,
    );
    let names = pt_names(&m, &fsam, "main", "c");
    assert!(names.contains(&"y".to_owned()), "{names:?}");
    assert!(names.contains(&"z".to_owned()), "{names:?}");
    assert!(
        !names.contains(&"vobj".to_owned()),
        "spurious *u flow: {names:?}"
    );
}

/// Figure 6: the thread-oblivious def-use chains over Pseq — checked here
/// end-to-end through points-to results (the SVFG-level edges are unit
/// tests in fsam-mssa).
#[test]
fn figure_6_thread_oblivious_flow() {
    let (m, fsam) = analyze(
        r#"
        global o
        global v1
        global v2
        func foo() {
        entry:
          q = &o
          w2 = &v2
          store q, w2      // s4: *q = &v2
          c5 = load q      // s5
          ret
        }
        func main() {
        entry:
          p = &o
          w1 = &v1
          store p, w1      // s1: *p = &v1
          t = fork foo()
          join t           // join makes s4 visible
          c3 = load p      // s3
          ret
        }
    "#,
    );
    // s5 (inside foo) follows the strong update at s4: it sees exactly v2
    // (main's v1 flowed in at the fork, but s4 killed it — the def-use
    // chain s1 -> s4 of Fig 6(b) carried it there).
    let c5 = pt_names(&m, &fsam, "foo", "c5");
    assert_eq!(c5, vec!["v2"]);
    // s3 (after the join) sees the thread's store.
    let c3 = pt_names(&m, &fsam, "main", "c3");
    assert!(c3.contains(&"v2".to_owned()), "join side effect: {c3:?}");
}

/// Figure 11: the word_count pattern — slaves forked in one loop, joined in
/// a symmetric loop; master code after the join loop is *not* parallel with
/// the slaves, so the master's post-join load needs no interference edges.
#[test]
fn figure_11_symmetric_fork_join() {
    let (m, fsam) = analyze(
        r#"
        global array tids
        global data
        global v1
        global v2
        func slave(w) {
        entry:
          q = &data
          s = &v2
          store q, s        // slave writes data
          ret
        }
        func main() {
        entry:
          ta = &tids
          d = &data
          s1 = &v1
          store d, s1       // master init
          br fh
        fh:
          br ?, fb, jh
        fb:
          t = fork slave(d)
          store ta, t
          br fh
        jh:
          br ?, jb, post
        jb:
          h = load ta
          join h
          br jh
        post:
          c = load d
          ret
        }
    "#,
    );
    // The post-join load sees both values (init + slave writes)...
    let c = pt_names(&m, &fsam, "main", "c");
    assert!(
        c.contains(&"v1".to_owned()) && c.contains(&"v2".to_owned()),
        "{c:?}"
    );
    // ...and the interleaving analysis proved the slaves dead after the
    // join loop (no MHP between slave stores and the post-join load).
    let inter = fsam.mhp.interleaving().expect("full config");
    use fsam_ir::StmtKind;
    use fsam_threads::mhp::MhpOracle;
    let slave_store = m
        .stmts()
        .find(|(_, s)| {
            s.func == m.func_by_name("slave").unwrap() && matches!(s.kind, StmtKind::Store { .. })
        })
        .unwrap()
        .0;
    let c_load = m
        .stmts()
        .filter(|(_, s)| s.func == m.entry().unwrap() && matches!(s.kind, StmtKind::Load { .. }))
        .last()
        .unwrap()
        .0;
    assert!(
        !inter.mhp_stmt(slave_store, c_load),
        "post-join master code is sequential"
    );
    assert!(
        inter.mhp_stmt(slave_store, slave_store),
        "slaves are mutually parallel"
    );
}

/// The ablation configurations stay sound on the figure programs: every
/// ablated result over-approximates the full result.
#[test]
fn ablations_remain_sound_on_figures() {
    let src = r#"
        global x
        global y
        global z
        global lk
        func foo() {
        entry:
          p2 = &x
          q = &y
          l = &lk
          lock l
          store p2, q
          unlock l
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          l = &lk
          t = fork foo()
          lock l
          store p, r
          c = load p
          unlock l
          join t
          c2 = load p
          ret
        }
    "#;
    let m = parse_module(src).unwrap();
    let full = Fsam::analyze(&m);
    for cfg in [
        PhaseConfig::no_interleaving(),
        PhaseConfig::no_value_flow(),
        PhaseConfig::no_lock(),
    ] {
        let ablated = Fsam::analyze_with(&m, cfg);
        for v in m.var_ids() {
            assert!(
                full.result.pt_var(v).is_subset(ablated.result.pt_var(v)),
                "{cfg:?} must over-approximate on {}",
                m.var_name(v)
            );
        }
    }
}

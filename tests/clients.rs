//! Integration coverage of the client analyses (§6 of the paper) over the
//! benchmark suite: race detection, deadlock detection, and the dynamic
//! instrumentation planner — all through the engine-backed
//! `fsam_query::clients` entry points (the core crate's direct `detect`
//! functions were retired in their favour).

use fsam::Fsam;
use fsam_ir::StmtKind;
use fsam_query::{detect_deadlocks, detect_races, plan_instrumentation, AnalysisDb, QueryEngine};
use fsam_suite::{Program, Scale};

#[test]
fn clients_run_on_every_benchmark() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);

        let races = detect_races(&module, &fsam, &engine);
        let deadlocks = detect_deadlocks(&module, &fsam, &engine);
        let plan = plan_instrumentation(&module, &fsam, &engine);

        // Structural invariants.
        let accesses = module.stmts().filter(|(_, s)| s.is_memory_access()).count();
        assert_eq!(
            plan.instrument.len() + plan.skip.len(),
            accesses,
            "{}: plan must classify every access",
            p.name()
        );
        // Every racy access pair's members must be in the instrument set:
        // the planner may not skip an access the race detector flags.
        for r in &races {
            assert!(
                plan.instrument.contains(&r.store),
                "{}: racy store skipped by the planner: {}",
                p.name(),
                module.describe_stmt(r.store)
            );
            assert!(
                plan.instrument.contains(&r.access),
                "{}: racy access skipped by the planner: {}",
                p.name(),
                module.describe_stmt(r.access)
            );
        }
        // Race endpoints must actually be loads/stores.
        for r in &races {
            assert!(matches!(module.stmt(r.store).kind, StmtKind::Store { .. }));
            assert!(module.stmt(r.access).is_memory_access());
        }
        // Deadlock reports must name two distinct singleton locks.
        for d in &deadlocks {
            assert_ne!(d.lock_a, d.lock_b, "{}", p.name());
            assert!(fsam.pre.objects().is_singleton(d.lock_a));
            assert!(fsam.pre.objects().is_singleton(d.lock_b));
        }
    }
}

/// The clients must report exactly the same findings whether the engine
/// runs over a freshly captured snapshot or over one that went through the
/// full serialize/deserialize cycle — the persisted form loses nothing the
/// clients depend on (points-to sets, MHP facts, locksets).
#[test]
fn snapshot_roundtrip_preserves_client_results_on_every_benchmark() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);

        let captured = QueryEngine::new(AnalysisDb::capture(&module, &fsam));
        let db = AnalysisDb::capture(&module, &fsam);
        let roundtripped =
            QueryEngine::new(AnalysisDb::from_bytes(&db.to_bytes()).expect("roundtrip"));

        let fresh_races = detect_races(&module, &fsam, &captured);
        let persisted_races = detect_races(&module, &fsam, &roundtripped);
        assert_eq!(fresh_races, persisted_races, "{}: races diverge", p.name());

        let fresh_dl = detect_deadlocks(&module, &fsam, &captured);
        let persisted_dl = detect_deadlocks(&module, &fsam, &roundtripped);
        assert_eq!(fresh_dl, persisted_dl, "{}: deadlocks diverge", p.name());

        let fresh_plan = plan_instrumentation(&module, &fsam, &captured);
        let persisted_plan = plan_instrumentation(&module, &fsam, &roundtripped);
        assert_eq!(
            (fresh_plan.instrument, fresh_plan.skip),
            (persisted_plan.instrument, persisted_plan.skip),
            "{}: instrumentation plans diverge",
            p.name()
        );
    }
}

#[test]
fn lock_heavy_programs_have_substantial_skippable_fraction() {
    // The ferret pipeline's heavy local traffic should be mostly skippable
    // (the paper's §6 TSan-overhead argument).
    let module = Program::Ferret.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let plan = plan_instrumentation(&module, &fsam, &engine);
    assert!(
        plan.reduction() > 0.5,
        "ferret should skip most accesses, got {:.2}",
        plan.reduction()
    );
}

#[test]
fn consistently_ordered_suite_locks_produce_no_deadlocks() {
    // The generators acquire locks in consistent orders; the deadlock
    // detector must stay quiet on all of them.
    for p in [Program::Radiosity, Program::Automount, Program::Ferret] {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let deadlocks = detect_deadlocks(&module, &fsam, &engine);
        assert!(
            deadlocks.is_empty(),
            "{}: unexpected deadlocks {:?}",
            p.name(),
            deadlocks
        );
    }
}

//! Integration coverage of the client analyses (§6 of the paper) over the
//! benchmark suite: race detection, deadlock detection, and the dynamic
//! instrumentation planner.

// The legacy `detect` entry points stay under test until they are removed;
// new code goes through the `fsam-lint` registry instead.
#![allow(deprecated)]

use fsam::{detect_deadlocks, detect_races, plan_instrumentation, Fsam};
use fsam_ir::StmtKind;
use fsam_query::{AnalysisDb, QueryEngine};
use fsam_suite::{Program, Scale};

#[test]
fn clients_run_on_every_benchmark() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);

        let races = detect_races(&module, &fsam);
        let deadlocks = detect_deadlocks(&module, &fsam);
        let plan = plan_instrumentation(&module, &fsam);

        // Structural invariants.
        let accesses = module.stmts().filter(|(_, s)| s.is_memory_access()).count();
        assert_eq!(
            plan.instrument.len() + plan.skip.len(),
            accesses,
            "{}: plan must classify every access",
            p.name()
        );
        // Every racy access pair's members must be in the instrument set:
        // the planner may not skip an access the race detector flags.
        for r in &races {
            assert!(
                plan.instrument.contains(&r.store),
                "{}: racy store skipped by the planner: {}",
                p.name(),
                module.describe_stmt(r.store)
            );
            assert!(
                plan.instrument.contains(&r.access),
                "{}: racy access skipped by the planner: {}",
                p.name(),
                module.describe_stmt(r.access)
            );
        }
        // Race endpoints must actually be loads/stores.
        for r in &races {
            assert!(matches!(module.stmt(r.store).kind, StmtKind::Store { .. }));
            assert!(module.stmt(r.access).is_memory_access());
        }
        // Deadlock reports must name two distinct singleton locks.
        for d in &deadlocks {
            assert_ne!(d.lock_a, d.lock_b, "{}", p.name());
            assert!(fsam.pre.objects().is_singleton(d.lock_a));
            assert!(fsam.pre.objects().is_singleton(d.lock_b));
        }
    }
}

/// The engine-backed clients (`fsam_query::clients`) must report exactly
/// what the direct-`Fsam` implementations report, on every benchmark —
/// including when the engine runs over a snapshot that went through the
/// full serialize/deserialize cycle.
#[test]
fn engine_backed_clients_match_direct_path_on_every_benchmark() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);

        // Roundtrip the snapshot through bytes so the equivalence also
        // covers the persisted form, not just the captured one.
        let db = AnalysisDb::capture(&module, &fsam);
        let db = AnalysisDb::from_bytes(&db.to_bytes()).expect("roundtrip");
        let engine = QueryEngine::new(db);

        let direct_races = detect_races(&module, &fsam);
        let engine_races = fsam_query::detect_races(&module, &fsam, &engine);
        assert_eq!(direct_races, engine_races, "{}: races diverge", p.name());

        let direct_dl = detect_deadlocks(&module, &fsam);
        let engine_dl = fsam_query::detect_deadlocks(&module, &fsam, &engine);
        assert_eq!(direct_dl, engine_dl, "{}: deadlocks diverge", p.name());

        let direct_plan = plan_instrumentation(&module, &fsam);
        let engine_plan = fsam_query::plan_instrumentation(&module, &fsam, &engine);
        assert_eq!(
            (direct_plan.instrument, direct_plan.skip),
            (engine_plan.instrument, engine_plan.skip),
            "{}: instrumentation plans diverge",
            p.name()
        );
    }
}

#[test]
fn lock_heavy_programs_have_substantial_skippable_fraction() {
    // The ferret pipeline's heavy local traffic should be mostly skippable
    // (the paper's §6 TSan-overhead argument).
    let module = Program::Ferret.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let plan = plan_instrumentation(&module, &fsam);
    assert!(
        plan.reduction() > 0.5,
        "ferret should skip most accesses, got {:.2}",
        plan.reduction()
    );
}

#[test]
fn consistently_ordered_suite_locks_produce_no_deadlocks() {
    // The generators acquire locks in consistent orders; the deadlock
    // detector must stay quiet on all of them.
    for p in [Program::Radiosity, Program::Automount, Program::Ferret] {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let deadlocks = detect_deadlocks(&module, &fsam);
        assert!(
            deadlocks.is_empty(),
            "{}: unexpected deadlocks {:?}",
            p.name(),
            deadlocks
        );
    }
}

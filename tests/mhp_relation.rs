//! Property: the factored region × region [`fsam_threads::MhpRelation`]
//! answers *exactly* like the enumerated [`fsam_threads::MhpFacts`] it was
//! built from — on every statement pair of every suite program, for both
//! the interleaving backend (full configuration) and the PCG fallback
//! (`no_interleaving` ablation).
//!
//! The relation is the factored form every consumer now queries (the
//! pipeline, the query engine, the lint reducer); this test is the
//! ground-truth tether that lets them all drop the per-pair enumeration.

use fsam::{Fsam, PhaseConfig};
use fsam_ir::{Module, StmtId};
use fsam_suite::{Program, Scale};
use fsam_threads::{MhpFacts, MhpRelation};

/// Compares the relation against the enumerated facts on statement pairs.
/// Small programs get the full quadratic sweep; large ones a deterministic
/// stride sample that still touches every statement on both sides of a
/// pair (plus every self pair, where the multi-instance bit lives).
fn assert_identical(name: &str, module: &Module, facts: &MhpFacts, rel: &MhpRelation) {
    let stmts: Vec<StmtId> = module.stmt_ids().collect();
    let stride = (stmts.len() / 600).max(1);
    for (i, &a) in stmts.iter().enumerate() {
        assert_eq!(
            rel.mhp_stmt(a, a),
            facts.mhp_stmt(a, a),
            "{name}: self-MHP diverges on {a}"
        );
        for &b in stmts.iter().skip(i % stride).step_by(stride) {
            assert_eq!(
                rel.mhp_stmt(a, b),
                facts.mhp_stmt(a, b),
                "{name}: MHP diverges on ({a}, {b})"
            );
            assert_eq!(
                rel.mhp_stmt(b, a),
                rel.mhp_stmt(a, b),
                "{name}: relation not symmetric on ({a}, {b})"
            );
        }
    }
}

#[test]
fn relation_matches_enumerated_facts_on_every_suite_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let facts = fsam.mhp.export_facts();
        // The pipeline's own cached relation …
        assert_identical(p.name(), &module, &facts, &fsam.mhp_rel);
        // … and one rebuilt from the serializable facts (the snapshot
        // load path) answer identically.
        let rebuilt = facts.relation();
        assert_identical(p.name(), &module, &facts, &rebuilt);
    }
}

#[test]
fn relation_matches_enumerated_facts_under_the_pcg_backend() {
    for p in [Program::WordCount, Program::Radiosity, Program::HttpdServer] {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze_with(&module, PhaseConfig::no_interleaving());
        let facts = fsam.mhp.export_facts();
        assert_identical(p.name(), &module, &facts, &fsam.mhp_rel);
    }
}

/// The relation's shape invariants: every statement with executors maps to
/// a region, regions are dense, and the parallel bits are a subset of the
/// matrix.
#[test]
fn relation_shape_is_coherent() {
    let module = Program::Radiosity.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let rel = &fsam.mhp_rel;
    assert!(rel.region_count() >= 1);
    assert!(rel.stmt_count() >= rel.region_count());
    assert!(rel.parallel_bits() <= rel.matrix_bits());
    for s in module.stmt_ids() {
        if let Some(r) = rel.region_of(s) {
            assert!(
                (r as usize) < rel.region_count(),
                "region id out of range for {s}"
            );
        }
    }
}

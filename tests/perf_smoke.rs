//! Perf smoke: the sparse solver's worklist traffic must stay bounded.
//!
//! The delta-propagating solver's whole point is that each suite program
//! converges in a small, deterministic number of worklist items (module
//! generation and the solver schedule are both seeded — reruns are
//! bit-identical). These bounds are the measured item counts at the smoke
//! scale with ~50% headroom; a regression that reintroduces redundant
//! recomputation (e.g. losing delta gating or the topological pop order)
//! blows through them long before wall-clock noise would show it.
//!
//! CI runs this as a dedicated perf-smoke step. If an intentional solver
//! change shifts the counts, re-measure (the failure message prints the
//! actual) and update the table alongside the change.

use std::time::Instant;

use fsam::{Fsam, PhaseConfig, Pipeline};
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};

/// Measured `stats.processed` per program at `Scale::SMOKE`, times 1.5.
/// These are the **sequential** schedule's counts: the worklist test below
/// pins the pipeline to one thread, because the level-synchronous parallel
/// schedule batches differently (deterministically, but not identically).
const BOUNDS: [(&str, usize); 10] = [
    ("word_count", 365),
    ("kmeans", 425),
    ("radiosity", 894),
    ("automount", 1181),
    ("ferret", 557),
    ("bodytrack", 405),
    ("httpd_server", 1164),
    ("mt_daapd", 1991),
    ("raytrace", 4475),
    ("x264", 5259),
];

#[test]
fn worklist_items_stay_under_checked_in_bounds() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Pipeline::for_module(&module)
            .with_threads(1)
            .run(PhaseConfig::full());
        let processed = fsam.result.stats.processed;
        let bound = BOUNDS
            .iter()
            .find(|(name, _)| *name == p.name())
            .unwrap_or_else(|| panic!("no bound checked in for {}", p.name()))
            .1;
        assert!(
            processed <= bound,
            "{}: solver processed {processed} worklist items, bound is {bound}",
            p.name()
        );
    }
}

/// The parallel pipeline must stay inside generous wall-clock ceilings on
/// the four largest programs — a scheduling regression (a worker spinning,
/// a level barrier that never releases, quadratic merge traffic) shows up
/// here as a hang or a blowout long before the identity tests time out.
#[test]
fn parallel_pipeline_stays_under_wall_clock_ceilings() {
    let ceiling_ms: u128 = if cfg!(debug_assertions) {
        20_000
    } else {
        4_000
    };
    let threads = fsam::thread_count().max(2);
    for p in [
        Program::X264,
        Program::Raytrace,
        Program::MtDaapd,
        Program::HttpdServer,
    ] {
        let module = p.generate(Scale::SMOKE);
        let start = Instant::now();
        let fsam = Pipeline::for_module(&module)
            .with_threads(threads)
            .run(PhaseConfig::full());
        let wall_ms = start.elapsed().as_millis();
        assert!(
            wall_ms <= ceiling_ms,
            "{}: parallel pipeline took {wall_ms} ms at {threads} threads, ceiling is {ceiling_ms} ms",
            p.name()
        );
        assert!(fsam.result.stats.processed > 0, "{}: empty solve", p.name());
    }
}

/// With a real multicore (≥ 8 workers available), the two parallelized
/// phases combined must beat the sequential pipeline by at least 2x on the
/// two heaviest programs at the benchmark scale. Self-skips on smaller
/// hosts — a 1-core CI container can only measure overhead, not speedup.
#[test]
fn parallel_speedup_reaches_two_x_on_eight_cores() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 8 {
        eprintln!("skipping speedup assertion: only {cores} cores available");
        return;
    }
    let scale = Scale(0.32);
    let (mut seq_us, mut par_us) = (0u128, 0u128);
    for p in [Program::X264, Program::Raytrace] {
        let module = p.generate(scale);
        let seq = Pipeline::for_module(&module)
            .with_threads(1)
            .run(PhaseConfig::full());
        let par = Pipeline::for_module(&module)
            .with_threads(8)
            .run(PhaseConfig::full());
        assert!(seq.result.points_to_eq(&par.result), "{}", p.name());
        seq_us += seq.times.value_flow.as_micros() + seq.times.sparse_solve.as_micros();
        par_us += par.times.value_flow.as_micros() + par.times.sparse_solve.as_micros();
    }
    let speedup = seq_us as f64 / par_us.max(1) as f64;
    assert!(
        speedup >= 2.0,
        "combined value-flow + solve speedup is {speedup:.2}x (seq {seq_us} us, par {par_us} us), need 2x"
    );
}

/// The factored lint path must stay cheap on the largest suite program:
/// grouped diagnostics and the streamed SARIF writer mean neither the wall
/// time nor the report size scales with the confirmed *pair* count
/// (x264 at this scale confirms ~1.7k pairs but reports 19 groups).
///
/// Measured at smoke scale: ~31 ms / 25,706 SARIF bytes (debug). The time
/// ceiling is debug-aware and generous against CI noise; the byte ceiling
/// is tight because the output is seeded and deterministic.
#[test]
fn x264_lint_time_and_sarif_size_stay_under_checked_in_ceilings() {
    use fsam_lint::{write_sarif, LintContext, Registry};

    const SARIF_BYTES_CEILING: u64 = 65_536;
    let wall_ms_ceiling: u128 = if cfg!(debug_assertions) { 2_000 } else { 500 };

    let module = Program::X264.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);

    let start = Instant::now();
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    let mut sarif = Vec::new();
    let stream =
        write_sarif(&cx, &registry, &report, None, None, &mut sarif).expect("stream to memory");
    let wall_ms = start.elapsed().as_millis();

    assert!(
        wall_ms <= wall_ms_ceiling,
        "x264 lint took {wall_ms} ms, ceiling is {wall_ms_ceiling} ms"
    );
    assert!(
        stream.bytes <= SARIF_BYTES_CEILING,
        "x264 SARIF is {} bytes, ceiling is {SARIF_BYTES_CEILING}",
        stream.bytes
    );
    assert!(
        cx.reduction().stats.confirmed > cx.reduction().stats.confirmed_groups,
        "the size argument assumes grouping collapses pairs"
    );
}

//! Perf smoke: the sparse solver's worklist traffic must stay bounded.
//!
//! The delta-propagating solver's whole point is that each suite program
//! converges in a small, deterministic number of worklist items (module
//! generation and the solver schedule are both seeded — reruns are
//! bit-identical). These bounds are the measured item counts at the smoke
//! scale with ~50% headroom; a regression that reintroduces redundant
//! recomputation (e.g. losing delta gating or the topological pop order)
//! blows through them long before wall-clock noise would show it.
//!
//! CI runs this as a dedicated perf-smoke step. If an intentional solver
//! change shifts the counts, re-measure (the failure message prints the
//! actual) and update the table alongside the change.

use std::time::Instant;

use fsam::Fsam;
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};

/// Measured `stats.processed` per program at `Scale::SMOKE`, times 1.5.
const BOUNDS: [(&str, usize); 10] = [
    ("word_count", 365),
    ("kmeans", 425),
    ("radiosity", 894),
    ("automount", 1181),
    ("ferret", 557),
    ("bodytrack", 405),
    ("httpd_server", 1164),
    ("mt_daapd", 1991),
    ("raytrace", 4475),
    ("x264", 5259),
];

#[test]
fn worklist_items_stay_under_checked_in_bounds() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let processed = fsam.result.stats.processed;
        let bound = BOUNDS
            .iter()
            .find(|(name, _)| *name == p.name())
            .unwrap_or_else(|| panic!("no bound checked in for {}", p.name()))
            .1;
        assert!(
            processed <= bound,
            "{}: solver processed {processed} worklist items, bound is {bound}",
            p.name()
        );
    }
}

/// The factored lint path must stay cheap on the largest suite program:
/// grouped diagnostics and the streamed SARIF writer mean neither the wall
/// time nor the report size scales with the confirmed *pair* count
/// (x264 at this scale confirms ~1.7k pairs but reports 19 groups).
///
/// Measured at smoke scale: ~31 ms / 25,706 SARIF bytes (debug). The time
/// ceiling is debug-aware and generous against CI noise; the byte ceiling
/// is tight because the output is seeded and deterministic.
#[test]
fn x264_lint_time_and_sarif_size_stay_under_checked_in_ceilings() {
    use fsam_lint::{write_sarif, LintContext, Registry};

    const SARIF_BYTES_CEILING: u64 = 65_536;
    let wall_ms_ceiling: u128 = if cfg!(debug_assertions) { 2_000 } else { 500 };

    let module = Program::X264.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);

    let start = Instant::now();
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    let mut sarif = Vec::new();
    let stream =
        write_sarif(&cx, &registry, &report, None, None, &mut sarif).expect("stream to memory");
    let wall_ms = start.elapsed().as_millis();

    assert!(
        wall_ms <= wall_ms_ceiling,
        "x264 lint took {wall_ms} ms, ceiling is {wall_ms_ceiling} ms"
    );
    assert!(
        stream.bytes <= SARIF_BYTES_CEILING,
        "x264 SARIF is {} bytes, ceiling is {SARIF_BYTES_CEILING}",
        stream.bytes
    );
    assert!(
        cx.reduction().stats.confirmed > cx.reduction().stats.confirmed_groups,
        "the size argument assumes grouping collapses pairs"
    );
}

//! Perf smoke: the sparse solver's worklist traffic must stay bounded.
//!
//! The delta-propagating solver's whole point is that each suite program
//! converges in a small, deterministic number of worklist items (module
//! generation and the solver schedule are both seeded — reruns are
//! bit-identical). These bounds are the measured item counts at the smoke
//! scale with ~50% headroom; a regression that reintroduces redundant
//! recomputation (e.g. losing delta gating or the topological pop order)
//! blows through them long before wall-clock noise would show it.
//!
//! CI runs this as a dedicated perf-smoke step. If an intentional solver
//! change shifts the counts, re-measure (the failure message prints the
//! actual) and update the table alongside the change.

use fsam::Fsam;
use fsam_suite::{Program, Scale};

/// Measured `stats.processed` per program at `Scale::SMOKE`, times 1.5.
const BOUNDS: [(&str, usize); 10] = [
    ("word_count", 365),
    ("kmeans", 425),
    ("radiosity", 894),
    ("automount", 1181),
    ("ferret", 557),
    ("bodytrack", 405),
    ("httpd_server", 1164),
    ("mt_daapd", 1991),
    ("raytrace", 4475),
    ("x264", 5259),
];

#[test]
fn worklist_items_stay_under_checked_in_bounds() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let processed = fsam.result.stats.processed;
        let bound = BOUNDS
            .iter()
            .find(|(name, _)| *name == p.name())
            .unwrap_or_else(|| panic!("no bound checked in for {}", p.name()))
            .1;
        assert!(
            processed <= bound,
            "{}: solver processed {processed} worklist items, bound is {bound}",
            p.name()
        );
    }
}

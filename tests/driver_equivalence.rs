//! Driver equivalence: the staged [`Pipeline`] and the legacy one-shot
//! `Fsam::analyze_with` entry point must be interchangeable.
//!
//! For every Figure 12 configuration on real suite programs, a stage-sharing
//! `Pipeline::run_all` batch must produce bit-identical points-to results and
//! value-flow statistics to a fresh `Fsam::analyze_with` call, and the shared
//! stages must have been built exactly once across the batch.

use fsam::{Fsam, PhaseConfig, Pipeline};
use fsam_suite::{Program, Scale};

fn configs() -> [PhaseConfig; 4] {
    [
        PhaseConfig::full(),
        PhaseConfig::no_interleaving(),
        PhaseConfig::no_value_flow(),
        PhaseConfig::no_lock(),
    ]
}

const PROGRAMS: [Program; 2] = [Program::WordCount, Program::Bodytrack];
const SCALE: Scale = Scale(0.05);

#[test]
fn staged_runs_match_legacy_driver_bit_for_bit() {
    for p in PROGRAMS {
        let module = p.generate(SCALE);
        let pipeline = Pipeline::for_module(&module);
        let staged = pipeline.run_all();
        let configs = configs();
        assert_eq!(staged.len(), configs.len());

        for (run, &config) in staged.iter().zip(&configs) {
            assert_eq!(
                run.config,
                config,
                "{}: run order matches configs()",
                p.name()
            );
            let legacy = Fsam::analyze_with(&module, config);
            assert_eq!(
                run.result,
                legacy.result,
                "{}/{:?}: staged and legacy points-to results diverge",
                p.name(),
                config
            );
            assert_eq!(
                run.vf_stats,
                legacy.vf_stats,
                "{}/{:?}: staged and legacy value-flow statistics diverge",
                p.name(),
                config
            );
            assert_eq!(run.lock.is_some(), legacy.lock.is_some());
            assert_eq!(
                run.mhp.interleaving().is_some(),
                legacy.mhp.interleaving().is_some(),
                "{}/{:?}: MHP backend variant differs",
                p.name(),
                config
            );
        }
    }
}

/// The delta-propagating solver must reach exactly the fixpoint of the
/// recompute-and-replace oracle — same points-to set at every variable and
/// every object definition — on every suite program. (Item counts and
/// strong/weak tallies legitimately differ between the two strategies;
/// the sets may not.)
#[test]
fn delta_solver_matches_recompute_oracle_on_every_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let oracle = fsam::solve_recompute(&module, &fsam.pre, &fsam.svfg);
        assert!(
            fsam.result.points_to_eq(&oracle),
            "{}: delta and recompute fixpoints diverge",
            p.name()
        );
        assert_eq!(
            fsam.result.stats.var_pts_entries,
            oracle.stats.var_pts_entries,
            "{}: variable points-to entry totals diverge",
            p.name()
        );
        assert_eq!(
            fsam.result.stats.def_pts_entries,
            oracle.stats.def_pts_entries,
            "{}: definition points-to entry totals diverge",
            p.name()
        );
    }
}

#[test]
fn batch_builds_each_shared_stage_once() {
    let module = Program::WordCount.generate(SCALE);
    let pipeline = Pipeline::for_module(&module);
    let _ = pipeline.run_all();

    let counts = pipeline.build_counts();
    assert_eq!(counts.pre_analysis, 1, "one Andersen pre-analysis");
    assert_eq!(counts.icfg, 1, "one ICFG + thread model");
    assert_eq!(counts.contexts, 1, "one context-table precompute");
    assert_eq!(counts.svfg, 1, "one thread-oblivious SVFG");
    assert_eq!(counts.interleaving, 1, "one interleaving analysis");
    assert_eq!(counts.pcg, 1, "one PCG fallback (for no-interleaving)");
    assert_eq!(counts.lock, 1, "one lock analysis");
    assert!(
        counts.parallel_interference,
        "interleaving and lock ran in one thread::scope"
    );
}

#[test]
fn phase_times_report_every_stage_the_config_exercises() {
    let module = Program::WordCount.generate(SCALE);
    let pipeline = Pipeline::for_module(&module);

    for run in pipeline.run_all() {
        let t = &run.times;
        // Shared stages report their (one) build duration on every run, so
        // totals stay comparable between a fresh run and a cached run.
        assert!(
            !t.pre_analysis.is_zero(),
            "{:?}: pre-analysis timed",
            run.config
        );
        assert!(
            !t.thread_model.is_zero(),
            "{:?}: thread model timed",
            run.config
        );
        assert!(!t.svfg.is_zero(), "{:?}: SVFG timed", run.config);
        assert!(
            !t.value_flow.is_zero(),
            "{:?}: value-flow timed",
            run.config
        );
        assert!(
            !t.sparse_solve.is_zero(),
            "{:?}: sparse solve timed",
            run.config
        );
        assert!(t.total() >= t.sparse_solve);
        // The lock phase is only charged when the configuration enables it.
        assert_eq!(
            t.lock.is_zero(),
            !run.config.lock,
            "{:?}: lock timing gated",
            run.config
        );
    }
}

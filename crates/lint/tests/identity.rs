//! Result-identity of the registry checkers with the legacy `detect`
//! entry points, asserted per suite program: the staged reducer must kill
//! candidates for *speed*, never for *results*.

// The legacy `detect` entry points are the comparison baseline here.
#![allow(deprecated)]

use fsam::Fsam;
use fsam_lint::{LintContext, Registry};
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};

#[test]
fn registry_races_and_deadlocks_match_legacy_on_every_suite_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let report = Registry::with_default_checkers().run(&cx);

        // Races: FL0001's (store, access, obj) triples — via the reducer
        // the checker consumes — must equal the legacy detector's.
        let legacy_races: Vec<(u32, u32, u32)> = fsam::detect_races(&module, &fsam)
            .into_iter()
            .map(|r| (r.store.raw(), r.access.raw(), r.obj.raw()))
            .collect();
        let reduced: Vec<(u32, u32, u32)> = cx
            .reduction()
            .confirmed
            .iter()
            .map(|r| (r.store.raw(), r.access.raw(), r.obj.raw()))
            .collect();
        assert_eq!(reduced, legacy_races, "{}: race sets diverge", p.name());
        assert_eq!(
            report.count_of("FL0001") + suppressed_count(&report, "FL0001"),
            legacy_races.len(),
            "{}: FL0001 must report every confirmed race",
            p.name()
        );

        // Deadlocks: FL0002's ABBA findings must carry exactly the legacy
        // detector's (lock_a, lock_b, site_ab, site_ba) tuples.
        let mut legacy_dl: Vec<(String, String, String, String)> =
            fsam::detect_deadlocks(&module, &fsam)
                .into_iter()
                .map(|d| {
                    (
                        d.lock_a.raw().to_string(),
                        d.lock_b.raw().to_string(),
                        d.site_ab.raw().to_string(),
                        d.site_ba.raw().to_string(),
                    )
                })
                .collect();
        legacy_dl.sort();
        let mut lint_dl: Vec<(String, String, String, String)> = report
            .with_code("FL0002")
            .chain(report.suppressed.iter().filter(|d| d.code == "FL0002"))
            .filter(|d| d.prop("kind") == Some("abba"))
            .map(|d| {
                (
                    d.prop("lock_a").unwrap().to_owned(),
                    d.prop("lock_b").unwrap().to_owned(),
                    d.prop("site_ab").unwrap().to_owned(),
                    d.prop("site_ba").unwrap().to_owned(),
                )
            })
            .collect();
        lint_dl.sort();
        assert_eq!(lint_dl, legacy_dl, "{}: deadlock sets diverge", p.name());
    }
}

fn suppressed_count(report: &fsam_lint::LintReport, code: &str) -> usize {
    report.suppressed.iter().filter(|d| d.code == code).count()
}

/// The reducer's funnel must be coherent on every suite program: stages
/// only ever shrink the candidate set, and the confirmed count closes the
/// arithmetic.
#[test]
fn reduction_funnel_is_coherent_on_every_suite_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let s = cx.reduction().stats;
        assert!(s.after_shared() <= s.candidates, "{}: {s:?}", p.name());
        assert!(s.after_mhp() <= s.after_shared(), "{}: {s:?}", p.name());
        assert!(s.after_lockset() <= s.after_mhp(), "{}: {s:?}", p.name());
        assert_eq!(
            s.after_lockset() - s.killed_alias,
            s.confirmed,
            "{}: {s:?}",
            p.name()
        );
        assert_eq!(
            cx.reduction().hb_protected.len() as u64,
            s.killed_alias,
            "{}: every alias kill is an FL0005 candidate",
            p.name()
        );
    }
}

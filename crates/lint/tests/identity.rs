//! Result-identity of the registry checkers with a reference pair
//! enumeration, asserted per suite program: the staged reducer must kill
//! candidates for *speed* and group them for *deduplication*, never
//! changing which races exist.
//!
//! The reference below is the classic enumerating detector spelled out
//! pair by pair — the exact algorithm the core crate's retired
//! `race::detect` implemented: flow-sensitively confirmed store × access
//! pairs on shared objects that may happen in parallel without a common
//! lock. The reducer's grouped output must cover the same pairs exactly:
//! same objects, same per-object pair counts, and each group's
//! representative is the smallest surviving pair on its object.

use std::collections::{BTreeMap, HashMap, HashSet};

use fsam::Fsam;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_lint::{LintContext, Registry};
use fsam_pts::MemId;
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};
use fsam_threads::mhp::MhpOracle;
use fsam_threads::SharedObjects;

/// The classic lockset × MHP detector over the flow-sensitive sets, one
/// `(store, access, obj)` triple per racy pair.
fn reference_races(module: &Module, fsam: &Fsam) -> Vec<(StmtId, StmtId, MemId)> {
    let oracle: &dyn MhpOracle = &fsam.mhp;
    let shared = SharedObjects::compute(module, &fsam.pre);
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        match stmt.kind {
            StmtKind::Store { ptr, .. } => {
                for o in fsam.result.pt_var(ptr).iter() {
                    stores_of.entry(o).or_default().push(sid);
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            StmtKind::Load { ptr, .. } => {
                for o in fsam.result.pt_var(ptr).iter() {
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            _ => {}
        }
    }
    let mut races = Vec::new();
    let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
    objects.sort();
    for o in objects {
        if fsam.pre.objects().as_thread_handle(o).is_some() {
            continue;
        }
        if !shared.is_shared(&fsam.pre, o) {
            continue;
        }
        let stores = &stores_of[&o];
        let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        let store_set: HashSet<StmtId> = stores.iter().copied().collect();
        for &s in stores {
            for &a in accesses {
                // Store/store pairs appear in both orders; keep one.
                if store_set.contains(&a) && s > a {
                    continue;
                }
                if !fsam.mhp_rel.mhp_stmt(s, a) {
                    continue;
                }
                // Pairs must-ordered by condvar/barrier/atomic sync are
                // synchronized, not racy (DESIGN §1.9).
                if fsam.hb.ordered_stmt(s, a) {
                    continue;
                }
                if fsam::racy_instances(fsam, oracle, s, a) {
                    races.push((s, a, o));
                }
            }
        }
    }
    races.sort();
    races.dedup();
    races
}

/// Groups reference pairs per object: (min pair, count).
fn group_reference(pairs: &[(StmtId, StmtId, MemId)]) -> BTreeMap<MemId, ((StmtId, StmtId), u64)> {
    let mut groups: BTreeMap<MemId, ((StmtId, StmtId), u64)> = BTreeMap::new();
    for &(s, a, o) in pairs {
        groups
            .entry(o)
            .and_modify(|(rep, n)| {
                *rep = (*rep).min((s, a));
                *n += 1;
            })
            .or_insert(((s, a), 1));
    }
    groups
}

#[test]
fn grouped_races_cover_the_reference_enumeration_on_every_suite_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let report = Registry::with_default_checkers().run(&cx);

        let reference = reference_races(&module, &fsam);
        let want = group_reference(&reference);
        let got: BTreeMap<MemId, ((StmtId, StmtId), u64)> = cx
            .reduction()
            .confirmed
            .iter()
            .map(|g| (g.obj, ((g.rep.store, g.rep.access), g.instances)))
            .collect();
        assert_eq!(
            got,
            want,
            "{}: grouped races diverge from the reference enumeration",
            p.name()
        );
        assert_eq!(
            cx.reduction().stats.confirmed,
            reference.len() as u64,
            "{}: instance total must close against the reference",
            p.name()
        );

        // FL0001: one diagnostic per group, carrying the representative's
        // raw ids and the instance count.
        let fl1: Vec<(u32, u32, u32, u64)> = report
            .with_code("FL0001")
            .chain(report.suppressed.iter().filter(|d| d.code == "FL0001"))
            .map(|d| {
                (
                    d.prop("store").unwrap().parse().unwrap(),
                    d.prop("access").unwrap().parse().unwrap(),
                    d.prop("obj_id").unwrap().parse().unwrap(),
                    d.prop("instances").unwrap().parse().unwrap(),
                )
            })
            .collect();
        let mut want_fl1: Vec<(u32, u32, u32, u64)> = want
            .iter()
            .map(|(&o, &((s, a), n))| (s.raw(), a.raw(), o.raw(), n))
            .collect();
        want_fl1.sort();
        let mut got_fl1 = fl1;
        got_fl1.sort();
        assert_eq!(
            got_fl1,
            want_fl1,
            "{}: FL0001 diagnostics diverge",
            p.name()
        );

        // Deadlocks: FL0002's ABBA findings must carry exactly the
        // engine-backed detector's (lock_a, lock_b, site_ab, site_ba)
        // tuples.
        let mut want_dl: Vec<(String, String, String, String)> =
            fsam_query::detect_deadlocks(&module, &fsam, &engine)
                .into_iter()
                .map(|d| {
                    (
                        d.lock_a.raw().to_string(),
                        d.lock_b.raw().to_string(),
                        d.site_ab.raw().to_string(),
                        d.site_ba.raw().to_string(),
                    )
                })
                .collect();
        want_dl.sort();
        let mut lint_dl: Vec<(String, String, String, String)> = report
            .with_code("FL0002")
            .chain(report.suppressed.iter().filter(|d| d.code == "FL0002"))
            .filter(|d| d.prop("kind") == Some("abba"))
            .map(|d| {
                (
                    d.prop("lock_a").unwrap().to_owned(),
                    d.prop("lock_b").unwrap().to_owned(),
                    d.prop("site_ab").unwrap().to_owned(),
                    d.prop("site_ba").unwrap().to_owned(),
                )
            })
            .collect();
        lint_dl.sort();
        assert_eq!(lint_dl, want_dl, "{}: deadlock sets diverge", p.name());
    }
}

/// The reducer's funnel must be coherent on every suite program: stages
/// only ever shrink the candidate set, the confirmed count closes the
/// arithmetic, and the grouped forms never exceed their instance totals.
#[test]
fn reduction_funnel_is_coherent_on_every_suite_program() {
    for p in Program::all() {
        let module = p.generate(Scale::SMOKE);
        let fsam = Fsam::analyze(&module);
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let s = cx.reduction().stats;
        assert!(s.after_shared() <= s.candidates, "{}: {s:?}", p.name());
        assert!(s.after_mhp() <= s.after_shared(), "{}: {s:?}", p.name());
        assert!(s.after_hb() <= s.after_mhp(), "{}: {s:?}", p.name());
        assert!(s.after_lockset() <= s.after_hb(), "{}: {s:?}", p.name());
        assert_eq!(
            s.after_lockset() - s.killed_alias,
            s.confirmed,
            "{}: {s:?}",
            p.name()
        );
        let red = cx.reduction();
        assert_eq!(red.confirmed.len() as u64, s.confirmed_groups);
        assert_eq!(red.hb_protected.len() as u64, s.hb_groups);
        assert_eq!(
            red.confirmed.iter().map(|g| g.instances).sum::<u64>(),
            s.confirmed,
            "{}: group instances must sum to the confirmed pairs",
            p.name()
        );
        assert_eq!(
            red.hb_protected.iter().map(|g| g.instances).sum::<u64>(),
            s.killed_hb + s.killed_alias,
            "{}: every HB and alias kill lands in an FL0005 group",
            p.name()
        );
        assert!(
            s.confirmed_groups <= s.confirmed && s.hb_groups <= s.killed_hb + s.killed_alias,
            "{}: grouping never invents findings: {s:?}",
            p.name()
        );
    }
}

//! Golden SARIF files for three suite programs, diffed byte-for-byte,
//! plus the streaming writer's contracts: uncapped byte-identity with the
//! tree renderer, and the severity-ranked cap with its overflow record —
//! both validated against the SARIF 2.1.0 structural checker.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! FSAM_BLESS=1 cargo test -p fsam-lint --test golden
//! ```

use fsam::Fsam;
use fsam_lint::{to_sarif, validate_sarif, write_sarif, LintContext, Registry};
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};
use fsam_trace::json;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.sarif"))
}

fn check(program: Program) {
    let module = program.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    let tree = to_sarif(&cx, &registry, &report, None);
    let rendered = tree.to_json_pretty();

    // The golden layout must satisfy the structural validator …
    validate_sarif(&tree).expect("golden SARIF validates");

    // … and the streaming writer, uncapped, must emit the identical
    // compact byte stream.
    let mut streamed = Vec::new();
    let stats =
        write_sarif(&cx, &registry, &report, None, None, &mut streamed).expect("stream to memory");
    assert_eq!(
        String::from_utf8(streamed).unwrap(),
        tree.to_json(),
        "{}: uncapped stream must be byte-identical to the tree renderer",
        program.name()
    );
    assert_eq!(stats.omitted, 0);
    assert_eq!(
        stats.results_written,
        report.diagnostics.len() + report.suppressed.len()
    );

    let path = golden_path(program.name());
    if std::env::var_os("FSAM_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with FSAM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "{}: SARIF output drifted from {}; if intentional, re-bless with FSAM_BLESS=1",
        program.name(),
        path.display()
    );
}

#[test]
fn golden_sarif_word_count() {
    check(Program::WordCount);
}

#[test]
fn golden_sarif_radiosity() {
    check(Program::Radiosity);
}

#[test]
fn golden_sarif_ferret() {
    // A clean program: the golden file pins the empty-result layout.
    check(Program::Ferret);
}

/// The severity-ranked cap: capping below the result count keeps the
/// highest-severity results, appends one overflow record, and the capped
/// stream still round-trips through the parser and the validator.
#[test]
fn capped_stream_keeps_top_severity_and_counts_overflow() {
    // Radiosity at smoke scale produces a mixed-severity report.
    let module = Program::Radiosity.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    let total = report.diagnostics.len() + report.suppressed.len();
    assert!(total >= 2, "need at least two results to cap, got {total}");

    let cap = 1;
    let mut streamed = Vec::new();
    let stats = write_sarif(&cx, &registry, &report, None, Some(cap), &mut streamed)
        .expect("stream to memory");
    assert_eq!(stats.results_written, cap);
    assert_eq!(stats.omitted, total - cap);
    assert_eq!(stats.bytes as usize, streamed.len());

    let text = String::from_utf8(streamed).unwrap();
    let doc = json::parse(&text).expect("capped stream parses");
    validate_sarif(&doc).expect("capped stream validates");

    let results = doc
        .get("runs")
        .and_then(|r| match r {
            json::Value::Arr(a) => a.first(),
            _ => None,
        })
        .and_then(|run| run.get("results"))
        .and_then(|r| match r {
            json::Value::Arr(a) => Some(a),
            _ => None,
        })
        .expect("results array");
    assert_eq!(
        results.len(),
        cap + 1,
        "kept results plus the overflow record"
    );

    // The kept result is the most severe one in the report.
    let top = report
        .diagnostics
        .iter()
        .chain(&report.suppressed)
        .map(|d| d.severity)
        .min()
        .unwrap();
    assert_eq!(
        results[0].get("level").and_then(json::Value::as_str),
        Some(top.sarif_level()),
        "the cap keeps the highest severity first"
    );

    let overflow = results.last().unwrap();
    assert_eq!(
        overflow.get("level").and_then(json::Value::as_str),
        Some("none")
    );
    let msg = overflow
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(json::Value::as_str)
        .unwrap();
    assert_eq!(
        msg,
        format!(
            "and {} more results omitted (severity-ranked cap {cap})",
            total - cap
        ),
        "overflow record counts every omission"
    );

    // Capped output is strictly smaller than the full stream.
    let mut full = Vec::new();
    write_sarif(&cx, &registry, &report, None, None, &mut full).unwrap();
    assert!(text.len() < full.len());
}

/// The validator rejects structurally broken documents.
#[test]
fn validator_rejects_malformed_documents() {
    let ok = json::parse(
        r#"{"$schema":"s","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[]}]}"#,
    )
    .unwrap();
    assert!(validate_sarif(&ok).is_ok());

    for (broken, why) in [
        (r#"{"version":"2.1.0","runs":[]}"#, "missing $schema"),
        (
            r#"{"$schema":"s","version":"9.9","runs":[]}"#,
            "bad version",
        ),
        (r#"{"$schema":"s","version":"2.1.0","runs":[]}"#, "no runs"),
        (
            r#"{"$schema":"s","version":"2.1.0","runs":[{"results":[]}]}"#,
            "run without tool",
        ),
        (
            r#"{"$schema":"s","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"level":"error"}]}]}"#,
            "result without message",
        ),
        (
            r#"{"$schema":"s","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{"message":{"text":"m"},"level":"fatal"}]}]}"#,
            "unknown level",
        ),
    ] {
        let doc = json::parse(broken).unwrap();
        assert!(validate_sarif(&doc).is_err(), "must reject: {why}");
    }
}

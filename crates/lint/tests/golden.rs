//! Golden SARIF files for three suite programs, diffed byte-for-byte.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! FSAM_BLESS=1 cargo test -p fsam-lint --test golden
//! ```

use fsam::Fsam;
use fsam_lint::{to_sarif, LintContext, Registry};
use fsam_query::QueryEngine;
use fsam_suite::{Program, Scale};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.sarif"))
}

fn check(program: Program) {
    let module = program.generate(Scale::SMOKE);
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    let rendered = to_sarif(&cx, &registry, &report, None).to_json_pretty();

    let path = golden_path(program.name());
    if std::env::var_os("FSAM_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with FSAM_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        want,
        "{}: SARIF output drifted from {}; if intentional, re-bless with FSAM_BLESS=1",
        program.name(),
        path.display()
    );
}

#[test]
fn golden_sarif_word_count() {
    check(Program::WordCount);
}

#[test]
fn golden_sarif_radiosity() {
    check(Program::Radiosity);
}

#[test]
fn golden_sarif_ferret() {
    // A clean program: the golden file pins the empty-result layout.
    check(Program::Ferret);
}

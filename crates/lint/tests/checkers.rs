//! Behavioral coverage of the checker registry: the three new checkers,
//! comment suppression, report determinism, SARIF round-tripping, and the
//! trace-backed code flow on a Figure 1(a)-style interference race.

use std::sync::Arc;

use fsam::{Fsam, PhaseConfig, Pipeline};
use fsam_ir::parse::parse_module;
use fsam_ir::Module;
use fsam_lint::{render_text, to_sarif, LintContext, LintReport, Registry};
use fsam_query::QueryEngine;
use fsam_trace::{json, Recorder};

fn lint(src: &str) -> (Module, LintReport) {
    let module = parse_module(src).unwrap();
    let fsam = Fsam::analyze(&module);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let report = Registry::with_default_checkers().run(&cx);
    (module, report)
}

#[test]
fn double_acquire_is_a_self_deadlock() {
    let (_, report) = lint(
        r#"
        global lk
        func main() {
        entry:
          l = &lk
          lock l
          lock l
          unlock l
          ret
        }
    "#,
    );
    assert_eq!(report.count_of("FL0003"), 1, "{report:?}");
    let d = report.with_code("FL0003").next().unwrap();
    assert!(d.message.contains("already held"), "{}", d.message);
}

#[test]
fn single_acquire_is_not_a_double_acquire() {
    let (_, report) = lint(
        r#"
        global lk
        func main() {
        entry:
          l = &lk
          lock l
          unlock l
          lock l
          unlock l
          ret
        }
    "#,
    );
    assert_eq!(report.count_of("FL0003"), 0, "{report:?}");
}

#[test]
fn conditional_acquire_is_a_lockset_inconsistency() {
    let (_, report) = lint(
        r#"
        global o
        global lk
        func main() {
        entry:
          p = &o
          l = &lk
          br ?, yes, no
        yes:
          lock l
          br merge
        no:
          br merge
        merge:
          c = load p
          ret
        }
    "#,
    );
    assert_eq!(report.count_of("FL0004"), 1, "{report:?}");
    let d = report.with_code("FL0004").next().unwrap();
    assert!(
        d.message.contains("some but not all paths"),
        "{}",
        d.message
    );
    assert_eq!(d.prop("func"), Some("main"));
}

#[test]
fn balanced_locking_has_no_lockset_inconsistency() {
    let (_, report) = lint(
        r#"
        global o
        global lk
        func main() {
        entry:
          p = &o
          l = &lk
          lock l
          c = load p
          unlock l
          ret
        }
    "#,
    );
    assert_eq!(report.count_of("FL0004"), 0, "{report:?}");
}

/// The racy-init pattern: `s` is repointed from `x` to `y` *before* the
/// fork, so the worker's write to `x` and main's load through `s` are an
/// Andersen-level race candidate that flow-sensitive propagation refutes.
#[test]
fn refuted_init_race_is_an_fl0005_note_not_a_race() {
    let (_, report) = lint(
        r#"
        global s
        global x
        global y
        func worker() {
        entry:
          px2 = &x
          store px2, px2
          ret
        }
        func main() {
        entry:
          ps = &s
          px = &x
          py = &y
          store ps, px
          store ps, py
          t = fork worker()
          p = load ps
          c = load p
          ret
        }
        "#,
    );
    assert_eq!(
        report.count_of("FL0001"),
        0,
        "no confirmed race: {report:?}"
    );
    assert!(
        report.count_of("FL0005") >= 1,
        "the refuted candidate must surface: {report:?}"
    );
    let d = report.with_code("FL0005").next().unwrap();
    assert!(d.message.contains("refuted"), "{}", d.message);
    assert_eq!(d.prop("obj"), Some("x"));
}

#[test]
fn suppression_directive_hides_but_keeps_the_race() {
    let src = "\
global counter
func worker() {
entry:
  p = &counter
  // fsam-lint: allow(FL0001)
  store p, p
  ret
}
func main() {
entry:
  q = &counter
  t = fork worker()
  c = load q
  ret
}
";
    let (module, report) = lint(src);
    assert!(
        !module.lint_directives().is_empty(),
        "directive must be collected"
    );
    assert_eq!(report.count_of("FL0001"), 0, "suppressed: {report:?}");
    assert!(
        report.suppressed.iter().any(|d| d.code == "FL0001"),
        "suppressed findings are kept: {report:?}"
    );
    // The rendered report shows the suppression rather than dropping it.
    let text = render_text(&module, &report);
    assert!(text.contains("(suppressed)"), "{text}");
}

/// Two full pipeline runs must produce byte-identical lint output — text
/// and SARIF (with explain-backed code flows) alike.
#[test]
fn lint_output_is_byte_identical_across_runs() {
    let src = r#"
        global s
        global x
        func publisher() {
        entry:
          px = &x
          ps = &s
          store ps, px
          store px, px
          ret
        }
        func main() {
        entry:
          ps2 = &s
          t = fork publisher()
          p = load ps2
          c = load p
          ret
        }
    "#;
    let run = || {
        let module = parse_module(src).unwrap();
        let rec = Arc::new(Recorder::with_explain(1 << 18));
        let fsam = Pipeline::for_module(&module)
            .with_trace(Arc::clone(&rec))
            .run(PhaseConfig::full());
        assert_eq!(rec.dropped(), 0, "ring must hold the full run");
        let engine = QueryEngine::from_fsam(&module, &fsam);
        let cx = LintContext::new(&module, &fsam, &engine);
        let registry = Registry::with_default_checkers();
        let report = registry.run(&cx);
        let events = rec.events();
        let sarif = to_sarif(&cx, &registry, &report, Some(&events));
        (render_text(&module, &report), sarif.to_json_pretty())
    };
    let (text1, sarif1) = run();
    let (text2, sarif2) = run();
    assert_eq!(text1, text2, "text report must be deterministic");
    assert_eq!(sarif1, sarif2, "SARIF report must be deterministic");
}

/// A Figure 1(a)-style program where the racing alias itself is created
/// by thread interference: the publisher thread writes `&x` into `s`,
/// main reads it back and dereferences. The race diagnostic's code flow
/// must ride the `thread` value-flow edge that made the alias possible,
/// and the SARIF log must round-trip through the fsam-trace JSON parser.
#[test]
fn race_code_flow_crosses_the_thread_interference_edge() {
    let module = parse_module(
        r#"
        global s
        global x
        func publisher() {
        entry:
          px = &x
          ps = &s
          store ps, px
          store px, px
          ret
        }
        func main() {
        entry:
          ps2 = &s
          t = fork publisher()
          p = load ps2
          c = load p
          ret
        }
    "#,
    )
    .unwrap();
    let rec = Arc::new(Recorder::with_explain(1 << 18));
    let fsam = Pipeline::for_module(&module)
        .with_trace(Arc::clone(&rec))
        .run(PhaseConfig::full());
    assert_eq!(rec.dropped(), 0);
    let engine = QueryEngine::from_fsam(&module, &fsam);
    let cx = LintContext::new(&module, &fsam, &engine);
    let registry = Registry::with_default_checkers();
    let report = registry.run(&cx);
    assert!(report.count_of("FL0001") >= 1, "{report:?}");

    let events = rec.events();
    let sarif = to_sarif(&cx, &registry, &report, Some(&events));

    // Round-trip through the hand-rolled JSON infrastructure: both the
    // compact and the pretty serialization parse back to the same tree.
    assert_eq!(json::parse(&sarif.to_json()).unwrap(), sarif);
    assert_eq!(json::parse(&sarif.to_json_pretty()).unwrap(), sarif);

    // At least one race result's code flow crosses a `thread` edge.
    let text = sarif.to_json();
    assert!(
        text.contains("codeFlows"),
        "explain-enabled run must embed code flows: {text}"
    );
    assert!(
        text.contains("via `thread`"),
        "the alias derivation must cross the interference edge: {text}"
    );

    // Structure sanity: results sit where SARIF 2.1.0 puts them.
    let runs = sarif.get("runs").and_then(|r| match r {
        json::Value::Arr(a) => a.first(),
        _ => None,
    });
    let results = runs.and_then(|r| r.get("results"));
    assert!(
        matches!(results, Some(json::Value::Arr(a)) if !a.is_empty()),
        "results present"
    );
}

//! [`LintContext`] — everything a checker may consult, prepared once.

use std::sync::{Arc, OnceLock};

use fsam::Fsam;
use fsam_ir::Module;
use fsam_query::QueryEngine;
use fsam_threads::SharedObjects;
use fsam_trace::Recorder;

use crate::reduce::{reduce, Reduction};

/// The shared input to every checker: the module, the completed analysis,
/// the batched query engine over its snapshot, and lazily computed
/// derived facts (thread-shared objects, the staged race reduction).
///
/// Checkers read analysis facts through the [`QueryEngine`] where one
/// exists for the fact (points-to, MHP, aliasing) rather than poking the
/// raw tables; instance-level facts (locksets, per-instance MHP) come
/// from the `Fsam` result the engine was captured from.
pub struct LintContext<'a> {
    /// The program under analysis.
    pub module: &'a Module,
    /// The completed pipeline run.
    pub fsam: &'a Fsam,
    /// Batched demand-driven queries over the run's snapshot.
    pub engine: &'a QueryEngine,
    recorder: Arc<Recorder>,
    shared: SharedObjects,
    reduction: OnceLock<Reduction>,
}

impl<'a> LintContext<'a> {
    /// A context without tracing.
    pub fn new(module: &'a Module, fsam: &'a Fsam, engine: &'a QueryEngine) -> LintContext<'a> {
        LintContext::with_trace(module, fsam, engine, Arc::new(Recorder::disabled()))
    }

    /// A context whose reducer funnel counters land on `recorder` (the
    /// `lint.*` namespace). Pass the same recorder the pipeline ran with
    /// to keep one merged event stream.
    pub fn with_trace(
        module: &'a Module,
        fsam: &'a Fsam,
        engine: &'a QueryEngine,
        recorder: Arc<Recorder>,
    ) -> LintContext<'a> {
        LintContext {
            module,
            fsam,
            engine,
            recorder,
            shared: SharedObjects::compute(module, &fsam.pre),
            reduction: OnceLock::new(),
        }
    }

    /// The thread-escape facts (`threads::shared`).
    pub fn shared(&self) -> &SharedObjects {
        &self.shared
    }

    /// The trace recorder (disabled unless supplied).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The staged race reduction, computed on first use and shared by
    /// every checker that needs it (FL0001 consumes `confirmed`, FL0005
    /// consumes `hb_protected`).
    pub fn reduction(&self) -> &Reduction {
        self.reduction.get_or_init(|| {
            reduce(
                self.module,
                self.fsam,
                self.engine,
                &self.shared,
                &self.recorder,
            )
        })
    }
}

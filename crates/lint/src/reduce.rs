//! The staged race-candidate reducer.
//!
//! A naive race detector confirms every pair in the O(n²) store × access
//! space with the most expensive test it has. This module runs the cheap,
//! coarse filters first and the flow-sensitive alias confirmation *last*,
//! so the precise machinery only ever sees the candidates nothing cheaper
//! could kill:
//!
//! 1. **enumerate** — store × access pairs per abstract object, from the
//!    *Andersen* points-to sets (a superset of the flow-sensitive sets, so
//!    nothing real is lost by starting coarse);
//! 2. **shared** — drop objects never visible to two threads
//!    ([`SharedObjects`]) and analysis artifacts (thread handles);
//! 3. **MHP** — drop pairs whose statements cannot run in parallel, as one
//!    batched [`Query::Mhp`] slab through the engine;
//! 4. **lockset** — drop pairs whose every parallel instance pair holds a
//!    common lock ([`fsam::racy_instances`]);
//! 5. **alias confirm** — the flow-sensitive check: the object must be in
//!    *both* accessors' flow-sensitive points-to sets.
//!
//! Pairs confirmed by stage 5 are exactly the races the legacy
//! `fsam::race::detect` reports (the identity the test suite asserts per
//! suite program). Pairs killed *only* by stage 5 are interesting in their
//! own right — Andersen says the accesses may touch the same object and
//! they may run in parallel unlocked, but flow-sensitive propagation
//! proves the alias never holds (e.g. a pointer overwritten before the
//! fork) — and feed the `FL0005` racy-init checker.
//!
//! Each stage exports a kill counter on the `lint.*` trace namespace.

use std::collections::{HashMap, HashSet};

use fsam::Fsam;
use fsam_ir::{Module, StmtId, StmtKind, VarId};
use fsam_pts::MemId;
use fsam_query::{Answer, Query, QueryEngine};
use fsam_threads::mhp::MhpOracle;
use fsam_threads::SharedObjects;
use fsam_trace::Recorder;

/// One store × access candidate on one abstract object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RacePair {
    /// The writing statement.
    pub store: StmtId,
    /// The racing access (load or store).
    pub access: StmtId,
    /// The abstract object both may touch.
    pub obj: MemId,
}

/// Per-stage candidate counts of one reducer run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Candidates enumerated from the Andersen sets (after store-pair
    /// deduplication).
    pub candidates: u64,
    /// Killed because the object is thread-private or an analysis
    /// artifact.
    pub killed_shared: u64,
    /// Killed by the statement-level may-happen-in-parallel filter.
    pub killed_mhp: u64,
    /// Killed because every parallel instance pair holds a common lock.
    pub killed_lockset: u64,
    /// Killed by the flow-sensitive alias confirmation (these become the
    /// [`Reduction::hb_protected`] set).
    pub killed_alias: u64,
    /// Survivors of every stage — the confirmed races.
    pub confirmed: u64,
}

impl ReductionStats {
    /// Candidates alive after the thread-shared filter.
    pub fn after_shared(&self) -> u64 {
        self.candidates - self.killed_shared
    }

    /// Candidates alive after the MHP filter.
    pub fn after_mhp(&self) -> u64 {
        self.after_shared() - self.killed_mhp
    }

    /// Candidates alive after the lockset filter — exactly the pairs that
    /// reach the flow-sensitive alias confirmation.
    pub fn after_lockset(&self) -> u64 {
        self.after_mhp() - self.killed_lockset
    }
}

/// The reducer's output: confirmed races, flow-sensitively refuted
/// near-misses, and the per-stage funnel.
#[derive(Clone, Debug, Default)]
pub struct Reduction {
    /// Pairs surviving all five stages; result-identical to the legacy
    /// `fsam::race::detect`. Sorted by `(store, access, obj)`.
    pub confirmed: Vec<RacePair>,
    /// Pairs killed only by the final alias confirmation: parallel,
    /// unlocked, Andersen-aliased — but the flow-sensitive points-to sets
    /// refute the alias. Sorted like `confirmed`.
    pub hb_protected: Vec<RacePair>,
    /// The per-stage funnel.
    pub stats: ReductionStats,
}

fn ptr_of(module: &Module, s: StmtId) -> Option<VarId> {
    match module.stmt(s).kind {
        StmtKind::Store { ptr, .. } | StmtKind::Load { ptr, .. } => Some(ptr),
        _ => None,
    }
}

/// Runs the staged reducer. See the module docs for the stage pipeline;
/// kill counters land on `recorder` under `lint.*`.
pub fn reduce(
    module: &Module,
    fsam: &Fsam,
    engine: &QueryEngine,
    shared: &SharedObjects,
    recorder: &Recorder,
) -> Reduction {
    let oracle: &dyn MhpOracle = &fsam.mhp;
    let mut stats = ReductionStats::default();

    // Stage 1 enumeration — Andersen (pre-analysis) points-to sets. The
    // flow-sensitive sets are subsets, so every legacy pair is covered.
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        match stmt.kind {
            StmtKind::Store { ptr, .. } => {
                for o in fsam.pre.pt_var(ptr).iter() {
                    stores_of.entry(o).or_default().push(sid);
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            StmtKind::Load { ptr, .. } => {
                for o in fsam.pre.pt_var(ptr).iter() {
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            _ => {}
        }
    }

    let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
    objects.sort();

    // Stage 2 — thread-shared filter, applied per object. Killed objects
    // never materialize their pairs; the funnel still counts them.
    let mut survivors: Vec<RacePair> = Vec::new();
    for o in objects {
        let stores = &stores_of[&o];
        let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        // Store/store pairs would be enumerated in both orders; keeping
        // only `s <= a` leaves each unordered pair once. Store/load pairs
        // appear once regardless.
        let n_stores = stores.len() as u64;
        let pair_count = n_stores * accesses.len() as u64 - n_stores * (n_stores - 1) / 2;
        stats.candidates += pair_count;

        let artifact = fsam.pre.objects().as_thread_handle(o).is_some();
        if artifact || !shared.is_shared(&fsam.pre, o) {
            stats.killed_shared += pair_count;
            continue;
        }

        let store_set: HashSet<StmtId> = stores.iter().copied().collect();
        for &s in stores {
            for &a in accesses {
                if store_set.contains(&a) && s > a {
                    continue;
                }
                survivors.push(RacePair {
                    store: s,
                    access: a,
                    obj: o,
                });
            }
        }
    }

    // Stage 3 — statement-level MHP, one batched slab. (For `s == a` the
    // self-MHP query doubles as the legacy "does the statement run in two
    // parallel instances" check.)
    let slab: Vec<Query> = survivors
        .iter()
        .map(|p| Query::Mhp(p.store, p.access))
        .collect();
    let answers = engine.query_many(&slab);
    let mut after_mhp = Vec::with_capacity(survivors.len());
    for (pair, ans) in survivors.into_iter().zip(answers) {
        if matches!(ans, Answer::Bool(true)) {
            after_mhp.push(pair);
        } else {
            stats.killed_mhp += 1;
        }
    }

    // Stage 4 — lockset: some parallel instance pair must lack a common
    // lock. Memoised per statement pair (the same pair recurs across
    // objects).
    let mut racy_cache: HashMap<(StmtId, StmtId), bool> = HashMap::new();
    let mut after_lockset = Vec::with_capacity(after_mhp.len());
    for pair in after_mhp {
        let racy = *racy_cache
            .entry((pair.store, pair.access))
            .or_insert_with(|| fsam::racy_instances(fsam, oracle, pair.store, pair.access));
        if racy {
            after_lockset.push(pair);
        } else {
            stats.killed_lockset += 1;
        }
    }

    // Stage 5 — flow-sensitive alias confirmation, batched points-to
    // lookups. The object must be in both accessors' flow-sensitive sets.
    let mut ptrs: Vec<VarId> = Vec::new();
    for pair in &after_lockset {
        for s in [pair.store, pair.access] {
            if let Some(p) = ptr_of(module, s) {
                ptrs.push(p);
            }
        }
    }
    ptrs.sort();
    ptrs.dedup();
    let slab: Vec<Query> = ptrs.iter().map(|&p| Query::PointsTo(p)).collect();
    let fs_sets: HashMap<VarId, Vec<MemId>> = ptrs
        .iter()
        .zip(engine.query_many(&slab))
        .map(|(&p, ans)| match ans {
            Answer::Objects(objs) => (p, objs),
            _ => unreachable!("PointsTo answers Objects"),
        })
        .collect();
    let fs_has = |s: StmtId, o: MemId| {
        ptr_of(module, s)
            .and_then(|p| fs_sets.get(&p))
            .is_some_and(|objs| objs.binary_search(&o).is_ok())
    };

    let mut confirmed = Vec::new();
    let mut hb_protected = Vec::new();
    for pair in after_lockset {
        if fs_has(pair.store, pair.obj) && fs_has(pair.access, pair.obj) {
            confirmed.push(pair);
        } else {
            stats.killed_alias += 1;
            hb_protected.push(pair);
        }
    }
    confirmed.sort();
    confirmed.dedup();
    hb_protected.sort();
    hb_protected.dedup();
    stats.confirmed = confirmed.len() as u64;

    recorder.counter(None, "lint.candidates", stats.candidates);
    recorder.counter(None, "lint.killed_shared", stats.killed_shared);
    recorder.counter(None, "lint.killed_mhp", stats.killed_mhp);
    recorder.counter(None, "lint.killed_lockset", stats.killed_lockset);
    recorder.counter(None, "lint.killed_alias", stats.killed_alias);
    recorder.counter(None, "lint.confirmed", stats.confirmed);

    Reduction {
        confirmed,
        hb_protected,
        stats,
    }
}

//! The staged race-candidate reducer.
//!
//! A naive race detector confirms every pair in the O(n²) store × access
//! space with the most expensive test it has. This module runs the cheap,
//! coarse filters first and the flow-sensitive alias confirmation *last*,
//! so the precise machinery only ever sees the candidates nothing cheaper
//! could kill:
//!
//! 1. **enumerate** — store × access pairs per abstract object, from the
//!    *Andersen* points-to sets (a superset of the flow-sensitive sets, so
//!    nothing real is lost by starting coarse);
//! 2. **shared** — drop objects never visible to two threads
//!    ([`SharedObjects`]) and analysis artifacts (thread handles);
//! 3. **MHP** — drop pairs whose statements cannot run in parallel. Each
//!    access site resolves to its region in the engine's factored
//!    [`MhpRelation`](fsam_threads::MhpRelation) once; every pair is then
//!    one bit test — no batched pair slab, no memo table, no pair set
//!    materialized;
//! 4. **happens-before** — drop pairs must-ordered by condvar, barrier,
//!    or release→acquire atomic synchronization
//!    ([`HbFacts`](fsam_threads::hb::HbFacts), DESIGN §1.9): the same
//!    region-lookup-plus-bit-test shape as MHP. Killed pairs fold into the
//!    `hb_protected` (FL0005) groups — they are genuinely synchronized,
//!    not races — and never reach the lockset memo or any flow-sensitive
//!    alias query;
//! 5. **lockset** — drop pairs whose every parallel instance pair holds a
//!    common lock ([`fsam::racy_instances`]), memoised per statement pair;
//! 6. **alias confirm** — the flow-sensitive check: the object must be in
//!    *both* accessors' flow-sensitive points-to sets. Each site resolves
//!    to its interned points-to *class* (the hash-consed [`PtsRef`] of its
//!    set) once, and membership is memoised per `(class, object)` — two
//!    sites whose sets hash-cons equal share every probe, so the stage
//!    runs classes × objects, not sites × objects.
//!
//! The whole pipeline streams object by object: no stage ever holds the
//! surviving pair set in memory. Survivors are *grouped* per abstract
//! object into a [`RaceGroup`] — one representative pair plus an instance
//! count — which is what the checkers report (the dedup key is
//! `(object, field, lockset)`; this IR has no field accesses and a
//! confirmed race's common lockset is empty by construction, so the key
//! degenerates to the object). Pair-level identity against the classic
//! enumerating detector is still asserted by the test suite via the
//! per-group instance counts.
//!
//! Each stage exports a kill counter on the `lint.*` trace namespace,
//! alongside the factored-form counters (`lint.confirmed_groups`,
//! `lint.alias_classes`, `lint.class_probes`) that prove no quadratic
//! structure was built.

use std::collections::{HashMap, HashSet};

use fsam::Fsam;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::{MemId, PtsRef};
use fsam_query::QueryEngine;
use fsam_threads::mhp::MhpOracle;
use fsam_threads::SharedObjects;
use fsam_trace::Recorder;

/// One store × access candidate on one abstract object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RacePair {
    /// The writing statement.
    pub store: StmtId,
    /// The racing access (load or store).
    pub access: StmtId,
    /// The abstract object both may touch.
    pub obj: MemId,
}

/// All confirmed (or refuted) pairs on one abstract object, deduplicated
/// to a representative.
///
/// The dedup key is `(object, field, lockset)`; with no field accesses in
/// the IR and an empty common lockset on every surviving pair (stage 4
/// killed the locked ones), the key is the object. `rep` is the first
/// surviving pair in `(store, access)` order; `instances` counts every
/// pair the group absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceGroup {
    /// The abstract object all the group's pairs touch — the dedup key.
    pub obj: MemId,
    /// The smallest surviving `(store, access)` pair on `obj`.
    pub rep: RacePair,
    /// How many pairs the group absorbed (≥ 1).
    pub instances: u64,
}

/// Per-stage candidate counts of one reducer run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Candidates enumerated from the Andersen sets (after store-pair
    /// deduplication).
    pub candidates: u64,
    /// Killed because the object is thread-private or an analysis
    /// artifact.
    pub killed_shared: u64,
    /// Killed by the statement-level may-happen-in-parallel filter.
    pub killed_mhp: u64,
    /// Killed because condvar/barrier/atomic synchronization must-orders
    /// the pair (these also become [`Reduction::hb_protected`] groups).
    pub killed_hb: u64,
    /// Killed because every parallel instance pair holds a common lock.
    pub killed_lockset: u64,
    /// Killed by the flow-sensitive alias confirmation (these become the
    /// [`Reduction::hb_protected`] groups).
    pub killed_alias: u64,
    /// Survivors of every stage — the confirmed race pairs (instances,
    /// summed across groups).
    pub confirmed: u64,
    /// Confirmed races after per-object grouping — one per reported
    /// diagnostic.
    pub confirmed_groups: u64,
    /// Refuted near-miss groups (the FL0005 diagnostics).
    pub hb_groups: u64,
}

impl ReductionStats {
    /// Candidates alive after the thread-shared filter.
    pub fn after_shared(&self) -> u64 {
        self.candidates - self.killed_shared
    }

    /// Candidates alive after the MHP filter.
    pub fn after_mhp(&self) -> u64 {
        self.after_shared() - self.killed_mhp
    }

    /// Candidates alive after the happens-before filter.
    pub fn after_hb(&self) -> u64 {
        self.after_mhp() - self.killed_hb
    }

    /// Candidates alive after the lockset filter — exactly the pairs that
    /// reach the flow-sensitive alias confirmation.
    pub fn after_lockset(&self) -> u64 {
        self.after_hb() - self.killed_lockset
    }
}

/// The reducer's output: confirmed races and flow-sensitively refuted
/// near-misses, grouped per object, plus the per-stage funnel.
#[derive(Clone, Debug, Default)]
pub struct Reduction {
    /// Groups whose pairs survived all five stages, sorted by object. The
    /// union of their instances is result-identical to the classic
    /// enumerating detector.
    pub confirmed: Vec<RaceGroup>,
    /// Groups killed by the happens-before stage (must-ordered by
    /// condvar/barrier/atomic sync) or by the final alias confirmation
    /// (parallel, unlocked, Andersen-aliased — but the flow-sensitive
    /// points-to sets refute the alias). Sorted by object; instance counts
    /// sum to `killed_hb + killed_alias`.
    pub hb_protected: Vec<RaceGroup>,
    /// The per-stage funnel.
    pub stats: ReductionStats,
}

/// Runs the staged reducer. See the module docs for the stage pipeline;
/// kill counters land on `recorder` under `lint.*`.
pub fn reduce(
    module: &Module,
    fsam: &Fsam,
    engine: &QueryEngine,
    shared: &SharedObjects,
    recorder: &Recorder,
) -> Reduction {
    let oracle: &dyn MhpOracle = &fsam.mhp;
    let rel = engine.mhp_relation();
    let pool = engine.db().result().pool();
    let mut stats = ReductionStats::default();

    // Stage 1 enumeration — Andersen (pre-analysis) points-to sets. The
    // flow-sensitive sets are subsets, so every classic pair is covered.
    // Per-site facts the later stages key on — the MHP region (stage 3)
    // and the interned flow-sensitive points-to class (stage 5) — are
    // resolved once per access site here, never per pair.
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut region: HashMap<StmtId, Option<u32>> = HashMap::new();
    let mut class: HashMap<StmtId, Option<PtsRef>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        let (ptr, is_store) = match stmt.kind {
            StmtKind::Store { ptr, .. } => (ptr, true),
            StmtKind::Load { ptr, .. } => (ptr, false),
            _ => continue,
        };
        region.insert(sid, rel.region_of(sid));
        class.insert(sid, engine.class_of(ptr));
        for o in fsam.pre.pt_var(ptr).iter() {
            if is_store {
                stores_of.entry(o).or_default().push(sid);
            }
            accesses_of.entry(o).or_default().push(sid);
        }
    }

    let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
    objects.sort();

    // Cross-object memo tables: the same statement pair recurs across
    // objects (stage 4), and sites sharing a points-to class share every
    // membership probe (stage 5).
    let mut racy_memo: HashMap<(StmtId, StmtId), bool> = HashMap::new();
    let mut fs_memo: HashMap<(PtsRef, MemId), bool> = HashMap::new();

    let mut confirmed: Vec<RaceGroup> = Vec::new();
    let mut hb_protected: Vec<RaceGroup> = Vec::new();

    // Stages 2–5, streamed object by object: no surviving-pair vector is
    // ever materialized; each object folds directly into its group.
    for o in objects {
        let stores = &stores_of[&o];
        let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        // Store/store pairs would be enumerated in both orders; keeping
        // only `s <= a` leaves each unordered pair once. Store/load pairs
        // appear once regardless.
        let n_stores = stores.len() as u64;
        let pair_count = n_stores * accesses.len() as u64 - n_stores * (n_stores - 1) / 2;
        stats.candidates += pair_count;

        // Stage 2 — thread-shared filter, per object. Killed objects never
        // even iterate their pairs; the funnel still counts them.
        let artifact = fsam.pre.objects().as_thread_handle(o).is_some();
        if artifact || !shared.is_shared(&fsam.pre, o) {
            stats.killed_shared += pair_count;
            continue;
        }

        let store_set: HashSet<StmtId> = stores.iter().copied().collect();
        let mut conf_group: Option<RaceGroup> = None;
        let mut hb_group: Option<RaceGroup> = None;
        let mut fs_has = |site: StmtId, o: MemId| match class.get(&site).copied().flatten() {
            Some(c) => *fs_memo.entry((c, o)).or_insert_with(|| pool.contains(c, o)),
            None => false,
        };
        for &s in stores {
            for &a in accesses {
                if store_set.contains(&a) && s > a {
                    continue;
                }
                // Stage 3 — statement-level MHP as one bit test. (For
                // `s == a` the self-MHP bit doubles as the classic "does
                // the statement run in two parallel instances" check.)
                let parallel = match (region[&s], region[&a]) {
                    (Some(r1), Some(r2)) => rel.parallel_regions(r1, r2),
                    _ => false,
                };
                if !parallel {
                    stats.killed_mhp += 1;
                    continue;
                }
                // Stage 4 — happens-before: a must-ordered pair is
                // synchronized, not racy. Same bit-test shape as MHP; the
                // pair folds into the FL0005 group and skips both the
                // lockset memo and the alias confirmation.
                if fsam.hb.ordered_stmt(s, a) {
                    stats.killed_hb += 1;
                    match &mut hb_group {
                        Some(g) => g.instances += 1,
                        None => {
                            hb_group = Some(RaceGroup {
                                obj: o,
                                rep: RacePair {
                                    store: s,
                                    access: a,
                                    obj: o,
                                },
                                instances: 1,
                            })
                        }
                    }
                    continue;
                }
                // Stage 5 — lockset: some parallel instance pair must
                // lack a common lock.
                let racy = *racy_memo
                    .entry((s, a))
                    .or_insert_with(|| fsam::racy_instances(fsam, oracle, s, a));
                if !racy {
                    stats.killed_lockset += 1;
                    continue;
                }
                // Stage 6 — flow-sensitive alias confirmation.
                let slot = if fs_has(s, o) && fs_has(a, o) {
                    &mut conf_group
                } else {
                    stats.killed_alias += 1;
                    &mut hb_group
                };
                match slot {
                    Some(g) => g.instances += 1,
                    None => {
                        *slot = Some(RaceGroup {
                            obj: o,
                            rep: RacePair {
                                store: s,
                                access: a,
                                obj: o,
                            },
                            instances: 1,
                        })
                    }
                }
            }
        }
        if let Some(g) = conf_group {
            stats.confirmed += g.instances;
            confirmed.push(g);
        }
        if let Some(g) = hb_group {
            hb_protected.push(g);
        }
    }
    stats.confirmed_groups = confirmed.len() as u64;
    stats.hb_groups = hb_protected.len() as u64;

    recorder.counter(None, "lint.candidates", stats.candidates);
    recorder.counter(None, "lint.killed_shared", stats.killed_shared);
    recorder.counter(None, "lint.killed_mhp", stats.killed_mhp);
    recorder.counter(None, "lint.killed_hb", stats.killed_hb);
    recorder.counter(None, "lint.killed_lockset", stats.killed_lockset);
    recorder.counter(None, "lint.killed_alias", stats.killed_alias);
    recorder.counter(None, "lint.confirmed", stats.confirmed);
    recorder.counter(None, "lint.confirmed_groups", stats.confirmed_groups);
    recorder.counter(None, "lint.hb_groups", stats.hb_groups);
    let alias_classes: HashSet<PtsRef> = class.values().filter_map(|c| *c).collect();
    recorder.counter(None, "lint.alias_classes", alias_classes.len() as u64);
    recorder.counter(None, "lint.class_probes", fs_memo.len() as u64);

    Reduction {
        confirmed,
        hb_protected,
        stats,
    }
}

//! The [`Checker`] trait, the default checker set (`FL0001`–`FL0005`),
//! and the [`Registry`] that runs them.

use std::collections::{BTreeMap, BTreeSet};

use fsam_ir::icfg::NodeKind;
use fsam_ir::{StmtId, StmtKind, VarId};
use fsam_pts::MemId;
use fsam_threads::mhp::MhpOracle;

use crate::context::LintContext;
use crate::diag::{finalize, Diagnostic, LintReport, Related, Severity};
use crate::reduce::{RaceGroup, RacePair};

/// One concurrency checker. Implementations are stateless; everything a
/// run needs comes from the [`LintContext`].
pub trait Checker {
    /// The stable diagnostic code, e.g. `FL0001`.
    fn code(&self) -> &'static str;
    /// A short kebab-case name, e.g. `data-race`.
    fn name(&self) -> &'static str;
    /// A one-line description (the SARIF rule `shortDescription`).
    fn description(&self) -> &'static str;
    /// Appends this checker's findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered set of checkers, run as one batch over one context.
#[derive(Default)]
pub struct Registry {
    checkers: Vec<Box<dyn Checker>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The default checker set, `FL0001`–`FL0005`.
    pub fn with_default_checkers() -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(DataRace));
        r.register(Box::new(LockOrder));
        r.register(Box::new(DoubleAcquire));
        r.register(Box::new(LocksetInconsistency));
        r.register(Box::new(RacyInit));
        r
    }

    /// Adds a checker to the run set.
    pub fn register(&mut self, checker: Box<dyn Checker>) {
        self.checkers.push(checker);
    }

    /// The registered checkers, in registration order (the SARIF rule
    /// index order).
    pub fn checkers(&self) -> &[Box<dyn Checker>] {
        &self.checkers
    }

    /// Runs every checker, then sorts, deduplicates and applies source
    /// suppressions. Per-checker finding counts land on the context's
    /// recorder as `lint.<code>` counters.
    pub fn run(&self, cx: &LintContext<'_>) -> LintReport {
        let mut raw = Vec::new();
        for checker in &self.checkers {
            let before = raw.len();
            checker.run(cx, &mut raw);
            cx.recorder().counter(
                None,
                format!("lint.{}", checker.code()),
                (raw.len() - before) as u64,
            );
        }
        let report = finalize(cx.module, raw);
        cx.recorder()
            .counter(None, "lint.diagnostics", report.diagnostics.len() as u64);
        cx.recorder()
            .counter(None, "lint.suppressed", report.suppressed.len() as u64);
        report
    }
}

fn ptr_of(cx: &LintContext<'_>, s: StmtId) -> Option<VarId> {
    match cx.module.stmt(s).kind {
        StmtKind::Store { ptr, .. } | StmtKind::Load { ptr, .. } => Some(ptr),
        _ => None,
    }
}

/// Props shared by the race-shaped checkers: raw ids of the group's
/// representative pair for identity tests, the pointer/object indices the
/// SARIF code-flow builder feeds to `why_points_to`, and the group's
/// instance count.
fn race_props(cx: &LintContext<'_>, group: &RaceGroup) -> Vec<(String, String)> {
    let pair: &RacePair = &group.rep;
    let mut props = vec![
        (
            "obj".to_owned(),
            cx.fsam.pre.objects().display_name(cx.module, pair.obj),
        ),
        ("obj_id".to_owned(), pair.obj.raw().to_string()),
        ("store".to_owned(), pair.store.raw().to_string()),
        ("access".to_owned(), pair.access.raw().to_string()),
        ("instances".to_owned(), group.instances.to_string()),
    ];
    if let Some(p) = ptr_of(cx, pair.store) {
        props.push(("store_ptr".to_owned(), p.index().to_string()));
    }
    if let Some(p) = ptr_of(cx, pair.access) {
        props.push(("access_ptr".to_owned(), p.index().to_string()));
    }
    props
}

/// How a grouped race message notes the absorbed pairs, if any.
fn more_instances(group: &RaceGroup) -> String {
    match group.instances {
        0 | 1 => String::new(),
        n => format!(" (and {} more access pairs on this object)", n - 1),
    }
}

/// `FL0001` — confirmed data races, from the staged reducer: one
/// diagnostic per racy object, anchored at the group's representative
/// pair, with the remaining pairs folded into an instance count.
pub struct DataRace;

impl Checker for DataRace {
    fn code(&self) -> &'static str {
        "FL0001"
    }
    fn name(&self) -> &'static str {
        "data-race"
    }
    fn description(&self) -> &'static str {
        "a write and a parallel access to the same object with no common lock"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for group in &cx.reduction().confirmed {
            let pair = &group.rep;
            let obj = cx.fsam.pre.objects().display_name(cx.module, pair.obj);
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Error,
                message: format!(
                    "data race on `{obj}`: write at {} || access at {}{}",
                    cx.module.describe_stmt(pair.store),
                    cx.module.describe_stmt(pair.access),
                    more_instances(group),
                ),
                primary: pair.store,
                related: vec![Related {
                    stmt: pair.access,
                    message: format!("racing access at {}", cx.module.describe_stmt(pair.access)),
                }],
                props: race_props(cx, group),
            });
        }
    }
}

/// `FL0002` — lock-order deadlocks: ABBA inversions (with the pairwise
/// MHP justification) plus simple cycles of length ≥ 3 over the
/// lock-order graph.
pub struct LockOrder;

impl Checker for LockOrder {
    fn code(&self) -> &'static str {
        "FL0002"
    }
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "lock acquisitions whose order forms a cycle across parallel threads"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let name = |o: MemId| cx.fsam.pre.objects().display_name(cx.module, o);
        let edges = fsam::lock_order_edges(cx.module, cx.fsam);

        // ABBA pairs, with the pairwise MHP justification answered from
        // the engine's factored region relation.
        let mut seen: BTreeSet<(MemId, MemId, StmtId, StmtId)> = BTreeSet::new();
        for (&(a, b), sites_ab) in &edges {
            if a >= b {
                continue;
            }
            let Some(sites_ba) = edges.get(&(b, a)) else {
                continue;
            };
            for &s_ab in sites_ab {
                for &s_ba in sites_ba {
                    if cx.engine.mhp(s_ab, s_ba) && seen.insert((a, b, s_ab, s_ba)) {
                        out.push(Diagnostic {
                            code: self.code(),
                            severity: Severity::Warning,
                            message: format!(
                                "potential deadlock between `{}` and `{}`: {} (holding {}) || {} (holding {})",
                                name(a),
                                name(b),
                                cx.module.describe_stmt(s_ab),
                                name(a),
                                cx.module.describe_stmt(s_ba),
                                name(b),
                            ),
                            primary: s_ab,
                            related: vec![Related {
                                stmt: s_ba,
                                message: format!(
                                    "opposite-order acquisition at {}",
                                    cx.module.describe_stmt(s_ba)
                                ),
                            }],
                            props: vec![
                                ("kind".to_owned(), "abba".to_owned()),
                                ("lock_a".to_owned(), a.raw().to_string()),
                                ("lock_b".to_owned(), b.raw().to_string()),
                                ("site_ab".to_owned(), s_ab.raw().to_string()),
                                ("site_ba".to_owned(), s_ba.raw().to_string()),
                            ],
                        });
                    }
                }
            }
        }

        // Longer cycles (the ABBA check cannot see these).
        for cycle in fsam::detect_cycles(cx.module, cx.fsam) {
            let related = cycle.sites[1..]
                .iter()
                .map(|&s| Related {
                    stmt: s,
                    message: format!("next acquisition at {}", cx.module.describe_stmt(s)),
                })
                .collect();
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: cycle.render(cx.module, cx.fsam),
                primary: cycle.sites[0],
                related,
                props: vec![
                    ("kind".to_owned(), "cycle".to_owned()),
                    ("len".to_owned(), cycle.locks.len().to_string()),
                ],
            });
        }
    }
}

/// `FL0003` — acquiring a lock already held by the same instance: with
/// non-reentrant locks this is a guaranteed self-deadlock.
pub struct DoubleAcquire;

impl Checker for DoubleAcquire {
    fn code(&self) -> &'static str {
        "FL0003"
    }
    fn name(&self) -> &'static str {
        "double-acquire"
    }
    fn description(&self) -> &'static str {
        "a lock acquired while the acquiring instance already holds it"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(lock) = &cx.fsam.lock else {
            return;
        };
        let oracle: &dyn MhpOracle = &cx.fsam.mhp;
        for (sid, stmt) in cx.module.stmts() {
            let StmtKind::Lock { lock: lvar } = stmt.kind else {
                continue;
            };
            let Some(acquired) = cx.fsam.pre.must_lock_obj(lvar) else {
                continue;
            };
            // `held_at` is the IN fact — the locks held *before* this
            // acquisition — so membership means re-acquisition.
            let double = oracle
                .instances(sid)
                .iter()
                .any(|&(t, c)| lock.held_at(&cx.fsam.icfg, t, c, sid).contains(&acquired));
            if double {
                let obj = cx.fsam.pre.objects().display_name(cx.module, acquired);
                out.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "lock `{obj}` acquired while already held (self-deadlock): {}",
                        cx.module.describe_stmt(sid)
                    ),
                    primary: sid,
                    related: Vec::new(),
                    props: vec![("lock".to_owned(), acquired.raw().to_string())],
                });
            }
        }
    }
}

/// `FL0004` — a lock held on some but not all paths reaching a function
/// exit: either a missing release on a path or a conditional acquire with
/// no matching conditional release.
pub struct LocksetInconsistency;

impl Checker for LocksetInconsistency {
    fn code(&self) -> &'static str {
        "FL0004"
    }
    fn name(&self) -> &'static str {
        "lockset-inconsistency"
    }
    fn description(&self) -> &'static str {
        "a lock held on some but not all paths reaching a join point"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(lock) = &cx.fsam.lock else {
            return;
        };
        // Collect (function, lock) inconsistencies across every instance
        // of every exit node (`ret` is a terminator with no statement id,
        // so this check works at the node level).
        let mut findings: BTreeSet<(fsam_ir::FuncId, MemId)> = BTreeSet::new();
        for ((t, c, n), _) in lock.may_states() {
            let NodeKind::Exit(fid) = cx.fsam.icfg.kind(n) else {
                continue;
            };
            for l in lock.inconsistent_at_node(t, c, n) {
                findings.insert((fid, l));
            }
        }
        if findings.is_empty() {
            return;
        }
        // Anchor each finding at the smallest acquisition site of that
        // lock inside the offending function (the exit node itself has no
        // statement to point at), falling back to the smallest site
        // anywhere when the leaked acquisition happened in a callee.
        let mut acquisition: BTreeMap<(fsam_ir::FuncId, MemId), StmtId> = BTreeMap::new();
        let mut fallback: BTreeMap<MemId, StmtId> = BTreeMap::new();
        for (sid, stmt) in cx.module.stmts() {
            if let StmtKind::Lock { lock: lvar } = stmt.kind {
                if let Some(l) = cx.fsam.pre.must_lock_obj(lvar) {
                    acquisition.entry((stmt.func, l)).or_insert(sid);
                    fallback.entry(l).or_insert(sid);
                }
            }
        }
        for (fid, l) in findings {
            let Some(&site) = acquisition.get(&(fid, l)).or_else(|| fallback.get(&l)) else {
                continue;
            };
            let obj = cx.fsam.pre.objects().display_name(cx.module, l);
            let func = &cx.module.func(fid).name;
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "lock `{obj}` is held on some but not all paths reaching the exit of `{func}` \
                     (conditional acquire without a matching conditional release?)"
                ),
                primary: site,
                related: Vec::new(),
                props: vec![
                    ("lock".to_owned(), l.raw().to_string()),
                    ("func".to_owned(), func.clone()),
                ],
            });
        }
    }
}

/// `FL0005` — racy-init near-misses: pairs that are parallel, unlocked
/// and Andersen-aliased, but refuted either by a must-happens-before
/// synchronization chain (condvar/barrier/release-acquire atomics,
/// DESIGN §1.9) or by the flow-sensitive propagation — typically an
/// initialization published before the fork or handed off through a
/// signal/flag, ordered by synchronization or value-flow, not by a
/// lock.
pub struct RacyInit;

impl Checker for RacyInit {
    fn code(&self) -> &'static str {
        "FL0005"
    }
    fn name(&self) -> &'static str {
        "racy-init"
    }
    fn description(&self) -> &'static str {
        "an Andersen-level race candidate refuted by happens-before ordering or flow-sensitive propagation"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for group in &cx.reduction().hb_protected {
            let pair = &group.rep;
            let obj = cx.fsam.pre.objects().display_name(cx.module, pair.obj);
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Note,
                message: format!(
                    "race candidate on `{obj}` refuted: write at {} and access at {} may \
                     interleave without a common lock, but a must-happens-before \
                     synchronization chain (condvar/barrier/atomic) or the flow-sensitive \
                     points-to sets prove they cannot race on `{obj}` \
                     (protected by synchronization or value ordering, not by a lock){}",
                    cx.module.describe_stmt(pair.store),
                    cx.module.describe_stmt(pair.access),
                    more_instances(group),
                ),
                primary: pair.store,
                related: vec![Related {
                    stmt: pair.access,
                    message: format!(
                        "refuted parallel access at {}",
                        cx.module.describe_stmt(pair.access)
                    ),
                }],
                props: race_props(cx, group),
            });
        }
    }
}

//! # fsam-lint — staged concurrency checkers over FSAM results
//!
//! A checker framework that runs a registry of concurrency checkers over
//! a completed analysis (`Fsam` + its [`QueryEngine`](fsam_query::QueryEngine)
//! snapshot) and reports through one unified [`Diagnostic`] model with
//! deterministic ordering, source-comment suppression, and two renderers
//! (human text, SARIF 2.1.0).
//!
//! ## The default checkers
//!
//! | code     | name                    | finds |
//! |----------|-------------------------|-------|
//! | `FL0001` | `data-race`             | write ∥ access, no common lock — one diagnostic per racy object, with an instance count |
//! | `FL0002` | `lock-order`            | ABBA inversions and longer lock-order cycles |
//! | `FL0003` | `double-acquire`        | re-acquiring a non-reentrant lock (self-deadlock) |
//! | `FL0004` | `lockset-inconsistency` | a lock held on some but not all paths to a function exit |
//! | `FL0005` | `racy-init`             | Andersen-level race candidates refuted by HB sync or flow-sensitively |
//!
//! The race-shaped checkers share one [staged reducer](reduce) that cuts
//! the O(n²) access-pair space with cheap filters (thread-escape, MHP,
//! locksets) before any flow-sensitive alias query runs; each stage
//! exports a kill counter on the `lint.*` trace namespace.
//!
//! ## Suppression
//!
//! A FIR comment `// fsam-lint: allow(FL0001, FL0003)` suppresses
//! matching diagnostics anchored on the same line or the line below.
//! Suppressed findings stay in the [`LintReport`] (and in the SARIF
//! output, marked `suppressed`) — they are hidden, not destroyed.
//!
//! ## Example
//!
//! ```
//! use fsam::Fsam;
//! use fsam_ir::parse::parse_module;
//! use fsam_lint::{LintContext, Registry};
//! use fsam_query::QueryEngine;
//!
//! let module = parse_module(r#"
//!     global counter
//!     func worker() {
//!     entry:
//!       p = &counter
//!       store p, p
//!       ret
//!     }
//!     func main() {
//!     entry:
//!       q = &counter
//!       t = fork worker()
//!       c = load q
//!       join t
//!       ret
//!     }
//! "#)?;
//! let fsam = Fsam::analyze(&module);
//! let engine = QueryEngine::from_fsam(&module, &fsam);
//! let cx = LintContext::new(&module, &fsam, &engine);
//! let report = Registry::with_default_checkers().run(&cx);
//! assert_eq!(report.count_of("FL0001"), 1); // the unlocked counter race
//! # Ok::<(), fsam_ir::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkers;
pub mod context;
pub mod diag;
pub mod reduce;
pub mod render;
pub mod sarif;

pub use checkers::{Checker, Registry};
pub use context::LintContext;
pub use diag::{Diagnostic, LintReport, Related, Severity};
pub use reduce::{RaceGroup, RacePair, Reduction, ReductionStats};
pub use render::render_text;
pub use sarif::{to_sarif, validate_sarif, write_sarif, SarifStream};

//! The human-readable report renderer.

use std::fmt::Write as _;

use fsam_ir::Module;

use crate::diag::{Diagnostic, LintReport, Severity};

fn render_one(out: &mut String, module: &Module, d: &Diagnostic, suppressed: bool) {
    let mark = if suppressed { " (suppressed)" } else { "" };
    let _ = writeln!(out, "{} {}{}: {}", d.code, d.severity, mark, d.message);
    if let Some(line) = module.stmt_line(d.primary) {
        let _ = writeln!(out, "  --> line {line}");
    }
    for r in &d.related {
        let _ = writeln!(out, "  note: {}", r.message);
    }
}

/// Renders the report as stable, diffable plain text: one block per
/// diagnostic (suppressed findings last, marked), then a summary line.
pub fn render_text(module: &Module, report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        render_one(&mut out, module, d, false);
    }
    for d in &report.suppressed {
        render_one(&mut out, module, d, true);
    }
    let count_level = |sev: Severity| {
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    };
    let _ = writeln!(
        out,
        "{} diagnostics ({} errors, {} warnings, {} notes), {} suppressed",
        report.diagnostics.len(),
        count_level(Severity::Error),
        count_level(Severity::Warning),
        count_level(Severity::Note),
        report.suppressed.len(),
    );
    out
}

//! The unified diagnostic model: [`Diagnostic`], [`Severity`],
//! [`LintReport`], and comment-based suppression.
//!
//! Every checker reports through this one shape so rendering (human text,
//! SARIF) and post-processing (ordering, deduplication, suppression) are
//! written once. Diagnostics order deterministically by
//! `(code, primary, related, message)` — two runs over the same module
//! produce byte-identical reports.

use fsam_ir::{Module, StmtId};

/// How serious a diagnostic is; maps one-to-one onto SARIF `level`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A defect (`error`): data race, self-deadlock.
    Error,
    /// A likely defect (`warning`): lock-order inversion, path-dependent
    /// lockset.
    Warning,
    /// Informational (`note`): a refuted candidate worth knowing about.
    Note,
}

impl Severity {
    /// The SARIF `level` string for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.sarif_level())
    }
}

/// A secondary source location attached to a [`Diagnostic`] (the other
/// half of a race pair, the opposite acquisition of a deadlock, …).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Related {
    /// The statement the note points at.
    pub stmt: StmtId,
    /// Fully rendered note text.
    pub message: String,
}

/// One finding from one checker.
///
/// Messages are rendered at creation time (checkers have the module and
/// analysis results in hand); renderers only lay them out. `props` carries
/// structured metadata — raw ids, object names, per-checker facts — that
/// feeds the SARIF `properties` bag and the identity tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable checker code, e.g. `FL0001`.
    pub code: &'static str,
    /// Severity (SARIF level).
    pub severity: Severity,
    /// Fully rendered primary message.
    pub message: String,
    /// The statement the diagnostic is anchored to.
    pub primary: StmtId,
    /// Secondary locations, in checker-chosen order.
    pub related: Vec<Related>,
    /// Structured key/value metadata (sorted keys not required; the
    /// checker's emission order is preserved).
    pub props: Vec<(String, String)>,
}

impl Diagnostic {
    /// The deterministic report ordering: code, then anchor, then related
    /// locations, then message text (severity and props never disagree for
    /// equal keys in practice, but participate for total order).
    fn sort_key(&self) -> (&'static str, StmtId, &[Related], &str, Severity) {
        (
            self.code,
            self.primary,
            &self.related,
            &self.message,
            self.severity,
        )
    }

    /// Looks up a structured property by key.
    pub fn prop(&self, key: &str) -> Option<&str> {
        self.props
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v.as_str()))
    }
}

/// The outcome of a [`Registry::run`](crate::Registry::run): surviving
/// diagnostics plus everything a source directive suppressed (kept so
/// renderers can show them struck-through and SARIF can mark them
/// `suppressed` rather than dropping evidence).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Active diagnostics, deterministically ordered and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics matched by a `// fsam-lint: allow(...)` directive, in
    /// the same order.
    pub suppressed: Vec<Diagnostic>,
}

impl LintReport {
    /// Active diagnostics carrying `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Number of active diagnostics carrying `code`.
    pub fn count_of(&self, code: &str) -> usize {
        self.with_code(code).count()
    }
}

/// Sorts, deduplicates, and splits raw checker output into active and
/// suppressed diagnostics per the module's `// fsam-lint: allow(CODE)`
/// directives. A directive on line `n` suppresses matching diagnostics
/// whose primary statement sits on line `n` (same-line comment) or line
/// `n + 1` (comment above the statement).
pub fn finalize(module: &Module, mut raw: Vec<Diagnostic>) -> LintReport {
    raw.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    raw.dedup();

    let directives = module.lint_directives();
    let suppressed_by_directive = |d: &Diagnostic| {
        let Some(line) = module.stmt_line(d.primary) else {
            return false;
        };
        directives.iter().any(|dir| {
            (dir.line == line || dir.line + 1 == line) && dir.codes.iter().any(|c| c == d.code)
        })
    };

    let (suppressed, diagnostics) = raw.into_iter().partition(suppressed_by_directive);
    LintReport {
        diagnostics,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, primary: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: msg.to_owned(),
            primary: StmtId::new(primary),
            related: Vec::new(),
            props: Vec::new(),
        }
    }

    #[test]
    fn finalize_sorts_and_dedups() {
        let m = Module::new();
        let raw = vec![
            diag("FL0002", 5, "b"),
            diag("FL0001", 9, "a"),
            diag("FL0001", 2, "a"),
            diag("FL0001", 2, "a"), // exact duplicate
        ];
        let report = finalize(&m, raw);
        assert!(report.suppressed.is_empty());
        let keys: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.primary.raw()))
            .collect();
        assert_eq!(keys, [("FL0001", 2), ("FL0001", 9), ("FL0002", 5)]);
    }

    #[test]
    fn suppression_matches_same_line_and_line_below() {
        use fsam_ir::parse::parse_module;
        let m = parse_module(
            "global x\nfunc main() {\nentry:\n  // fsam-lint: allow(FL0009)\n  p = &x\n  c = load p\n  ret\n}\n",
        )
        .unwrap();
        // `p = &x` is on line 5, right below the directive on line 4.
        let anchored = m.stmts().next().expect("module has statements").0;
        assert_eq!(m.stmt_line(anchored), Some(5));
        let hit = diag("FL0009", anchored.raw(), "suppress me");
        let miss = diag("FL0008", anchored.raw(), "different code");
        let report = finalize(&m, vec![hit.clone(), miss.clone()]);
        assert_eq!(report.suppressed, vec![hit]);
        assert_eq!(report.diagnostics, vec![miss]);
    }
}

//! The SARIF 2.1.0 renderer, built on `fsam-trace`'s hand-rolled JSON
//! [`Value`] (std-only — no serde).
//!
//! One run, one driver (`fsam-lint`), one rule per registered checker.
//! Suppressed diagnostics stay in the result list with an `inSource`
//! suppression object rather than being dropped. When the analysis ran
//! with an explain-enabled recorder, each data-race result embeds the
//! `why_points_to` derivation of the racing alias as a SARIF code flow —
//! for a race fed by thread interference the flow visibly crosses a
//! `thread` value-flow edge.
//!
//! Two emission paths share the per-result builder:
//!
//! * [`to_sarif`] builds the whole log as one [`Value`] tree — right for
//!   golden files and in-memory round-trips;
//! * [`write_sarif`] *streams* the log result by result into any
//!   `io::Write`, holding at most one serialized result in memory, with
//!   an optional severity-ranked result cap: when the report exceeds the
//!   cap, the highest-severity results are kept and one final `"and N
//!   more results omitted"` record replaces the tail. Uncapped, its bytes
//!   are identical to `to_sarif(..).to_json()`.
//!
//! [`validate_sarif`] structurally checks either path's output against
//! the SARIF 2.1.0 shape the tests and CI rely on.

use std::io;

use fsam_ir::StmtId;
use fsam_trace::json::Value;
use fsam_trace::{why_points_to, Event, ExplainStep};

use crate::checkers::Registry;
use crate::context::LintContext;
use crate::diag::Diagnostic;

/// The schema the output conforms to.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
/// The SARIF spec version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn message(text: impl Into<String>) -> Value {
    obj(vec![("text", s(text))])
}

fn location(cx: &LintContext<'_>, stmt: StmtId, note: Option<&str>) -> Value {
    let st = cx.module.stmt(stmt);
    let mut fields = Vec::new();
    if let Some(text) = note {
        fields.push(("message", message(text)));
    }
    if let Some(line) = cx.module.stmt_line(stmt) {
        fields.push((
            "physicalLocation",
            obj(vec![(
                "region",
                obj(vec![("startLine", Value::Num(f64::from(line)))]),
            )]),
        ));
    }
    fields.push((
        "logicalLocations",
        Value::Arr(vec![obj(vec![
            (
                "fullyQualifiedName",
                s(format!("{}.{}", cx.module.func(st.func).name, st.block)),
            ),
            ("decoratedName", s(cx.module.describe_stmt(stmt))),
            ("kind", s("member")),
        ])]),
    ));
    obj(fields)
}

fn step_text(step: &ExplainStep) -> String {
    match &step.src {
        None => format!("{}: obj {} seeded by `addr_of`", step.dst, step.obj),
        Some(src) => format!(
            "{}: obj {} arrived from {} via `{}`",
            step.dst, step.obj, src, step.via
        ),
    }
}

/// The `why_points_to` derivation of the racing alias, as a SARIF code
/// flow. Prefers the accessor whose derivation crosses a `thread`
/// interference edge — the path that shows *which fork* made the alias
/// (and hence the race) possible.
fn code_flow(d: &Diagnostic, events: &[Event]) -> Option<Value> {
    let obj_id: u64 = d.prop("obj_id")?.parse().ok()?;
    let mut best: Option<Vec<ExplainStep>> = None;
    for key in ["access_ptr", "store_ptr"] {
        let Some(var) = d.prop(key).and_then(|v| v.parse::<u64>().ok()) else {
            continue;
        };
        let Some(path) = why_points_to(events, var, obj_id) else {
            continue;
        };
        let crosses = path.iter().any(|st| st.via == "thread");
        if crosses {
            best = Some(path);
            break;
        }
        if best.is_none() {
            best = Some(path);
        }
    }
    let path = best?;
    let locations: Vec<Value> = path
        .iter()
        .map(|step| {
            obj(vec![(
                "location",
                obj(vec![("message", message(step_text(step)))]),
            )])
        })
        .collect();
    Some(Value::Arr(vec![obj(vec![(
        "threadFlows",
        Value::Arr(vec![obj(vec![("locations", Value::Arr(locations))])]),
    )])]))
}

fn result(
    cx: &LintContext<'_>,
    registry: &Registry,
    d: &Diagnostic,
    suppressed: bool,
    events: Option<&[Event]>,
) -> Value {
    let rule_index = registry
        .checkers()
        .iter()
        .position(|c| c.code() == d.code)
        .map_or(-1.0, |i| i as f64);
    let mut fields = vec![
        ("ruleId", s(d.code)),
        ("ruleIndex", Value::Num(rule_index)),
        ("level", s(d.severity.sarif_level())),
        ("message", message(&d.message)),
        ("locations", Value::Arr(vec![location(cx, d.primary, None)])),
    ];
    if !d.related.is_empty() {
        fields.push((
            "relatedLocations",
            Value::Arr(
                d.related
                    .iter()
                    .map(|r| location(cx, r.stmt, Some(&r.message)))
                    .collect(),
            ),
        ));
    }
    if let (Some(events), "FL0001") = (events, d.code) {
        if let Some(flows) = code_flow(d, events) {
            fields.push(("codeFlows", flows));
        }
    }
    if !d.props.is_empty() {
        fields.push((
            "properties",
            Value::Obj(d.props.iter().map(|(k, v)| (k.clone(), s(v))).collect()),
        ));
    }
    if suppressed {
        fields.push((
            "suppressions",
            Value::Arr(vec![obj(vec![("kind", s("inSource"))])]),
        ));
    }
    obj(fields)
}

/// Renders the report as a SARIF 2.1.0 log. Pass the events of an
/// explain-enabled [`Recorder`](fsam_trace::Recorder) to embed
/// `why_points_to` code flows into the race results; pass `None` for a
/// plain log.
pub fn to_sarif(
    cx: &LintContext<'_>,
    registry: &Registry,
    report: &crate::diag::LintReport,
    events: Option<&[Event]>,
) -> Value {
    let mut results: Vec<Value> = Vec::new();
    for d in &report.diagnostics {
        results.push(result(cx, registry, d, false, events));
    }
    for d in &report.suppressed {
        results.push(result(cx, registry, d, true, events));
    }
    obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Value::Arr(vec![obj(vec![
                ("tool", tool(registry)),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
}

fn tool(registry: &Registry) -> Value {
    let rules: Vec<Value> = registry
        .checkers()
        .iter()
        .map(|c| {
            obj(vec![
                ("id", s(c.code())),
                ("name", s(c.name())),
                ("shortDescription", message(c.description())),
            ])
        })
        .collect();
    obj(vec![(
        "driver",
        obj(vec![("name", s("fsam-lint")), ("rules", Value::Arr(rules))]),
    )])
}

/// What [`write_sarif`] emitted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SarifStream {
    /// Diagnostic results written (the overflow record not included).
    pub results_written: usize,
    /// Results folded into the trailing overflow record.
    pub omitted: usize,
    /// Total bytes written.
    pub bytes: u64,
}

struct CountingWriter<'a, W: io::Write> {
    inner: &'a mut W,
    bytes: u64,
}

impl<W: io::Write> io::Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streams the report as a compact SARIF 2.1.0 log onto `out`, one result
/// at a time — peak memory is one serialized result, independent of the
/// report size.
///
/// With `cap: Some(n)` and more than `n` results, the `n` highest-severity
/// results are kept (`error` < `warning` < `note`, suppressed results
/// ranked with their severity; ties keep report order), emitted *in
/// report order*, and one final level-`none` record counts the omissions:
/// `"and N more results omitted (severity-ranked cap n)"`. With
/// `cap: None`, or when the report fits, the byte stream is identical to
/// [`to_sarif`]`(..).to_json()`.
pub fn write_sarif<W: io::Write>(
    cx: &LintContext<'_>,
    registry: &Registry,
    report: &crate::diag::LintReport,
    events: Option<&[Event]>,
    cap: Option<usize>,
    out: &mut W,
) -> io::Result<SarifStream> {
    use io::Write as _;

    // One logical result list: active diagnostics, then suppressed.
    let all: Vec<(&Diagnostic, bool)> = report
        .diagnostics
        .iter()
        .map(|d| (d, false))
        .chain(report.suppressed.iter().map(|d| (d, true)))
        .collect();

    // Severity-ranked cap: keep the top `cap` by (severity, report
    // order), emit in report order.
    let (keep, omitted): (Vec<usize>, usize) = match cap {
        Some(cap) if all.len() > cap => {
            let mut ranked: Vec<usize> = (0..all.len()).collect();
            ranked.sort_by_key(|&i| (all[i].0.severity, i));
            let mut keep: Vec<usize> = ranked[..cap].to_vec();
            keep.sort_unstable();
            (keep, all.len() - cap)
        }
        _ => ((0..all.len()).collect(), 0),
    };

    let mut w = CountingWriter {
        inner: out,
        bytes: 0,
    };
    write!(
        w,
        "{{\"$schema\":{},\"version\":{},\"runs\":[{{\"tool\":{},\"results\":[",
        s(SARIF_SCHEMA).to_json(),
        s(SARIF_VERSION).to_json(),
        tool(registry).to_json(),
    )?;
    let mut first = true;
    let mut sep = move |w: &mut CountingWriter<'_, W>| -> io::Result<()> {
        if first {
            first = false;
            Ok(())
        } else {
            w.write_all(b",")
        }
    };
    for &i in &keep {
        let (d, suppressed) = all[i];
        sep(&mut w)?;
        w.write_all(
            result(cx, registry, d, suppressed, events)
                .to_json()
                .as_bytes(),
        )?;
    }
    if omitted > 0 {
        sep(&mut w)?;
        let note = obj(vec![
            ("level", s("none")),
            (
                "message",
                message(format!(
                    "and {omitted} more results omitted (severity-ranked cap {})",
                    cap.expect("omissions imply a cap"),
                )),
            ),
        ]);
        w.write_all(note.to_json().as_bytes())?;
    }
    w.write_all(b"]}]}")?;
    Ok(SarifStream {
        results_written: keep.len(),
        omitted,
        bytes: w.bytes,
    })
}

/// Structurally validates a SARIF 2.1.0 log: schema/version header, run
/// layout, tool driver with rules, and the per-result invariants the
/// renderers promise (message text, known levels, rule indices in range,
/// well-formed suppressions). Returns the first violation.
pub fn validate_sarif(doc: &Value) -> Result<(), String> {
    let version = doc
        .get("version")
        .and_then(Value::as_str)
        .ok_or("missing version")?;
    if version != SARIF_VERSION {
        return Err(format!("version {version:?} is not {SARIF_VERSION:?}"));
    }
    doc.get("$schema")
        .and_then(Value::as_str)
        .ok_or("missing $schema")?;
    let Some(Value::Arr(runs)) = doc.get("runs") else {
        return Err("missing runs array".into());
    };
    if runs.is_empty() {
        return Err("empty runs array".into());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("run without tool.driver")?;
        driver
            .get("name")
            .and_then(Value::as_str)
            .ok_or("driver without name")?;
        let n_rules = match driver.get("rules") {
            Some(Value::Arr(rules)) => {
                for r in rules {
                    r.get("id")
                        .and_then(Value::as_str)
                        .ok_or("rule without id")?;
                }
                rules.len()
            }
            Some(_) => return Err("rules is not an array".into()),
            None => 0,
        };
        let Some(Value::Arr(results)) = run.get("results") else {
            return Err("run without results array".into());
        };
        for res in results {
            res.get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str)
                .ok_or("result without message.text")?;
            if let Some(level) = res.get("level") {
                let level = level.as_str().ok_or("level is not a string")?;
                if !matches!(level, "none" | "note" | "warning" | "error") {
                    return Err(format!("unknown level {level:?}"));
                }
            }
            if let Some(idx) = res.get("ruleIndex") {
                let idx = idx.as_num().ok_or("ruleIndex is not a number")?;
                if idx.fract() != 0.0 || idx < -1.0 || idx >= n_rules as f64 {
                    return Err(format!("ruleIndex {idx} out of range for {n_rules} rules"));
                }
            }
            if let Some(sup) = res.get("suppressions") {
                let Value::Arr(sup) = sup else {
                    return Err("suppressions is not an array".into());
                };
                for one in sup {
                    one.get("kind")
                        .and_then(Value::as_str)
                        .ok_or("suppression without kind")?;
                }
            }
        }
    }
    Ok(())
}

//! The SARIF 2.1.0 renderer, built on `fsam-trace`'s hand-rolled JSON
//! [`Value`] (std-only — no serde).
//!
//! One run, one driver (`fsam-lint`), one rule per registered checker.
//! Suppressed diagnostics stay in the result list with an `inSource`
//! suppression object rather than being dropped. When the analysis ran
//! with an explain-enabled recorder, each data-race result embeds the
//! `why_points_to` derivation of the racing alias as a SARIF code flow —
//! for a race fed by thread interference the flow visibly crosses a
//! `thread` value-flow edge.

use fsam_ir::StmtId;
use fsam_trace::json::Value;
use fsam_trace::{why_points_to, Event, ExplainStep};

use crate::checkers::Registry;
use crate::context::LintContext;
use crate::diag::Diagnostic;

/// The schema the output conforms to.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
/// The SARIF spec version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn message(text: impl Into<String>) -> Value {
    obj(vec![("text", s(text))])
}

fn location(cx: &LintContext<'_>, stmt: StmtId, note: Option<&str>) -> Value {
    let st = cx.module.stmt(stmt);
    let mut fields = Vec::new();
    if let Some(text) = note {
        fields.push(("message", message(text)));
    }
    if let Some(line) = cx.module.stmt_line(stmt) {
        fields.push((
            "physicalLocation",
            obj(vec![(
                "region",
                obj(vec![("startLine", Value::Num(f64::from(line)))]),
            )]),
        ));
    }
    fields.push((
        "logicalLocations",
        Value::Arr(vec![obj(vec![
            (
                "fullyQualifiedName",
                s(format!("{}.{}", cx.module.func(st.func).name, st.block)),
            ),
            ("decoratedName", s(cx.module.describe_stmt(stmt))),
            ("kind", s("member")),
        ])]),
    ));
    obj(fields)
}

fn step_text(step: &ExplainStep) -> String {
    match &step.src {
        None => format!("{}: obj {} seeded by `addr_of`", step.dst, step.obj),
        Some(src) => format!(
            "{}: obj {} arrived from {} via `{}`",
            step.dst, step.obj, src, step.via
        ),
    }
}

/// The `why_points_to` derivation of the racing alias, as a SARIF code
/// flow. Prefers the accessor whose derivation crosses a `thread`
/// interference edge — the path that shows *which fork* made the alias
/// (and hence the race) possible.
fn code_flow(d: &Diagnostic, events: &[Event]) -> Option<Value> {
    let obj_id: u64 = d.prop("obj_id")?.parse().ok()?;
    let mut best: Option<Vec<ExplainStep>> = None;
    for key in ["access_ptr", "store_ptr"] {
        let Some(var) = d.prop(key).and_then(|v| v.parse::<u64>().ok()) else {
            continue;
        };
        let Some(path) = why_points_to(events, var, obj_id) else {
            continue;
        };
        let crosses = path.iter().any(|st| st.via == "thread");
        if crosses {
            best = Some(path);
            break;
        }
        if best.is_none() {
            best = Some(path);
        }
    }
    let path = best?;
    let locations: Vec<Value> = path
        .iter()
        .map(|step| {
            obj(vec![(
                "location",
                obj(vec![("message", message(step_text(step)))]),
            )])
        })
        .collect();
    Some(Value::Arr(vec![obj(vec![(
        "threadFlows",
        Value::Arr(vec![obj(vec![("locations", Value::Arr(locations))])]),
    )])]))
}

fn result(
    cx: &LintContext<'_>,
    registry: &Registry,
    d: &Diagnostic,
    suppressed: bool,
    events: Option<&[Event]>,
) -> Value {
    let rule_index = registry
        .checkers()
        .iter()
        .position(|c| c.code() == d.code)
        .map_or(-1.0, |i| i as f64);
    let mut fields = vec![
        ("ruleId", s(d.code)),
        ("ruleIndex", Value::Num(rule_index)),
        ("level", s(d.severity.sarif_level())),
        ("message", message(&d.message)),
        ("locations", Value::Arr(vec![location(cx, d.primary, None)])),
    ];
    if !d.related.is_empty() {
        fields.push((
            "relatedLocations",
            Value::Arr(
                d.related
                    .iter()
                    .map(|r| location(cx, r.stmt, Some(&r.message)))
                    .collect(),
            ),
        ));
    }
    if let (Some(events), "FL0001") = (events, d.code) {
        if let Some(flows) = code_flow(d, events) {
            fields.push(("codeFlows", flows));
        }
    }
    if !d.props.is_empty() {
        fields.push((
            "properties",
            Value::Obj(d.props.iter().map(|(k, v)| (k.clone(), s(v))).collect()),
        ));
    }
    if suppressed {
        fields.push((
            "suppressions",
            Value::Arr(vec![obj(vec![("kind", s("inSource"))])]),
        ));
    }
    obj(fields)
}

/// Renders the report as a SARIF 2.1.0 log. Pass the events of an
/// explain-enabled [`Recorder`](fsam_trace::Recorder) to embed
/// `why_points_to` code flows into the race results; pass `None` for a
/// plain log.
pub fn to_sarif(
    cx: &LintContext<'_>,
    registry: &Registry,
    report: &crate::diag::LintReport,
    events: Option<&[Event]>,
) -> Value {
    let rules: Vec<Value> = registry
        .checkers()
        .iter()
        .map(|c| {
            obj(vec![
                ("id", s(c.code())),
                ("name", s(c.name())),
                ("shortDescription", message(c.description())),
            ])
        })
        .collect();
    let mut results: Vec<Value> = Vec::new();
    for d in &report.diagnostics {
        results.push(result(cx, registry, d, false, events));
    }
    for d in &report.suppressed {
        results.push(result(cx, registry, d, true, events));
    }
    obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Value::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![("name", s("fsam-lint")), ("rules", Value::Arr(rules))]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
}

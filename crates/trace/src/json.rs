//! A minimal JSON reader/writer, just enough for the trace wire format.
//!
//! The workspace builds offline with no external crates, so the JSONL
//! exporter and the CI schema validator share this hand-rolled parser.
//! It accepts standard JSON (objects, arrays, strings with `\uXXXX`
//! escapes, numbers, booleans, null) and preserves object key order —
//! the key-drift check in CI compares emitted key sequences exactly.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in source order, if this is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Value::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// The number behind this value, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string behind this value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes as compact JSON onto `out`. Output round-trips through
    /// [`parse`] (integral numbers are written without a decimal point).
    pub fn write_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_to(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes as a compact JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    /// Serializes with two-space indentation and a trailing newline — a
    /// stable, diffable layout used by the SARIF golden files.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_to(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Writes a JSON number: integral values in i64 range print without a
/// decimal point (`3`, not `3.0`), everything else via Rust's shortest
/// round-trippable float formatting.
fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Escapes `s` as a JSON string literal (with quotes) onto `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates fold to the replacement character;
                            // the trace writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.keys(), Some(vec!["a", "b", "e"]));
        let a = v.get("a").unwrap();
        assert_eq!(
            a,
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote\" back\\ nl\n tab\t ctrl\u{1} uni\u{263a}";
        let mut doc = String::from("{\"k\": ");
        write_escaped(&mut doc, original);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1, 2,]",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "--3",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""A☺""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{263a}"));
    }

    #[test]
    fn serializer_round_trips() {
        let v = Value::Obj(vec![
            ("n".into(), Value::Num(42.0)),
            ("f".into(), Value::Num(-2.5)),
            ("s".into(), Value::Str("a\"b\nc".into())),
            (
                "arr".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Obj(vec![])]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let compact = v.to_json();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        // Integers have no decimal point; key order survives.
        assert!(compact.contains("\"n\":42"), "{compact}");
        assert_eq!(parse(&compact).unwrap().keys(), v.keys());
    }

    #[test]
    fn pretty_layout_is_stable() {
        let v = Value::Obj(vec![(
            "a".into(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]),
        )]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }
}

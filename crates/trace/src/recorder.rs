//! The lock-free event recorder and its span handle.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled means free.** Every instrumentation site in the solver's
//!    hot loop guards on [`Recorder::is_enabled`] — one relaxed atomic
//!    load — and a disabled recorder owns *no* slot storage, so the
//!    "tracing off ⇒ zero heap growth" property is checkable, not
//!    aspirational.
//! 2. **Enabled means wait-free.** Writers claim a slot with a single
//!    `fetch_add` on the cursor and publish the event through that slot's
//!    `OnceLock`. No mutex, no contention between the pipeline's scoped
//!    interference threads, no unsafe code.
//! 3. **Bounded.** The ring is pre-allocated at construction; events past
//!    capacity are counted in [`Recorder::dropped`] instead of growing the
//!    heap mid-analysis. Observability must not perturb the memory numbers
//!    it exists to report (the Table 2 columns).
//!
//! Spans carry explicit parent ids rather than a thread-local stack:
//! `Pipeline::run_many` solves configurations on separate threads that all
//! feed one recorder, and attribution has to survive the hop.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Identifier of a recorded span, unique within one [`Recorder`].
pub type SpanId = u64;

/// A value attached to a structured event field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (ids, counts, byte sizes).
    U64(u64),
    /// A short string tag (kinds, edge labels).
    Str(Cow<'static, str>),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(Cow::Borrowed(v))
    }
}

/// One recorded trace entry.
///
/// The three variants mirror the three JSONL record types in
/// [`crate::schema`]: timing scopes, monotonic totals, and structured
/// point-in-time facts.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A closed timing scope.
    Span {
        /// Unique id within the recorder.
        id: SpanId,
        /// Enclosing span, if any.
        parent: Option<SpanId>,
        /// Scope name, e.g. `stage.pre_analysis`.
        name: Cow<'static, str>,
        /// Start, microseconds since the recorder was created.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A monotonic counter reading, attributed to a span.
    Counter {
        /// Counter name, e.g. `solve.strong_updates`.
        name: Cow<'static, str>,
        /// The reading.
        value: u64,
        /// Span the reading belongs to, if any.
        span: Option<SpanId>,
    },
    /// A structured point event with free-form fields.
    Point {
        /// Event name, e.g. `prop`.
        name: Cow<'static, str>,
        /// Span the event belongs to, if any.
        span: Option<SpanId>,
        /// Timestamp, microseconds since the recorder was created.
        at_us: u64,
        /// Named payload fields.
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    },
}

impl Event {
    fn payload_heap_bytes(&self) -> usize {
        // Not `&str`: the Borrowed/Owned split is the whole point here.
        #[allow(clippy::ptr_arg)]
        fn cow_bytes(c: &Cow<'static, str>) -> usize {
            match c {
                Cow::Borrowed(_) => 0,
                Cow::Owned(s) => s.capacity(),
            }
        }
        match self {
            Event::Span { name, .. } | Event::Counter { name, .. } => cow_bytes(name),
            Event::Point { name, fields, .. } => {
                cow_bytes(name)
                    + fields.capacity() * std::mem::size_of::<(Cow<'static, str>, FieldValue)>()
                    + fields
                        .iter()
                        .map(|(k, v)| {
                            cow_bytes(k)
                                + match v {
                                    FieldValue::U64(_) => 0,
                                    FieldValue::Str(s) => cow_bytes(s),
                                }
                        })
                        .sum::<usize>()
            }
        }
    }
}

/// A bounded, wait-free sink of [`Event`]s (see module docs).
pub struct Recorder {
    /// `false` short-circuits every instrumentation site.
    enabled: AtomicBool,
    /// Whether per-propagation `prop` events (the [`crate::explain`]
    /// substrate) should be emitted. Orders of magnitude chattier than
    /// spans and counters, so it is opt-in even when tracing is on.
    explain: AtomicBool,
    /// Pre-allocated slot ring; empty for a disabled recorder.
    slots: Vec<OnceLock<Event>>,
    /// Next slot to claim. May run past `slots.len()`; the excess is the
    /// dropped-event count.
    cursor: AtomicUsize,
    /// Span id allocator (0 is reserved / never issued).
    next_span: AtomicU64,
    /// Epoch for `start_us` / `at_us` timestamps.
    epoch: Instant,
}

impl Recorder {
    /// An inert recorder: records nothing, owns no slot storage.
    ///
    /// This is the default wired through the pipeline, so the analysis
    /// hot paths pay exactly one relaxed load per instrumentation site.
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            explain: AtomicBool::new(false),
            slots: Vec::new(),
            cursor: AtomicUsize::new(0),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// An enabled recorder holding at most `capacity` events. Spans and
    /// counters are recorded; per-propagation `prop` events are not (see
    /// [`Recorder::with_explain`]).
    pub fn new(capacity: usize) -> Recorder {
        let mut r = Recorder::disabled();
        r.enabled = AtomicBool::new(true);
        r.slots = (0..capacity).map(|_| OnceLock::new()).collect();
        r
    }

    /// An enabled recorder that additionally captures per-propagation
    /// `prop` events, the raw material for [`crate::explain`].
    pub fn with_explain(capacity: usize) -> Recorder {
        let r = Recorder::new(capacity);
        r.explain.store(true, Ordering::Relaxed);
        r
    }

    /// The hot-path guard: one relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Whether `prop` (explain) events should be emitted.
    #[inline]
    pub fn explain_enabled(&self) -> bool {
        self.is_enabled() && self.explain.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records `ev`, or counts it as dropped when the ring is full.
    /// Wait-free: one `fetch_add` plus an uncontended `OnceLock::set`
    /// (each slot is claimed by exactly one writer).
    pub fn emit(&self, ev: Event) {
        if !self.is_enabled() {
            return;
        }
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
        if let Some(cell) = self.slots.get(slot) {
            let _ = cell.set(ev);
        }
    }

    /// Opens a root-level span. Disabled recorders return an inert span
    /// whose operations are all no-ops.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        self.span_under(None, name)
    }

    /// Opens a span under an explicit parent id (used to hand hierarchy
    /// across threads, where `Span::child` lifetimes cannot flow).
    pub fn span_under(
        &self,
        parent: Option<SpanId>,
        name: impl Into<Cow<'static, str>>,
    ) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                rec: self,
                id: None,
                parent: None,
                name: Cow::Borrowed(""),
                start_us: 0,
            };
        }
        Span {
            rec: self,
            id: Some(self.next_span.fetch_add(1, Ordering::Relaxed)),
            parent,
            name: name.into(),
            start_us: self.now_us(),
        }
    }

    /// Records a counter reading attributed to `span`.
    pub fn counter(&self, span: Option<SpanId>, name: impl Into<Cow<'static, str>>, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Event::Counter {
            name: name.into(),
            value,
            span,
        });
    }

    /// Records a structured point event attributed to `span`.
    pub fn point(
        &self,
        span: Option<SpanId>,
        name: impl Into<Cow<'static, str>>,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Event::Point {
            name: name.into(),
            span,
            at_us: self.now_us(),
            fields,
        });
    }

    /// Snapshot of everything recorded so far, in emission order.
    ///
    /// Slots claimed by writers that have not finished publishing yet are
    /// skipped — callers drain after the analysis joins its threads, so
    /// in practice this is exact.
    pub fn events(&self) -> Vec<Event> {
        let n = self.cursor.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..n]
            .iter()
            .filter_map(|c| c.get().cloned())
            .collect()
    }

    /// Events recorded (bounded by capacity).
    pub fn recorded(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> usize {
        self.cursor
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len())
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes held by the recorder: the slot ring plus recorded event
    /// payloads. Exactly `0` for a disabled recorder, which is what the
    /// overhead-guard test pins down.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<OnceLock<Event>>()
            + self
                .slots
                .iter()
                .filter_map(|c| c.get())
                .map(Event::payload_heap_bytes)
                .sum::<usize>()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// An RAII timing scope: records a [`Event::Span`] when dropped.
///
/// Inert when its recorder is disabled (`id` is `None`): children,
/// counters and points all short-circuit.
#[must_use = "a span records its duration when dropped"]
pub struct Span<'a> {
    rec: &'a Recorder,
    id: Option<SpanId>,
    parent: Option<SpanId>,
    name: Cow<'static, str>,
    start_us: u64,
}

impl<'a> Span<'a> {
    /// This span's id, or `None` on a disabled recorder.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, name: impl Into<Cow<'static, str>>) -> Span<'a> {
        self.rec.span_under(self.id, name)
    }

    /// Records a counter reading attributed to this span.
    pub fn counter(&self, name: impl Into<Cow<'static, str>>, value: u64) {
        if self.id.is_some() {
            self.rec.counter(self.id, name, value);
        }
    }

    /// Records a structured point event attributed to this span.
    pub fn point(
        &self,
        name: impl Into<Cow<'static, str>>,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if self.id.is_some() {
            self.rec.point(self.id, name, fields);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let end = self.rec.now_us();
            self.rec.emit(Event::Span {
                id,
                parent: self.parent,
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Recorder::new(64);
        let (outer_id, inner_id);
        {
            let outer = rec.span("outer");
            outer_id = outer.id().unwrap();
            {
                let inner = outer.child("inner");
                inner_id = inner.id().unwrap();
                inner.counter("work", 3);
            }
            // Inner closed first: already recorded while outer is live.
            assert_eq!(
                rec.events()
                    .iter()
                    .filter(|e| matches!(e, Event::Span { .. }))
                    .count(),
                1
            );
        }
        let events = rec.events();
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    id, parent, name, ..
                } => Some((*id, *parent, name.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.contains(&(inner_id, Some(outer_id), Cow::Borrowed("inner"))));
        assert!(spans.contains(&(outer_id, None, Cow::Borrowed("outer"))));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counter { name, value: 3, span: Some(s) } if name == "work" && *s == inner_id
        )));
    }

    #[test]
    fn disabled_recorder_is_inert_and_heapless() {
        let rec = Recorder::disabled();
        assert_eq!(rec.heap_bytes(), 0);
        {
            let s = rec.span("root");
            assert_eq!(s.id(), None);
            let c = s.child("leaf");
            c.counter("n", 1);
            c.point("p", vec![("k".into(), FieldValue::U64(1))]);
        }
        rec.counter(None, "free", 9);
        assert!(rec.events().is_empty());
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.heap_bytes(), 0);
    }

    #[test]
    fn overflow_counts_dropped_without_growing() {
        let rec = Recorder::new(4);
        let bytes_empty = rec.heap_bytes();
        for i in 0..10 {
            rec.counter(None, "n", i);
        }
        assert_eq!(rec.recorded(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.events().len(), 4);
        // Static-name counters carry no payload heap: the ring never grew.
        assert_eq!(rec.heap_bytes(), bytes_empty);
    }

    #[test]
    fn concurrent_writers_never_lose_within_capacity() {
        let rec = std::sync::Arc::new(Recorder::new(4 * 500));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..500u64 {
                        rec.counter(None, "tick", t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(rec.events().len(), 2000);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn explain_flag_gates_separately() {
        assert!(!Recorder::new(8).explain_enabled());
        assert!(Recorder::with_explain(8).explain_enabled());
        assert!(!Recorder::disabled().explain_enabled());
    }
}

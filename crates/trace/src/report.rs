//! Human-readable rendering of a recorded trace: a span tree with
//! attributed counters, followed by a flat profile (total time by span
//! name — the "flame" view collapsed to names, which is what a terminal
//! can show).

use std::collections::HashMap;

use crate::recorder::{Event, SpanId};

struct SpanRow<'a> {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'a str,
    start_us: u64,
    dur_us: u64,
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3} ms", us as f64 / 1e3)
}

/// Renders `events` as a span tree plus a flat profile.
///
/// Orphan spans (parent never closed — e.g. dropped by a full ring) are
/// promoted to roots; counters without a span land in an "unscoped"
/// section at the end.
pub fn render(events: &[Event]) -> String {
    let mut spans: Vec<SpanRow<'_>> = Vec::new();
    let mut counters: HashMap<Option<SpanId>, Vec<(&str, u64)>> = HashMap::new();
    let mut points: HashMap<Option<SpanId>, usize> = HashMap::new();
    for ev in events {
        match ev {
            Event::Span {
                id,
                parent,
                name,
                start_us,
                dur_us,
            } => spans.push(SpanRow {
                id: *id,
                parent: *parent,
                name,
                start_us: *start_us,
                dur_us: *dur_us,
            }),
            Event::Counter { name, value, span } => {
                counters.entry(*span).or_default().push((name, *value));
            }
            Event::Point { span, .. } => *points.entry(*span).or_default() += 1,
        }
    }

    let known: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut children: HashMap<Option<SpanId>, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        // Promote spans whose parent never closed to roots.
        let key = s.parent.filter(|p| known.contains(p));
        children.entry(key).or_default().push(i);
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
    }

    let mut out = String::new();
    out.push_str("trace report\n============\n");
    fn walk(
        out: &mut String,
        spans: &[SpanRow<'_>],
        children: &HashMap<Option<SpanId>, Vec<usize>>,
        counters: &HashMap<Option<SpanId>, Vec<(&str, u64)>>,
        points: &HashMap<Option<SpanId>, usize>,
        node: usize,
        depth: usize,
    ) {
        let s = &spans[node];
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{:<32} {}\n", s.name, fmt_ms(s.dur_us)));
        if let Some(cs) = counters.get(&Some(s.id)) {
            for (name, value) in cs {
                out.push_str(&format!("{indent}    {name} = {value}\n"));
            }
        }
        if let Some(&n) = points.get(&Some(s.id)) {
            out.push_str(&format!("{indent}    ({n} events)\n"));
        }
        if let Some(kids) = children.get(&Some(s.id)) {
            for &k in kids {
                walk(out, spans, children, counters, points, k, depth + 1);
            }
        }
    }
    if let Some(roots) = children.get(&None) {
        for &r in roots {
            walk(&mut out, &spans, &children, &counters, &points, r, 0);
        }
    }

    if let Some(cs) = counters.get(&None) {
        out.push_str("\nunscoped counters\n");
        for (name, value) in cs {
            out.push_str(&format!("    {name} = {value}\n"));
        }
    }

    // Flat profile: self-explanatory for "where did the time go" without
    // reading the tree. Aggregates by name across all instances.
    let mut flat: Vec<(&str, u64, usize)> = Vec::new();
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for s in &spans {
        match by_name.get(s.name) {
            Some(&i) => {
                flat[i].1 += s.dur_us;
                flat[i].2 += 1;
            }
            None => {
                by_name.insert(s.name, flat.len());
                flat.push((s.name, s.dur_us, 1));
            }
        }
    }
    flat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !flat.is_empty() {
        out.push_str("\nflat profile (total by span name)\n");
        for (name, total, count) in flat {
            out.push_str(&format!("    {name:<32} {:>12}  x{count}\n", fmt_ms(total)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn renders_tree_counters_and_flat_profile() {
        let rec = Recorder::new(64);
        {
            let run = rec.span("pipeline.run");
            {
                let a = run.child("stage.pre_analysis");
                a.counter("andersen.rounds", 3);
            }
            {
                let b = run.child("solve");
                b.point("prop", vec![]);
            }
            rec.counter(None, "global.runs", 1);
        }
        let text = render(&rec.events());
        assert!(text.contains("pipeline.run"), "{text}");
        assert!(text.contains("  stage.pre_analysis"), "{text}");
        assert!(text.contains("andersen.rounds = 3"), "{text}");
        assert!(text.contains("(1 events)"), "{text}");
        assert!(text.contains("unscoped counters"), "{text}");
        assert!(text.contains("global.runs = 1"), "{text}");
        assert!(text.contains("flat profile"), "{text}");
        // The tree lists children in start order under their parent.
        let pre = text.find("stage.pre_analysis").unwrap();
        let solve = text.find("solve").unwrap();
        assert!(pre < solve);
    }

    #[test]
    fn orphan_spans_become_roots() {
        use crate::recorder::Event;
        let rec = Recorder::new(8);
        rec.emit(Event::Span {
            id: 9,
            parent: Some(999), // parent never recorded
            name: "orphan".into(),
            start_us: 0,
            dur_us: 5,
        });
        let text = render(&rec.events());
        assert!(text.contains("orphan"), "{text}");
    }
}

//! The stable JSONL wire format for trace events, plus its validator.
//!
//! One event per line, one JSON object per event, discriminated by a
//! `"type"` key. The schema is deliberately closed — exactly these keys,
//! in this order — so CI's `trace-smoke` job can catch silent drift:
//!
//! ```json
//! {"type":"span","id":3,"parent":1,"name":"solve","start_us":120,"dur_us":4500}
//! {"type":"counter","name":"solve.strong_updates","value":17,"span":3}
//! {"type":"event","name":"prop","span":3,"at_us":130,"fields":{"dst":4,"via":"addr"}}
//! ```
//!
//! - `span` — a closed timing scope. `parent` is `null` for roots.
//! - `counter` — a monotonic total attributed to a span (`span` may be
//!   `null` for process-wide counters).
//! - `event` — a structured point record; `fields` is a flat object whose
//!   values are numbers or strings.
//!
//! The disabled-path contract (documented here because the schema is the
//! public face of the crate): when tracing is off, instrumentation sites
//! cost one relaxed atomic load, no events exist, and the recorder owns
//! zero heap — see `Recorder::heap_bytes`.

use crate::json::{self, write_escaped, Value};
use crate::recorder::{Event, FieldValue};
use std::fmt::Write as _;

/// Renders one event as its JSONL line (no trailing newline).
pub fn to_jsonl_line(ev: &Event) -> String {
    let mut out = String::new();
    match ev {
        Event::Span {
            id,
            parent,
            name,
            start_us,
            dur_us,
        } => {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{id}");
            out.push_str(",\"parent\":");
            match parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"start_us\":{start_us},\"dur_us\":{dur_us}}}");
        }
        Event::Counter { name, value, span } => {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value},\"span\":");
            match span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        Event::Point {
            name,
            span,
            at_us,
            fields,
        } => {
            out.push_str("{\"type\":\"event\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"span\":");
            match span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"at_us\":{at_us},\"fields\":{{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, k);
                out.push(':');
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::Str(s) => write_escaped(&mut out, s),
                }
            }
            out.push_str("}}");
        }
    }
    out
}

/// Renders events as a JSONL document (one line each, trailing newline).
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&to_jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// Parses one JSONL line back into an [`Event`].
///
/// Stricter than a generic JSON parse: the line must validate against the
/// schema first, so round-tripping is only possible for well-formed lines.
pub fn parse_line(line: &str) -> Result<Event, String> {
    validate_line(line)?;
    let v = json::parse(line)?;
    let name = |v: &Value, k: &str| v.get(k).unwrap().as_str().unwrap().to_string();
    let num = |v: &Value, k: &str| v.get(k).unwrap().as_num().unwrap() as u64;
    let opt = |v: &Value, k: &str| match v.get(k).unwrap() {
        Value::Null => None,
        n => Some(n.as_num().unwrap() as u64),
    };
    Ok(match v.get("type").unwrap().as_str().unwrap() {
        "span" => Event::Span {
            id: num(&v, "id"),
            parent: opt(&v, "parent"),
            name: name(&v, "name").into(),
            start_us: num(&v, "start_us"),
            dur_us: num(&v, "dur_us"),
        },
        "counter" => Event::Counter {
            name: name(&v, "name").into(),
            value: num(&v, "value"),
            span: opt(&v, "span"),
        },
        _ => Event::Point {
            name: name(&v, "name").into(),
            span: opt(&v, "span"),
            at_us: num(&v, "at_us"),
            fields: match v.get("fields").unwrap() {
                Value::Obj(pairs) => pairs
                    .iter()
                    .map(|(k, fv)| {
                        let fv = match fv {
                            Value::Num(n) => FieldValue::U64(*n as u64),
                            Value::Str(s) => FieldValue::Str(s.clone().into()),
                            _ => unreachable!("validated"),
                        };
                        (k.clone().into(), fv)
                    })
                    .collect(),
                _ => unreachable!("validated"),
            },
        },
    })
}

fn expect_keys(v: &Value, want: &[&str]) -> Result<(), String> {
    let keys = v.keys().ok_or("line is not a JSON object")?;
    if keys != want {
        return Err(format!("keys {keys:?} do not match schema {want:?}"));
    }
    Ok(())
}

fn expect_uint(v: &Value, key: &str) -> Result<(), String> {
    let n = v
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("{key:?} must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{key:?} must be a non-negative integer, got {n}"));
    }
    Ok(())
}

fn expect_opt_uint(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Null) => Ok(()),
        Some(_) => expect_uint(v, key),
        None => Err(format!("missing {key:?}")),
    }
}

fn expect_str(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Str(_)) => Ok(()),
        _ => Err(format!("{key:?} must be a string")),
    }
}

/// Validates one JSONL line against the schema. `Ok(())` iff the line is
/// a well-formed span/counter/event record with exactly the schema's
/// keys, in the schema's order, and well-typed values.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing \"type\" discriminator")?;
    match ty {
        "span" => {
            expect_keys(&v, &["type", "id", "parent", "name", "start_us", "dur_us"])?;
            expect_uint(&v, "id")?;
            expect_opt_uint(&v, "parent")?;
            expect_str(&v, "name")?;
            expect_uint(&v, "start_us")?;
            expect_uint(&v, "dur_us")
        }
        "counter" => {
            expect_keys(&v, &["type", "name", "value", "span"])?;
            expect_str(&v, "name")?;
            expect_uint(&v, "value")?;
            expect_opt_uint(&v, "span")
        }
        "event" => {
            expect_keys(&v, &["type", "name", "span", "at_us", "fields"])?;
            expect_str(&v, "name")?;
            expect_opt_uint(&v, "span")?;
            expect_uint(&v, "at_us")?;
            match v.get("fields") {
                Some(Value::Obj(pairs)) => {
                    for (k, fv) in pairs {
                        if !matches!(fv, Value::Num(_) | Value::Str(_)) {
                            return Err(format!("field {k:?} must be a number or string"));
                        }
                    }
                    Ok(())
                }
                _ => Err("\"fields\" must be an object".to_string()),
            }
        }
        other => Err(format!("unknown record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    /// A realistic event stream survives export → validate → parse with
    /// every event intact.
    #[test]
    fn jsonl_round_trip() {
        let rec = Recorder::new(64);
        {
            let run = rec.span("pipeline.run");
            {
                let solve = run.child("solve");
                solve.counter("solve.processed", 123);
                solve.point(
                    "prop",
                    vec![
                        ("dst".into(), FieldValue::U64(7)),
                        ("via".into(), FieldValue::Str("addr \"x\"".into())),
                    ],
                );
            }
            rec.counter(None, "global.total", 9);
        }
        let events = rec.events();
        assert!(events.len() >= 4);
        let doc = export_jsonl(&events);
        let parsed: Vec<Event> = doc
            .lines()
            .map(|l| {
                validate_line(l).expect(l);
                parse_line(l).expect(l)
            })
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn validator_rejects_drifted_lines() {
        for bad in [
            // wrong key order
            r#"{"type":"counter","value":1,"name":"n","span":null}"#,
            // extra key
            r#"{"type":"counter","name":"n","value":1,"span":null,"extra":0}"#,
            // missing key
            r#"{"type":"span","id":1,"parent":null,"name":"s","start_us":0}"#,
            // wrong value type
            r#"{"type":"counter","name":"n","value":"1","span":null}"#,
            // negative counter
            r#"{"type":"counter","name":"n","value":-1,"span":null}"#,
            // unknown type
            r#"{"type":"metric","name":"n","value":1,"span":null}"#,
            // nested field value
            r#"{"type":"event","name":"p","span":null,"at_us":0,"fields":{"a":[1]}}"#,
            // not an object
            r#"[1,2]"#,
        ] {
            assert!(validate_line(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn validator_accepts_each_record_type() {
        for good in [
            r#"{"type":"span","id":1,"parent":null,"name":"root","start_us":0,"dur_us":10}"#,
            r#"{"type":"span","id":2,"parent":1,"name":"leaf","start_us":1,"dur_us":2}"#,
            r#"{"type":"counter","name":"n","value":0,"span":null}"#,
            r#"{"type":"event","name":"p","span":3,"at_us":5,"fields":{}}"#,
            r#"{"type":"event","name":"p","span":null,"at_us":5,"fields":{"a":1,"b":"x"}}"#,
        ] {
            validate_line(good).expect(good);
        }
    }
}

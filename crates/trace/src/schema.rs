//! The stable JSONL wire format for trace events, plus its validator.
//!
//! One event per line, one JSON object per event, discriminated by a
//! `"type"` key. The schema is deliberately closed — exactly these keys,
//! in this order — so CI's `trace-smoke` job can catch silent drift:
//!
//! ```json
//! {"type":"span","id":3,"parent":1,"name":"solve","start_us":120,"dur_us":4500}
//! {"type":"counter","name":"solve.strong_updates","value":17,"span":3}
//! {"type":"event","name":"prop","span":3,"at_us":130,"fields":{"dst":4,"via":"addr"}}
//! ```
//!
//! - `span` — a closed timing scope. `parent` is `null` for roots.
//! - `counter` — a monotonic total attributed to a span (`span` may be
//!   `null` for process-wide counters).
//! - `event` — a structured point record; `fields` is a flat object whose
//!   values are numbers or strings.
//!
//! The disabled-path contract (documented here because the schema is the
//! public face of the crate): when tracing is off, instrumentation sites
//! cost one relaxed atomic load, no events exist, and the recorder owns
//! zero heap — see `Recorder::heap_bytes`.

use crate::json::{self, write_escaped, Value};
use crate::recorder::{Event, FieldValue};
use std::fmt::Write as _;

/// Renders one event as its JSONL line (no trailing newline).
pub fn to_jsonl_line(ev: &Event) -> String {
    let mut out = String::new();
    match ev {
        Event::Span {
            id,
            parent,
            name,
            start_us,
            dur_us,
        } => {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{id}");
            out.push_str(",\"parent\":");
            match parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"start_us\":{start_us},\"dur_us\":{dur_us}}}");
        }
        Event::Counter { name, value, span } => {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"value\":{value},\"span\":");
            match span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        Event::Point {
            name,
            span,
            at_us,
            fields,
        } => {
            out.push_str("{\"type\":\"event\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"span\":");
            match span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"at_us\":{at_us},\"fields\":{{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, k);
                out.push(':');
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::Str(s) => write_escaped(&mut out, s),
                }
            }
            out.push_str("}}");
        }
    }
    out
}

/// Renders events as a JSONL document (one line each, trailing newline).
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&to_jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// Parses one JSONL line back into an [`Event`].
///
/// Stricter than a generic JSON parse: the line must validate against the
/// schema first, so round-tripping is only possible for well-formed lines.
pub fn parse_line(line: &str) -> Result<Event, String> {
    validate_line(line)?;
    let v = json::parse(line)?;
    let name = |v: &Value, k: &str| v.get(k).unwrap().as_str().unwrap().to_string();
    let num = |v: &Value, k: &str| v.get(k).unwrap().as_num().unwrap() as u64;
    let opt = |v: &Value, k: &str| match v.get(k).unwrap() {
        Value::Null => None,
        n => Some(n.as_num().unwrap() as u64),
    };
    Ok(match v.get("type").unwrap().as_str().unwrap() {
        "span" => Event::Span {
            id: num(&v, "id"),
            parent: opt(&v, "parent"),
            name: name(&v, "name").into(),
            start_us: num(&v, "start_us"),
            dur_us: num(&v, "dur_us"),
        },
        "counter" => Event::Counter {
            name: name(&v, "name").into(),
            value: num(&v, "value"),
            span: opt(&v, "span"),
        },
        _ => Event::Point {
            name: name(&v, "name").into(),
            span: opt(&v, "span"),
            at_us: num(&v, "at_us"),
            fields: match v.get("fields").unwrap() {
                Value::Obj(pairs) => pairs
                    .iter()
                    .map(|(k, fv)| {
                        let fv = match fv {
                            Value::Num(n) => FieldValue::U64(*n as u64),
                            Value::Str(s) => FieldValue::Str(s.clone().into()),
                            _ => unreachable!("validated"),
                        };
                        (k.clone().into(), fv)
                    })
                    .collect(),
                _ => unreachable!("validated"),
            },
        },
    })
}

fn expect_keys(v: &Value, want: &[&str]) -> Result<(), String> {
    let keys = v.keys().ok_or("line is not a JSON object")?;
    if keys != want {
        return Err(format!("keys {keys:?} do not match schema {want:?}"));
    }
    Ok(())
}

fn expect_uint(v: &Value, key: &str) -> Result<(), String> {
    let n = v
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("{key:?} must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{key:?} must be a non-negative integer, got {n}"));
    }
    Ok(())
}

fn expect_opt_uint(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Null) => Ok(()),
        Some(_) => expect_uint(v, key),
        None => Err(format!("missing {key:?}")),
    }
}

fn expect_str(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Str(_)) => Ok(()),
        _ => Err(format!("{key:?} must be a string")),
    }
}

/// Validates one JSONL line against the schema. `Ok(())` iff the line is
/// a well-formed span/counter/event record with exactly the schema's
/// keys, in the schema's order, and well-typed values.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing \"type\" discriminator")?;
    match ty {
        "span" => {
            expect_keys(&v, &["type", "id", "parent", "name", "start_us", "dur_us"])?;
            expect_uint(&v, "id")?;
            expect_opt_uint(&v, "parent")?;
            expect_str(&v, "name")?;
            expect_uint(&v, "start_us")?;
            expect_uint(&v, "dur_us")
        }
        "counter" => {
            expect_keys(&v, &["type", "name", "value", "span"])?;
            expect_str(&v, "name")?;
            expect_uint(&v, "value")?;
            expect_opt_uint(&v, "span")
        }
        "event" => {
            expect_keys(&v, &["type", "name", "span", "at_us", "fields"])?;
            expect_str(&v, "name")?;
            expect_opt_uint(&v, "span")?;
            expect_uint(&v, "at_us")?;
            match v.get("fields") {
                Some(Value::Obj(pairs)) => {
                    for (k, fv) in pairs {
                        if !matches!(fv, Value::Num(_) | Value::Str(_)) {
                            return Err(format!("field {k:?} must be a number or string"));
                        }
                    }
                    Ok(())
                }
                _ => Err("\"fields\" must be an object".to_string()),
            }
        }
        other => Err(format!("unknown record type {other:?}")),
    }
}

/// The serving-plane counter vocabulary: request ops the `fsam-server`
/// daemon counts individually. Kept in sync with
/// `fsam_server::metrics::OP_NAMES` (a test over there cross-checks every
/// exported key against this validator).
const SERVER_OPS: [&str; 10] = [
    "ping",
    "batch",
    "stats",
    "reload",
    "shutdown",
    "diags",
    "resolve",
    "pt_names",
    "dump_trace",
    "metrics_text",
];

/// Lifetime counter suffixes exported as `server.<suffix>`.
const SERVER_LIFETIME: [&str; 11] = [
    "uptime_us",
    "connections",
    "frames",
    "batches",
    "queries",
    "errors",
    "swaps",
    "p50_us",
    "p95_us",
    "p99_us",
    "max_us",
];

/// Per-window counter suffixes exported as `server.w<N>s_<suffix>`.
const SERVER_WINDOW_SUFFIXES: [&str; 6] =
    ["batches", "queries", "p50_us", "p95_us", "p99_us", "max_us"];

/// The rolling windows the daemon exposes, as `w<N>s` name prefixes.
const SERVER_WINDOWS: [&str; 3] = ["w1s", "w10s", "w60s"];

/// Whether `name` is a known `server.*` counter: a lifetime total, a
/// per-op request count (`server.op_<op>`), or a windowed key
/// (`server.w{1,10,60}s_<suffix>` with the same suffix/op vocabulary).
/// Names without the `server.` prefix are not this validator's business
/// and answer `false`.
pub fn known_server_counter(name: &str) -> bool {
    let Some(suffix) = name.strip_prefix("server.") else {
        return false;
    };
    let known_suffix = |s: &str| {
        SERVER_LIFETIME.contains(&s)
            || s.strip_prefix("op_")
                .is_some_and(|op| SERVER_OPS.contains(&op))
    };
    if known_suffix(suffix) {
        return true;
    }
    SERVER_WINDOWS.iter().any(|w| {
        suffix
            .strip_prefix(w)
            .and_then(|rest| rest.strip_prefix('_'))
            .is_some_and(|rest| SERVER_WINDOW_SUFFIXES.contains(&rest) || known_suffix(rest))
    })
}

/// The happens-before stage's counter vocabulary: the factored
/// `HbFacts` shape the pipeline's `stage.hb` span exports. Kept in
/// sync with `fsam_threads::hb::HbFacts::export_trace` (a pipeline test
/// cross-checks every exported key against this validator).
const HB_COUNTERS: [&str; 6] = [
    "regions",
    "region_stmts",
    "matrix_bits",
    "ordered_bits",
    "threads",
    "chain_events",
];

/// The lint reducer's counter vocabulary: the staged funnel
/// (`lint.candidates` through `lint.confirmed`), the grouped outputs,
/// the alias-class memo, and the registry totals. Kept in sync with
/// `fsam_lint`'s `reduce.rs`/`checkers.rs` exports.
const LINT_COUNTERS: [&str; 13] = [
    "candidates",
    "killed_shared",
    "killed_mhp",
    "killed_hb",
    "killed_lockset",
    "killed_alias",
    "confirmed",
    "confirmed_groups",
    "hb_groups",
    "alias_classes",
    "class_probes",
    "diagnostics",
    "suppressed",
];

/// Whether `name` is a known `hb.*` counter (the happens-before stage's
/// factored-form evidence). Names without the `hb.` prefix are not this
/// validator's business and answer `false`.
pub fn known_hb_counter(name: &str) -> bool {
    name.strip_prefix("hb.")
        .is_some_and(|s| HB_COUNTERS.contains(&s))
}

/// Whether `name` is a known `lint.*` counter (the reducer funnel and
/// registry totals). Names without the `lint.` prefix answer `false`.
pub fn known_lint_counter(name: &str) -> bool {
    name.strip_prefix("lint.")
        .is_some_and(|s| LINT_COUNTERS.contains(&s))
}

/// Whether `name` is a known `req.*` per-request event: one of the four
/// request phases the daemon samples (decode, queue, engine, encode).
/// Names without the `req.` prefix answer `false`.
pub fn known_req_event(name: &str) -> bool {
    matches!(
        name,
        "req.decode" | "req.queue" | "req.engine" | "req.encode"
    )
}

/// Validates a whole JSONL export, stricter than per-line validation:
///
/// * every line must pass [`validate_line`];
/// * counter names in the `server.*`, `hb.*` and `lint.*` namespaces
///   must be in their known vocabularies ([`known_server_counter`],
///   [`known_hb_counter`], [`known_lint_counter`]), and event names in
///   the `req.*` namespace must be known request phases carrying a
///   numeric `req` id and `us` duration ([`known_req_event`]);
/// * a counter name may appear **once** per span within the export —
///   duplicates used to be silently last-write-wins in consumers, now
///   they are a validation error.
pub fn validate_export(doc: &str) -> Result<(), String> {
    let mut seen: std::collections::HashSet<(String, Option<u64>)> =
        std::collections::HashSet::new();
    for (i, line) in doc.lines().enumerate() {
        let fail = |msg: String| format!("line {}: {msg}", i + 1);
        validate_line(line).map_err(&fail)?;
        match parse_line(line).map_err(&fail)? {
            Event::Counter { name, span, .. } => {
                if name.starts_with("server.") && !known_server_counter(&name) {
                    return Err(fail(format!("unknown server.* counter {name:?}")));
                }
                if name.starts_with("hb.") && !known_hb_counter(&name) {
                    return Err(fail(format!("unknown hb.* counter {name:?}")));
                }
                if name.starts_with("lint.") && !known_lint_counter(&name) {
                    return Err(fail(format!("unknown lint.* counter {name:?}")));
                }
                if !seen.insert((name.to_string(), span)) {
                    return Err(fail(format!(
                        "duplicate counter {name:?} in span {span:?} (an export must \
                         carry one reading per counter per span)"
                    )));
                }
            }
            Event::Point { name, fields, .. } => {
                if name.starts_with("req.") {
                    if !known_req_event(&name) {
                        return Err(fail(format!("unknown req.* event {name:?}")));
                    }
                    for key in ["req", "us"] {
                        let ok = fields
                            .iter()
                            .any(|(k, v)| k == key && matches!(v, FieldValue::U64(_)));
                        if !ok {
                            return Err(fail(format!(
                                "req.* event {name:?} is missing numeric field {key:?}"
                            )));
                        }
                    }
                }
            }
            Event::Span { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    /// A realistic event stream survives export → validate → parse with
    /// every event intact.
    #[test]
    fn jsonl_round_trip() {
        let rec = Recorder::new(64);
        {
            let run = rec.span("pipeline.run");
            {
                let solve = run.child("solve");
                solve.counter("solve.processed", 123);
                solve.point(
                    "prop",
                    vec![
                        ("dst".into(), FieldValue::U64(7)),
                        ("via".into(), FieldValue::Str("addr \"x\"".into())),
                    ],
                );
            }
            rec.counter(None, "global.total", 9);
        }
        let events = rec.events();
        assert!(events.len() >= 4);
        let doc = export_jsonl(&events);
        let parsed: Vec<Event> = doc
            .lines()
            .map(|l| {
                validate_line(l).expect(l);
                parse_line(l).expect(l)
            })
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn validator_rejects_drifted_lines() {
        for bad in [
            // wrong key order
            r#"{"type":"counter","value":1,"name":"n","span":null}"#,
            // extra key
            r#"{"type":"counter","name":"n","value":1,"span":null,"extra":0}"#,
            // missing key
            r#"{"type":"span","id":1,"parent":null,"name":"s","start_us":0}"#,
            // wrong value type
            r#"{"type":"counter","name":"n","value":"1","span":null}"#,
            // negative counter
            r#"{"type":"counter","name":"n","value":-1,"span":null}"#,
            // unknown type
            r#"{"type":"metric","name":"n","value":1,"span":null}"#,
            // nested field value
            r#"{"type":"event","name":"p","span":null,"at_us":0,"fields":{"a":[1]}}"#,
            // not an object
            r#"[1,2]"#,
        ] {
            assert!(validate_line(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn server_counter_vocabulary_is_checked() {
        for good in [
            "server.uptime_us",
            "server.queries",
            "server.p95_us",
            "server.max_us",
            "server.op_batch",
            "server.op_metrics_text",
            "server.w1s_p99_us",
            "server.w10s_batches",
            "server.w60s_op_ping",
        ] {
            assert!(known_server_counter(good), "rejected {good}");
        }
        for bad in [
            "server.p97_us",        // not an exposed percentile
            "server.op_frobnicate", // unknown op
            "server.w2s_p50_us",    // not an exposed window
            "server.w1s_",          // empty suffix
            "server.",              // empty name
            "solve.strong_updates", // different namespace: not ours to judge
        ] {
            assert!(!known_server_counter(bad), "accepted {bad}");
        }
        assert!(known_req_event("req.engine"));
        assert!(!known_req_event("req.teleport"));
        assert!(!known_req_event("decode"));
    }

    #[test]
    fn hb_and_lint_counter_vocabularies_are_checked() {
        for good in [
            "hb.regions",
            "hb.ordered_bits",
            "hb.chain_events",
            "lint.candidates",
            "lint.killed_hb",
            "lint.hb_groups",
        ] {
            assert!(
                known_hb_counter(good) || known_lint_counter(good),
                "rejected {good}"
            );
        }
        for bad in [
            "hb.pairs",             // HB never enumerates pairs
            "hb.",                  // empty suffix
            "lint.killed_teleport", // unknown funnel stage
            "mhp.regions",          // different namespace: not ours to judge
        ] {
            assert!(
                !known_hb_counter(bad) && !known_lint_counter(bad),
                "accepted {bad}"
            );
        }
        let unknown = r#"{"type":"counter","name":"hb.pairs","value":1,"span":null}"#;
        assert!(validate_export(unknown)
            .unwrap_err()
            .contains("unknown hb.* counter"));
        let unknown = r#"{"type":"counter","name":"lint.bogus","value":1,"span":null}"#;
        assert!(validate_export(unknown)
            .unwrap_err()
            .contains("unknown lint.* counter"));
    }

    #[test]
    fn export_validation_rejects_duplicates_and_unknown_keys() {
        // A well-formed export: distinct counters, known req.* event.
        let good = concat!(
            r#"{"type":"counter","name":"server.queries","value":3,"span":1}"#,
            "\n",
            r#"{"type":"counter","name":"server.w10s_p95_us","value":7,"span":1}"#,
            "\n",
            r#"{"type":"counter","name":"server.queries","value":3,"span":2}"#,
            "\n",
            r#"{"type":"event","name":"req.engine","span":null,"at_us":5,"fields":{"req":9,"us":120}}"#,
            "\n",
        );
        validate_export(good).expect("good export");

        // Same counter twice in the same span: rejected, not
        // last-write-wins.
        let dup = concat!(
            r#"{"type":"counter","name":"server.queries","value":3,"span":1}"#,
            "\n",
            r#"{"type":"counter","name":"server.queries","value":4,"span":1}"#,
            "\n",
        );
        let err = validate_export(dup).unwrap_err();
        assert!(err.contains("duplicate counter"), "{err}");

        // Unknown server.* key.
        let unknown = r#"{"type":"counter","name":"server.p97_us","value":1,"span":null}"#;
        let err = validate_export(unknown).unwrap_err();
        assert!(err.contains("unknown server.* counter"), "{err}");

        // Unknown req.* event name, and a known one missing its fields.
        let bad_req = r#"{"type":"event","name":"req.warp","span":null,"at_us":0,"fields":{}}"#;
        assert!(validate_export(bad_req)
            .unwrap_err()
            .contains("unknown req.* event"));
        let no_us =
            r#"{"type":"event","name":"req.decode","span":null,"at_us":0,"fields":{"req":1}}"#;
        assert!(validate_export(no_us).unwrap_err().contains("\"us\""));

        // Line numbers point at the offender.
        let mixed = concat!(
            r#"{"type":"counter","name":"n","value":1,"span":null}"#,
            "\n",
            "not json\n",
        );
        assert!(validate_export(mixed).unwrap_err().starts_with("line 2:"));
    }

    #[test]
    fn validator_accepts_each_record_type() {
        for good in [
            r#"{"type":"span","id":1,"parent":null,"name":"root","start_us":0,"dur_us":10}"#,
            r#"{"type":"span","id":2,"parent":1,"name":"leaf","start_us":1,"dur_us":2}"#,
            r#"{"type":"counter","name":"n","value":0,"span":null}"#,
            r#"{"type":"event","name":"p","span":3,"at_us":5,"fields":{}}"#,
            r#"{"type":"event","name":"p","span":null,"at_us":5,"fields":{"a":1,"b":"x"}}"#,
        ] {
            validate_line(good).expect(good);
        }
    }
}

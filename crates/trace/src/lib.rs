//! Structured tracing for the FSAM pipeline.
//!
//! The paper's whole evaluation is a story about *where time and precision
//! go* — per-phase wall clock, thread edges pruned by value-flow and lock
//! analysis, strong vs. weak update ratios. This crate is the measurement
//! substrate for those questions: a std-only (the workspace builds
//! offline) recorder of hierarchical **spans**, monotonic **counters**,
//! and structured **events**, designed so that the disabled path costs a
//! single relaxed atomic load and allocates nothing.
//!
//! The pieces:
//!
//! - [`Recorder`] — a wait-free, bounded event sink. Enabled recorders
//!   pre-allocate their slot ring; writers claim slots with one
//!   `fetch_add` and publish through `OnceLock`, so tracing never takes a
//!   lock and never blocks an analysis thread.
//! - [`Span`] — an RAII timing scope with explicit parent links (no
//!   thread-locals: the pipeline hands spans across scoped threads, and
//!   tests run recorders side by side).
//! - [`schema`] — the stable JSONL wire format plus a validator used by
//!   CI's `trace-smoke` job.
//! - [`report`] — a human-readable span tree with per-span counters and a
//!   flat profile, the `Fsam::report` of traces.
//! - [`explain`] — trace-backed provenance: [`explain::why_points_to`]
//!   walks recorded solver propagation events from a points-to fact back
//!   to the `addr_of` (or thread edge) that introduced it.
//!
//! ```
//! use fsam_trace::{Recorder, schema};
//!
//! let rec = Recorder::new(1024);
//! {
//!     let run = rec.span("pipeline.run");
//!     let solve = run.child("solve");
//!     solve.counter("solve.processed", 42);
//! }
//! let events = rec.events();
//! for line in schema::export_jsonl(&events).lines() {
//!     schema::validate_line(line).unwrap();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod json;
pub mod recorder;
pub mod report;
pub mod schema;

pub use explain::{render_path, why_points_to, ExplainNode, ExplainStep};
pub use recorder::{Event, FieldValue, Recorder, Span, SpanId};

//! Trace-backed provenance: why does a variable point to an object?
//!
//! The sparse solver, when run with an explain-enabled recorder, emits a
//! `prop` point event every time a points-to member is *introduced*
//! somewhere — at an `addr_of` seed, across a copy/gep/load/store edge,
//! through an SVFG merge, or along a **thread** value-flow edge (the
//! paper's interleaving edges). [`why_points_to`] walks those events
//! backwards from a `(variable, object)` fact to an `addr_of` seed,
//! producing a concrete SVFG path that justifies the fact.
//!
//! ## The `prop` event contract
//!
//! Every `prop` event carries these fields:
//!
//! | field      | meaning                                                    |
//! |------------|------------------------------------------------------------|
//! | `dst_kind` | `"var"` (top-level variable) or `"def"` (SVFG memory node) |
//! | `dst`      | variable index or SVFG node index                           |
//! | `obj`      | the member object whose arrival at `dst` is being recorded  |
//! | `src_kind` | `"var"`, `"def"`, or `"addr"` (an address-of seed)          |
//! | `src`      | source index; for `"addr"`, the object id itself            |
//! | `src_obj`  | the member at the source (differs from `obj` across a gep)  |
//! | `via`      | `addr`, `copy`, `gep`, `load`, `store`, `merge` or `thread` |
//!
//! The solver guarantees *coverage*, not uniqueness: every member of
//! every final points-to set has at least one recorded introduction, and
//! re-derivations may record more. The walker therefore searches all
//! recorded derivations (depth-first, cycle-safe) rather than trusting
//! the first.

use std::collections::{HashMap, HashSet};

use crate::recorder::{Event, FieldValue};

/// A node on an explanation path: where a points-to member resides.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExplainNode {
    /// A top-level variable (by solver variable index).
    Var(u64),
    /// An indirect memory definition (by SVFG node index).
    Def(u64),
}

impl std::fmt::Display for ExplainNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainNode::Var(v) => write!(f, "var {v}"),
            ExplainNode::Def(d) => write!(f, "svfg node {d}"),
        }
    }
}

/// One step of a [`why_points_to`] path: `obj` arrived at `dst` from
/// `src` (or from an `addr_of` seed when `src` is `None`).
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainStep {
    /// Where the member arrived.
    pub dst: ExplainNode,
    /// Where it came from; `None` for the `addr_of` terminal.
    pub src: Option<ExplainNode>,
    /// The member at `dst`.
    pub obj: u64,
    /// The member at `src` (differs from `obj` across a `gep`).
    pub src_obj: u64,
    /// Edge kind: `addr`, `copy`, `gep`, `load`, `store`, `merge`,
    /// `thread`.
    pub via: String,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: bool, // true = var
    idx: u64,
    obj: u64,
}

struct Edge {
    src: Option<(bool, u64)>, // None = addr seed
    src_obj: u64,
    via: u32, // index into the event list's via string (dedup via owned map)
}

fn field_u64(fields: &[(std::borrow::Cow<'static, str>, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(
    fields: &'a [(std::borrow::Cow<'static, str>, FieldValue)],
    key: &str,
) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        FieldValue::Str(s) if k == key => Some(s.as_ref()),
        _ => None,
    })
}

/// Walks recorded `prop` events from the fact "`var` points to `obj`"
/// back to an `addr_of` seed (possibly through thread value-flow edges).
///
/// Returns the derivation as steps ordered **from the fact backwards**:
/// the first step lands the member at `var`, the last step is the
/// `via == "addr"` terminal. Returns `None` when the fact has no recorded
/// derivation — either it is false, or the trace was recorded without
/// explain events (`Recorder::with_explain`).
pub fn why_points_to(events: &[Event], var: u64, obj: u64) -> Option<Vec<ExplainStep>> {
    // Index every recorded derivation by the (location, member) it lands.
    let mut vias: Vec<String> = Vec::new();
    let mut via_ids: HashMap<String, u32> = HashMap::new();
    let mut edges: HashMap<Key, Vec<Edge>> = HashMap::new();
    for ev in events {
        let Event::Point { name, fields, .. } = ev else {
            continue;
        };
        if name != "prop" {
            continue;
        }
        let (Some(dst_kind), Some(dst), Some(o), Some(via)) = (
            field_str(fields, "dst_kind"),
            field_u64(fields, "dst"),
            field_u64(fields, "obj"),
            field_str(fields, "via"),
        ) else {
            continue;
        };
        let src_kind = field_str(fields, "src_kind").unwrap_or("addr");
        let src = field_u64(fields, "src").unwrap_or(o);
        let src_obj = field_u64(fields, "src_obj").unwrap_or(o);
        let via_id = *via_ids.entry(via.to_string()).or_insert_with(|| {
            vias.push(via.to_string());
            (vias.len() - 1) as u32
        });
        edges
            .entry(Key {
                kind: dst_kind == "var",
                idx: dst,
                obj: o,
            })
            .or_default()
            .push(Edge {
                src: match src_kind {
                    "addr" => None,
                    kind => Some((kind == "var", src)),
                },
                src_obj,
                via: via_id,
            });
    }

    // Depth-first over derivations; `visited` breaks propagation cycles
    // (x = y; y = x records mutual introductions).
    fn dfs(
        edges: &HashMap<Key, Vec<Edge>>,
        vias: &[String],
        key: Key,
        visited: &mut HashSet<Key>,
        path: &mut Vec<ExplainStep>,
    ) -> bool {
        if !visited.insert(key) {
            return false;
        }
        let Some(cands) = edges.get(&key) else {
            visited.remove(&key);
            return false;
        };
        for e in cands {
            let dst = if key.kind {
                ExplainNode::Var(key.idx)
            } else {
                ExplainNode::Def(key.idx)
            };
            let step = ExplainStep {
                dst,
                src: e.src.map(|(k, i)| {
                    if k {
                        ExplainNode::Var(i)
                    } else {
                        ExplainNode::Def(i)
                    }
                }),
                obj: key.obj,
                src_obj: e.src_obj,
                via: vias[e.via as usize].clone(),
            };
            match e.src {
                None => {
                    path.push(step);
                    return true; // addr_of terminal
                }
                Some((kind, idx)) => {
                    path.push(step);
                    if dfs(
                        edges,
                        vias,
                        Key {
                            kind,
                            idx,
                            obj: e.src_obj,
                        },
                        visited,
                        path,
                    ) {
                        return true;
                    }
                    path.pop();
                }
            }
        }
        visited.remove(&key);
        false
    }

    let mut path = Vec::new();
    dfs(
        &edges,
        &vias,
        Key {
            kind: true,
            idx: var,
            obj,
        },
        &mut HashSet::new(),
        &mut path,
    )
    .then_some(path)
}

/// Renders an explanation path as indented text, fact first.
pub fn render_path(path: &[ExplainStep]) -> String {
    let mut out = String::new();
    for (i, step) in path.iter().enumerate() {
        let indent = "  ".repeat(i);
        match &step.src {
            Some(src) if step.obj != step.src_obj => out.push_str(&format!(
                "{indent}obj {} at {} — via {} from {} (as obj {})\n",
                step.obj, step.dst, step.via, src, step.src_obj
            )),
            Some(src) => out.push_str(&format!(
                "{indent}obj {} at {} — via {} from {}\n",
                step.obj, step.dst, step.via, src
            )),
            None => out.push_str(&format!(
                "{indent}obj {} at {} — seeded by addr_of\n",
                step.obj, step.dst
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[allow(clippy::too_many_arguments)] // mirrors the prop field contract
    fn prop(
        rec: &Recorder,
        dst_kind: &'static str,
        dst: u64,
        obj: u64,
        src_kind: &'static str,
        src: u64,
        src_obj: u64,
        via: &'static str,
    ) {
        rec.point(
            None,
            "prop",
            vec![
                ("dst_kind".into(), dst_kind.into()),
                ("dst".into(), FieldValue::U64(dst)),
                ("obj".into(), FieldValue::U64(obj)),
                ("src_kind".into(), src_kind.into()),
                ("src".into(), FieldValue::U64(src)),
                ("src_obj".into(), FieldValue::U64(src_obj)),
                ("via".into(), via.into()),
            ],
        );
    }

    /// p = &o; q = p; store through thread edge; r loads it.
    #[test]
    fn walks_through_defs_and_thread_edges_to_the_seed() {
        let rec = Recorder::with_explain(64);
        prop(&rec, "var", 1, 7, "addr", 7, 7, "addr");
        prop(&rec, "var", 2, 7, "var", 1, 7, "copy");
        prop(&rec, "def", 10, 7, "var", 2, 7, "store");
        prop(&rec, "def", 11, 7, "def", 10, 7, "thread");
        prop(&rec, "var", 3, 7, "def", 11, 7, "load");
        let path = why_points_to(&rec.events(), 3, 7).expect("derivable");
        assert_eq!(path.len(), 5);
        assert_eq!(path[0].dst, ExplainNode::Var(3));
        assert_eq!(path[0].via, "load");
        assert_eq!(path[1].via, "thread");
        assert_eq!(path[2].via, "store");
        assert_eq!(path[3].via, "copy");
        assert_eq!(path[4].via, "addr");
        assert_eq!(path[4].src, None);
        // Adjacent steps chain: each step's src is the next step's dst.
        for w in path.windows(2) {
            assert_eq!(w[0].src, Some(w[1].dst));
            assert_eq!(w[0].src_obj, w[1].obj);
        }
        let text = render_path(&path);
        assert!(text.contains("seeded by addr_of"), "{text}");
    }

    /// Mutual copies (x = y; y = x) must not loop the walker.
    #[test]
    fn cycles_do_not_diverge() {
        let rec = Recorder::with_explain(64);
        prop(&rec, "var", 1, 5, "var", 2, 5, "copy");
        prop(&rec, "var", 2, 5, "var", 1, 5, "copy");
        assert_eq!(why_points_to(&rec.events(), 1, 5), None);
        // Adding the seed behind the cycle makes it derivable again.
        prop(&rec, "var", 2, 5, "addr", 5, 5, "addr");
        let path = why_points_to(&rec.events(), 1, 5).expect("derivable");
        assert_eq!(path.last().unwrap().via, "addr");
    }

    /// A gep changes the member along the chain: the walk follows
    /// `src_obj`, not `obj`.
    #[test]
    fn gep_switches_the_tracked_member() {
        let rec = Recorder::with_explain(64);
        prop(&rec, "var", 1, 20, "addr", 20, 20, "addr");
        prop(&rec, "var", 2, 21, "var", 1, 20, "gep");
        let path = why_points_to(&rec.events(), 2, 21).expect("derivable");
        assert_eq!(path.len(), 2);
        assert_eq!((path[0].obj, path[0].src_obj), (21, 20));
        assert_eq!(path[1].obj, 20);
    }

    #[test]
    fn unknown_facts_have_no_path() {
        let rec = Recorder::with_explain(8);
        prop(&rec, "var", 1, 5, "addr", 5, 5, "addr");
        assert_eq!(why_points_to(&rec.events(), 1, 6), None);
        assert_eq!(why_points_to(&rec.events(), 9, 5), None);
    }
}

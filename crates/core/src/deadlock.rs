//! A deadlock-detection client built on FSAM's results.
//!
//! Deadlock detection is among the clients the paper motivates FSAM with
//! (§1, citing Gadara \[30\]). This module implements the classic
//! *lock-order-graph* check on top of the pipeline's analyses:
//!
//! * the lock analysis supplies, for every context-sensitive acquisition
//!   instance, the set of locks already held (must-held, singleton locks
//!   only — the paper's `l ≡ l'` condition);
//! * an edge `l1 → l2` means some thread acquires `l2` while holding `l1`;
//! * two acquisitions in *opposite order* by two instances that may happen
//!   in parallel (interleaving analysis) are a potential deadlock;
//! * larger cycles in the lock-order graph are reported as warnings
//!   (without the pairwise MHP justification).

use std::collections::HashMap;

use fsam_ir::icfg::NodeKind;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;
use fsam_threads::mhp::MhpOracle;

use crate::pipeline::Fsam;

/// A potential ABBA deadlock: two parallel acquisitions in opposite order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Deadlock {
    /// First lock object.
    pub lock_a: MemId,
    /// Second lock object.
    pub lock_b: MemId,
    /// Acquisition of `lock_b` while holding `lock_a`.
    pub site_ab: StmtId,
    /// Acquisition of `lock_a` while holding `lock_b`.
    pub site_ba: StmtId,
}

impl Deadlock {
    /// Human-readable rendering.
    pub fn render(&self, module: &Module, fsam: &Fsam) -> String {
        let name = |o| fsam.pre.objects().display_name(module, o);
        format!(
            "potential deadlock between `{}` and `{}`: {} (holding {}) || {} (holding {})",
            name(self.lock_a),
            name(self.lock_b),
            module.describe_stmt(self.site_ab),
            name(self.lock_a),
            module.describe_stmt(self.site_ba),
            name(self.lock_b),
        )
    }
}

/// A lock-order cycle of length ≥ 3 — a deadlock pattern no ABBA pair
/// check can see (e.g. `la → lb → lc → la` across three threads).
///
/// `locks[i]` is held while `sites[i]` acquires `locks[(i + 1) % len]`.
/// The cycle is canonical: it starts at its smallest lock and every other
/// lock on it is larger, so each simple cycle is enumerated exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockCycle {
    /// The locks on the cycle, starting from the smallest.
    pub locks: Vec<MemId>,
    /// One acquisition site per edge (`sites[i]` acquires the next lock
    /// while holding `locks[i]`); the smallest such site is chosen.
    pub sites: Vec<StmtId>,
}

impl LockCycle {
    /// Human-readable rendering.
    pub fn render(&self, module: &Module, fsam: &Fsam) -> String {
        let name = |o| fsam.pre.objects().display_name(module, o);
        let ring = self
            .locks
            .iter()
            .chain(self.locks.first())
            .map(|&l| format!("`{}`", name(l)))
            .collect::<Vec<_>>()
            .join(" -> ");
        let sites = self
            .sites
            .iter()
            .map(|&s| module.describe_stmt(s))
            .collect::<Vec<_>>()
            .join("; ");
        format!("potential deadlock cycle {ring}: acquisitions at {sites}")
    }
}

/// The context-sensitive lock-order graph: `(held, acquired)` →
/// acquisition statements, over must-held locksets and singleton lock
/// objects. Empty when the lock analysis did not run.
///
/// This is the shared substrate for the cycle check ([`detect_cycles`]) and
/// the `fsam-lint` deadlock checkers (FL0002's ABBA pair check rides these
/// edges, as does the engine-backed `fsam_query::detect_deadlocks`).
pub fn lock_order_edges(module: &Module, fsam: &Fsam) -> HashMap<(MemId, MemId), Vec<StmtId>> {
    let mut edges: HashMap<(MemId, MemId), Vec<StmtId>> = HashMap::new();
    let Some(lock) = &fsam.lock else {
        return edges;
    };
    let oracle: &dyn MhpOracle = &fsam.mhp;
    for (sid, stmt) in module.stmts() {
        let StmtKind::Lock { lock: lvar } = stmt.kind else {
            continue;
        };
        let Some(acquired) = fsam.pre.must_lock_obj(lvar) else {
            continue;
        };
        let node = fsam.icfg.stmt_node(sid);
        debug_assert!(matches!(fsam.icfg.kind(node), NodeKind::Stmt(_)));
        for (t, c) in oracle.instances(sid) {
            for &held in lock.held_at(&fsam.icfg, t, c, sid) {
                if held != acquired {
                    let entry = edges.entry((held, acquired)).or_default();
                    if !entry.contains(&sid) {
                        entry.push(sid);
                    }
                }
            }
        }
    }
    edges
}

/// Upper bound on reported cycles — the lock-order graphs of real
/// programs are tiny, so hitting this means something degenerate.
const MAX_CYCLES: usize = 64;

/// Detects simple lock-order cycles of length ≥ 3.
///
/// Two-cycles are the ABBA pairs of the `fsam-lint` FL0002 checker (with
/// their per-site MHP justification) and are deliberately excluded here to
/// avoid duplicate reports. Enumeration is canonical — each cycle is rooted at its
/// smallest lock and the DFS only extends through larger locks — and
/// capped at `MAX_CYCLES` (64). Results are sorted by lock sequence.
pub fn detect_cycles(module: &Module, fsam: &Fsam) -> Vec<LockCycle> {
    let edges = lock_order_edges(module, fsam);
    let mut adj: HashMap<MemId, Vec<MemId>> = HashMap::new();
    for &(from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    for succs in adj.values_mut() {
        succs.sort();
        succs.dedup();
    }
    let mut starts: Vec<MemId> = adj.keys().copied().collect();
    starts.sort();

    fn dfs(
        cur: MemId,
        start: MemId,
        adj: &HashMap<MemId, Vec<MemId>>,
        path: &mut Vec<MemId>,
        cycles: &mut Vec<Vec<MemId>>,
    ) {
        if cycles.len() >= MAX_CYCLES {
            return;
        }
        for &next in adj.get(&cur).map_or(&[][..], Vec::as_slice) {
            if next == start {
                if path.len() >= 3 {
                    cycles.push(path.clone());
                }
            } else if next > start && !path.contains(&next) {
                path.push(next);
                dfs(next, start, adj, path, cycles);
                path.pop();
            }
        }
    }

    let mut cycles: Vec<Vec<MemId>> = Vec::new();
    for &start in &starts {
        if cycles.len() >= MAX_CYCLES {
            break;
        }
        let mut path = vec![start];
        dfs(start, start, &adj, &mut path, &mut cycles);
    }

    let mut out: Vec<LockCycle> = cycles
        .into_iter()
        .map(|locks| {
            let sites = (0..locks.len())
                .map(|i| {
                    let edge = (locks[i], locks[(i + 1) % locks.len()]);
                    *edges[&edge].iter().min().expect("edge has a site")
                })
                .collect();
            LockCycle { locks, sites }
        })
        .collect();
    out.sort_by(|a, b| a.locks.cmp(&b.locks));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use fsam_ir::parse::parse_module;

    /// Reference ABBA enumeration for these tests: opposite-order
    /// lock-order edges whose acquisition sites may happen in parallel.
    /// The shipping detectors (`fsam-lint` FL0002,
    /// `fsam_query::detect_deadlocks`) ride the same [`lock_order_edges`]
    /// substrate; spelling the pair walk out here keeps that substrate
    /// covered without them.
    fn abba(module: &Module, fsam: &Fsam) -> Vec<Deadlock> {
        if fsam.lock.is_none() {
            return Vec::new();
        }
        let edges = lock_order_edges(module, fsam);
        let mut out = Vec::new();
        let mut seen: HashSet<(MemId, MemId, StmtId, StmtId)> = HashSet::new();
        for (&(a, b), sites_ab) in &edges {
            if a >= b {
                continue; // each unordered lock pair once
            }
            let Some(sites_ba) = edges.get(&(b, a)) else {
                continue;
            };
            for &s_ab in sites_ab {
                for &s_ba in sites_ba {
                    if fsam.mhp_rel.mhp_stmt(s_ab, s_ba) && seen.insert((a, b, s_ab, s_ba)) {
                        out.push(Deadlock {
                            lock_a: a,
                            lock_b: b,
                            site_ab: s_ab,
                            site_ba: s_ba,
                        });
                    }
                }
            }
        }
        out.sort_by_key(|d| (d.site_ab, d.site_ba));
        out
    }

    fn detect_in(src: &str) -> (Module, Fsam, Vec<Deadlock>) {
        let m = parse_module(src).unwrap();
        let fsam = Fsam::analyze(&m);
        let dl = abba(&m, &fsam);
        (m, fsam, dl)
    }

    #[test]
    fn abba_pattern_is_detected() {
        let (m, fsam, dl) = detect_in(
            r#"
            global la
            global lb
            global data
            func t1body() {
            entry:
              a = &la
              b = &lb
              p = &data
              lock a
              lock b        // holds la, acquires lb
              v = load p
              unlock b
              unlock a
              ret
            }
            func t2body() {
            entry:
              a = &la
              b = &lb
              p = &data
              lock b
              lock a        // holds lb, acquires la: opposite order
              v = load p
              unlock a
              unlock b
              ret
            }
            func main() {
            entry:
              t1 = fork t1body()
              t2 = fork t2body()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert_eq!(dl.len(), 1, "{dl:?}");
        let rendered = dl[0].render(&m, &fsam);
        assert!(
            rendered.contains("la") && rendered.contains("lb"),
            "{rendered}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let (_, _, dl) = detect_in(
            r#"
            global la
            global lb
            func w() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b
              unlock b
              unlock a
              ret
            }
            func main() {
            entry:
              t1 = fork w()
              t2 = fork w()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert!(dl.is_empty(), "consistent lock order: {dl:?}");
    }

    #[test]
    fn sequential_opposite_order_is_clean() {
        // Opposite orders that can never run in parallel don't deadlock.
        let (_, _, dl) = detect_in(
            r#"
            global la
            global lb
            func first() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b
              unlock b
              unlock a
              ret
            }
            func second() {
            entry:
              a = &la
              b = &lb
              lock b
              lock a
              unlock a
              unlock b
              ret
            }
            func main() {
            entry:
              t1 = fork first()
              join t1          // first is dead before second starts
              t2 = fork second()
              join t2
              ret
            }
        "#,
        );
        assert!(dl.is_empty(), "HB-ordered threads cannot deadlock: {dl:?}");
    }

    #[test]
    fn three_lock_cycle_is_detected() {
        // la -> lb -> lc -> la across three threads: invisible to the
        // ABBA pair check, caught by the cycle enumeration.
        let (m, fsam, dl) = detect_in(
            r#"
            global la
            global lb
            global lc
            func w1() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b        // la -> lb
              unlock b
              unlock a
              ret
            }
            func w2() {
            entry:
              b = &lb
              c = &lc
              lock b
              lock c        // lb -> lc
              unlock c
              unlock b
              ret
            }
            func w3() {
            entry:
              c = &lc
              a = &la
              lock c
              lock a        // lc -> la
              unlock a
              unlock c
              ret
            }
            func main() {
            entry:
              t1 = fork w1()
              t2 = fork w2()
              t3 = fork w3()
              join t1
              join t2
              join t3
              ret
            }
        "#,
        );
        assert!(dl.is_empty(), "no 2-cycle here: {dl:?}");
        let cycles = detect_cycles(&m, &fsam);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].locks.len(), 3);
        assert_eq!(cycles[0].sites.len(), 3);
        let rendered = cycles[0].render(&m, &fsam);
        assert!(
            rendered.contains("la") && rendered.contains("lb") && rendered.contains("lc"),
            "{rendered}"
        );
    }

    #[test]
    fn abba_is_not_reported_as_a_cycle() {
        let (m, fsam, dl) = detect_in(
            r#"
            global la
            global lb
            func t1body() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b
              unlock b
              unlock a
              ret
            }
            func t2body() {
            entry:
              a = &la
              b = &lb
              lock b
              lock a
              unlock a
              unlock b
              ret
            }
            func main() {
            entry:
              t1 = fork t1body()
              t2 = fork t2body()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert_eq!(dl.len(), 1, "{dl:?}");
        assert!(
            detect_cycles(&m, &fsam).is_empty(),
            "2-cycles belong to the ABBA check"
        );
    }

    #[test]
    fn no_locks_no_deadlocks() {
        let (_, _, dl) = detect_in(
            r#"
            global g
            func w() {
            entry:
              p = &g
              ret
            }
            func main() {
            entry:
              t = fork w()
              join t
              ret
            }
        "#,
        );
        assert!(dl.is_empty());
    }
}

//! A deadlock-detection client built on FSAM's results.
//!
//! Deadlock detection is among the clients the paper motivates FSAM with
//! (§1, citing Gadara \[30\]). This module implements the classic
//! *lock-order-graph* check on top of the pipeline's analyses:
//!
//! * the lock analysis supplies, for every context-sensitive acquisition
//!   instance, the set of locks already held (must-held, singleton locks
//!   only — the paper's `l ≡ l'` condition);
//! * an edge `l1 → l2` means some thread acquires `l2` while holding `l1`;
//! * two acquisitions in *opposite order* by two instances that may happen
//!   in parallel (interleaving analysis) are a potential deadlock;
//! * larger cycles in the lock-order graph are reported as warnings
//!   (without the pairwise MHP justification).

use std::collections::{HashMap, HashSet};

use fsam_ir::icfg::NodeKind;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;
use fsam_threads::mhp::MhpOracle;

use crate::pipeline::Fsam;

/// A potential ABBA deadlock: two parallel acquisitions in opposite order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Deadlock {
    /// First lock object.
    pub lock_a: MemId,
    /// Second lock object.
    pub lock_b: MemId,
    /// Acquisition of `lock_b` while holding `lock_a`.
    pub site_ab: StmtId,
    /// Acquisition of `lock_a` while holding `lock_b`.
    pub site_ba: StmtId,
}

impl Deadlock {
    /// Human-readable rendering.
    pub fn render(&self, module: &Module, fsam: &Fsam) -> String {
        let name = |o| fsam.pre.objects().display_name(module, o);
        format!(
            "potential deadlock between `{}` and `{}`: {} (holding {}) || {} (holding {})",
            name(self.lock_a),
            name(self.lock_b),
            module.describe_stmt(self.site_ab),
            name(self.lock_a),
            module.describe_stmt(self.site_ba),
            name(self.lock_b),
        )
    }
}

/// Detects potential ABBA deadlocks.
///
/// Requires the full configuration (the lock analysis must have run);
/// returns an empty list otherwise.
pub fn detect(module: &Module, fsam: &Fsam) -> Vec<Deadlock> {
    let Some(lock) = &fsam.lock else {
        return Vec::new();
    };
    let oracle: &dyn MhpOracle = &fsam.mhp;

    // Lock-order edges: (held, acquired) -> acquisition statements.
    let mut edges: HashMap<(MemId, MemId), Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        let StmtKind::Lock { lock: lvar } = stmt.kind else {
            continue;
        };
        let Some(acquired) = fsam.pre.must_lock_obj(lvar) else {
            continue;
        };
        let node = fsam.icfg.stmt_node(sid);
        debug_assert!(matches!(fsam.icfg.kind(node), NodeKind::Stmt(_)));
        for (t, c) in oracle.instances(sid) {
            for &held in lock.held_at(&fsam.icfg, t, c, sid) {
                if held != acquired {
                    let entry = edges.entry((held, acquired)).or_default();
                    if !entry.contains(&sid) {
                        entry.push(sid);
                    }
                }
            }
        }
    }

    // ABBA: opposite-order edges with MHP acquisitions.
    let mut out = Vec::new();
    let mut seen: HashSet<(MemId, MemId, StmtId, StmtId)> = HashSet::new();
    for (&(a, b), sites_ab) in &edges {
        if a >= b {
            continue; // each unordered lock pair once
        }
        let Some(sites_ba) = edges.get(&(b, a)) else {
            continue;
        };
        for &s_ab in sites_ab {
            for &s_ba in sites_ba {
                if oracle.mhp_stmt(s_ab, s_ba) && seen.insert((a, b, s_ab, s_ba)) {
                    out.push(Deadlock {
                        lock_a: a,
                        lock_b: b,
                        site_ab: s_ab,
                        site_ba: s_ba,
                    });
                }
            }
        }
    }
    out.sort_by_key(|d| (d.site_ab, d.site_ba));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    fn detect_in(src: &str) -> (Module, Fsam, Vec<Deadlock>) {
        let m = parse_module(src).unwrap();
        let fsam = Fsam::analyze(&m);
        let dl = detect(&m, &fsam);
        (m, fsam, dl)
    }

    #[test]
    fn abba_pattern_is_detected() {
        let (m, fsam, dl) = detect_in(
            r#"
            global la
            global lb
            global data
            func t1body() {
            entry:
              a = &la
              b = &lb
              p = &data
              lock a
              lock b        // holds la, acquires lb
              v = load p
              unlock b
              unlock a
              ret
            }
            func t2body() {
            entry:
              a = &la
              b = &lb
              p = &data
              lock b
              lock a        // holds lb, acquires la: opposite order
              v = load p
              unlock a
              unlock b
              ret
            }
            func main() {
            entry:
              t1 = fork t1body()
              t2 = fork t2body()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert_eq!(dl.len(), 1, "{dl:?}");
        let rendered = dl[0].render(&m, &fsam);
        assert!(
            rendered.contains("la") && rendered.contains("lb"),
            "{rendered}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let (_, _, dl) = detect_in(
            r#"
            global la
            global lb
            func w() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b
              unlock b
              unlock a
              ret
            }
            func main() {
            entry:
              t1 = fork w()
              t2 = fork w()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert!(dl.is_empty(), "consistent lock order: {dl:?}");
    }

    #[test]
    fn sequential_opposite_order_is_clean() {
        // Opposite orders that can never run in parallel don't deadlock.
        let (_, _, dl) = detect_in(
            r#"
            global la
            global lb
            func first() {
            entry:
              a = &la
              b = &lb
              lock a
              lock b
              unlock b
              unlock a
              ret
            }
            func second() {
            entry:
              a = &la
              b = &lb
              lock b
              lock a
              unlock a
              unlock b
              ret
            }
            func main() {
            entry:
              t1 = fork first()
              join t1          // first is dead before second starts
              t2 = fork second()
              join t2
              ret
            }
        "#,
        );
        assert!(dl.is_empty(), "HB-ordered threads cannot deadlock: {dl:?}");
    }

    #[test]
    fn no_locks_no_deadlocks() {
        let (_, _, dl) = detect_in(
            r#"
            global g
            func w() {
            entry:
              p = &g
              ret
            }
            func main() {
            entry:
              t = fork w()
              join t
              ret
            }
        "#,
        );
        assert!(dl.is_empty());
    }
}

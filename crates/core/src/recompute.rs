//! The recompute-and-replace sparse solver — the equivalence oracle.
//!
//! This is the straightforward reading of Figure 10 that the delta solver
//! ([`crate::solver`]) optimizes: every visit re-evaluates a definition
//! from its **complete** inputs and replaces the old set — each top-level
//! variable from its full source list (its unique SSA definition, or all
//! argument/return bindings), each object definition from its reaching
//! definitions. Strong updates make the transfer functions non-monotone in
//! the points-to state (a store's output *shrinks* when its pointer's
//! points-to set becomes a known singleton), and recompute-and-replace
//! handles that without any bookkeeping, which is exactly what makes it a
//! trustworthy oracle: the driver-equivalence suite asserts that the delta
//! solver's final points-to state matches this solver's on every suite
//! program.
//!
//! The `pt(p)` inputs that drive the strong/weak decision only flip a
//! bounded number of times (∅ → singleton → larger), after which
//! everything is monotone, so the fixpoint exists and the worklist
//! terminates.
//!
//! The worklist uses the **same topological priority schedule** as the
//! delta solver ([`Svfg::solve_order`]). Strong updates make the system
//! non-monotone, so the fixpoint a solver converges to depends on the
//! order in which the bounded `∅ → singleton → multi` races resolve
//! relative to downstream propagation: a transiently-leaked member can be
//! locked into a def-use cycle that replacement can never drain. Sharing
//! the schedule pins both solvers to the same resolution of those races,
//! so a divergence in the equivalence suite indicates a genuine
//! difference-propagation bug rather than a benign order effect — and the
//! priority order settles store pointers before downstream propagation
//! wherever the graph is acyclic, which is the *smaller* of the fixpoints.

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::stmt::{StmtKind, Terminator};
use fsam_ir::{Module, StmtId, VarId};
use fsam_mssa::{NodeId as VfNodeId, NodeKind as VfNodeKind, Svfg};
use fsam_pts::{MemId, PtsSet};

use crate::queue::IndexedPriorityQueue;
use crate::solver::{SolverStats, SparseResult};

/// Runs the recompute-and-replace solver over the (thread-aware) SVFG.
pub fn solve_recompute(module: &Module, pre: &PreAnalysis, svfg: &Svfg) -> SparseResult {
    Solver::new(module, pre, svfg).run()
}

/// Runs the oracle with tracing: a `solve` span carrying the same
/// `solve.*` counter schema as the delta solver, so the two traces diff
/// directly (the oracle's delta counter is zero by construction).
pub fn solve_recompute_traced(
    module: &Module,
    pre: &PreAnalysis,
    svfg: &Svfg,
    rec: &fsam_trace::Recorder,
    parent: Option<fsam_trace::SpanId>,
) -> SparseResult {
    if !rec.is_enabled() {
        return solve_recompute(module, pre, svfg);
    }
    let span = rec.span_under(parent, "solve");
    let result = solve_recompute(module, pre, svfg);
    crate::solver::export_solver_counters(&span, &result.stats);
    result
}

/// Where a top-level variable's values come from.
#[derive(Copy, Clone, Debug)]
enum VarSource {
    /// `v = &obj` (also the fork handle).
    Obj(MemId),
    /// `v ⊇ src` (copy, phi arm, argument or return binding).
    Var(VarId),
    /// `v = *ptr` at the given load.
    LoadAt(StmtId, VarId),
    /// `v = gep base, field`.
    Gep(VarId, u32),
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Item {
    Stmt(StmtId),
    /// A store whose incoming definition of one object changed.
    StoreObj(StmtId, MemId),
    MemNode(VfNodeId),
    Var(VarId),
}

struct Solver<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    svfg: &'a Svfg,
    pt_vars: Vec<PtsSet>,
    pt_defs: HashMap<(VfNodeId, MemId), PtsSet>,
    var_sources: Vec<Vec<VarSource>>,
    /// Items to reprocess when a variable changes (syntactic uses plus
    /// synthetic uses: call sites consuming a return variable).
    var_dependents: Vec<Vec<Item>>,
    /// Reaching-definition predecessors indexed by (node, object): avoids
    /// rescanning a node's full predecessor list per object.
    preds_by_obj: HashMap<(VfNodeId, MemId), Vec<VfNodeId>>,
    /// Dense id for each `StoreObj` item, in the tail of the item space.
    store_obj_ids: HashMap<(StmtId, MemId), u32>,
    /// Reverse map: dense tail index back to the `(store, object)` pair.
    store_obj_items: Vec<(StmtId, MemId)>,
    /// Item-space layout: stmts `[0, S)`, vars `[S, S+V)`, SVFG nodes
    /// `[S+V, S+V+N)`, store/object pairs after that.
    s_count: usize,
    v_count: usize,
    n_count: usize,
    queue: IndexedPriorityQueue,
    stats: SolverStats,
}

impl<'a> Solver<'a> {
    fn new(module: &'a Module, pre: &'a PreAnalysis, svfg: &'a Svfg) -> Self {
        let mut preds_by_obj: HashMap<(VfNodeId, MemId), Vec<VfNodeId>> = HashMap::new();
        for n in svfg.node_ids() {
            for &(pred, o) in svfg.preds(n) {
                preds_by_obj.entry((n, o)).or_default().push(pred);
            }
        }

        let s_count = module.stmt_count();
        let v_count = module.var_count();
        let n_count = svfg.node_count();

        // Enumerate the `StoreObj` item space: each store, paired with every
        // object it may define (its chi set plus any incoming edge label).
        let mut store_obj_ids: HashMap<(StmtId, MemId), u32> = HashMap::new();
        let mut store_obj_items: Vec<(StmtId, MemId)> = Vec::new();
        for n in svfg.node_ids() {
            let VfNodeKind::Stmt(sid) = svfg.kind(n) else {
                continue;
            };
            if sid.index() >= s_count || !matches!(module.stmt(sid).kind, StmtKind::Store { .. }) {
                continue;
            }
            let mut objs: Vec<MemId> = svfg.annotations().chi(sid).iter().collect();
            objs.extend(svfg.preds(n).iter().map(|&(_, o)| o));
            objs.sort_unstable();
            objs.dedup();
            for o in objs {
                store_obj_ids.insert((sid, o), store_obj_items.len() as u32);
                store_obj_items.push((sid, o));
            }
        }

        let order = svfg.solve_order(module, pre.call_graph());
        let mut var_prio = vec![u32::MAX; v_count];
        for v in module.var_ids() {
            if let Some(d) = svfg.var_def(v) {
                var_prio[v.index()] = order.stmt_prio[d.index()];
            }
        }

        let mut solver = Solver {
            module,
            pre,
            svfg,
            pt_vars: vec![PtsSet::new(); v_count],
            pt_defs: HashMap::new(),
            var_sources: vec![Vec::new(); v_count],
            var_dependents: vec![Vec::new(); v_count],
            preds_by_obj,
            store_obj_ids,
            store_obj_items,
            s_count,
            v_count,
            n_count,
            queue: IndexedPriorityQueue::new(Vec::new()),
            stats: SolverStats::default(),
        };
        solver.build_sources(&order.stmt_prio, &mut var_prio);

        let mut prio = order.stmt_prio.clone();
        prio.extend_from_slice(&var_prio);
        prio.extend_from_slice(&order.node_prio);
        for &(sid, _) in &solver.store_obj_items {
            prio.push(order.stmt_prio[sid.index()]);
        }
        for p in prio.iter_mut() {
            if *p == u32::MAX {
                *p = 0;
            }
        }
        solver.queue = IndexedPriorityQueue::new(prio);
        solver
    }

    /// Collects the complete source list per variable and the dependency
    /// edges that drive recomputation. Binding a parameter at a call site
    /// also lowers the parameter's priority to the site's (parameters have
    /// no def site) — the same rule the delta solver applies, so both
    /// worklists share one schedule.
    fn build_sources(&mut self, stmt_prio: &[u32], var_prio: &mut [u32]) {
        let module = self.module;
        // Syntactic uses: a statement re-evaluates when an operand changes.
        for (sid, stmt) in module.stmts() {
            for u in stmt.uses() {
                self.var_dependents[u.index()].push(Item::Stmt(sid));
            }
        }
        let cg = self.pre.call_graph();
        // Per-function return variables.
        let returns: Vec<Vec<VarId>> = module
            .funcs()
            .map(|f| {
                f.blocks()
                    .filter_map(|(_, b)| match b.term {
                        Terminator::Ret(Some(v)) => Some(v),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for (sid, stmt) in module.stmts() {
            match &stmt.kind {
                StmtKind::Addr { dst, obj } => {
                    let m = self.pre.objects().base(*obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                }
                StmtKind::Copy { dst, src } => {
                    self.var_sources[dst.index()].push(VarSource::Var(*src));
                }
                StmtKind::Phi { dst, arms } => {
                    for arm in arms {
                        self.var_sources[dst.index()].push(VarSource::Var(arm.var));
                    }
                }
                StmtKind::Load { dst, ptr } => {
                    self.var_sources[dst.index()].push(VarSource::LoadAt(sid, *ptr));
                }
                StmtKind::Gep { dst, base, field } => {
                    self.var_sources[dst.index()].push(VarSource::Gep(*base, *field));
                }
                StmtKind::Call { args, dst, .. } => {
                    for callee in cg.targets(sid) {
                        let params = &module.func(callee).params;
                        for (&a, &p) in args.iter().zip(params.iter()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_dependents[a.index()].push(Item::Var(p));
                            var_prio[p.index()] = var_prio[p.index()].min(stmt_prio[sid.index()]);
                        }
                        if let Some(d) = dst {
                            if !module.func(callee).is_external {
                                for &r in &returns[callee.index()] {
                                    self.var_sources[d.index()].push(VarSource::Var(r));
                                    self.var_dependents[r.index()].push(Item::Var(*d));
                                }
                            }
                        }
                    }
                }
                StmtKind::Fork {
                    dst,
                    arg,
                    handle_obj,
                    ..
                } => {
                    let m = self.pre.objects().base(*handle_obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                    for callee in cg.targets(sid) {
                        let params = &module.func(callee).params;
                        if let (Some(&a), Some(&p)) = (arg.as_ref(), params.first()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_dependents[a.index()].push(Item::Var(p));
                            var_prio[p.index()] = var_prio[p.index()].min(stmt_prio[sid.index()]);
                        }
                    }
                }
                // Sync intrinsics don't touch pointer memory; atomic dsts
                // have empty points-to by IR contract (DESIGN §1.9).
                StmtKind::Store { .. }
                | StmtKind::Join { .. }
                | StmtKind::Lock { .. }
                | StmtKind::Unlock { .. }
                | StmtKind::Signal { .. }
                | StmtKind::Wait { .. }
                | StmtKind::Broadcast { .. }
                | StmtKind::BarrierInit { .. }
                | StmtKind::BarrierWait { .. }
                | StmtKind::AtomicLoad { .. }
                | StmtKind::AtomicStore { .. }
                | StmtKind::AtomicRmw { .. } => {}
            }
        }
    }

    fn push(&mut self, item: Item) {
        let id = match item {
            Item::Stmt(s) => s.index(),
            Item::Var(v) => self.s_count + v.index(),
            Item::MemNode(n) => self.s_count + self.v_count + n.index(),
            Item::StoreObj(s, o) => {
                let k = self.store_obj_ids[&(s, o)] as usize;
                self.s_count + self.v_count + self.n_count + k
            }
        };
        self.queue.push(id);
    }

    fn item_of(&self, id: usize) -> Item {
        if id < self.s_count {
            Item::Stmt(StmtId::new(id as u32))
        } else if id < self.s_count + self.v_count {
            Item::Var(VarId::new((id - self.s_count) as u32))
        } else if id < self.s_count + self.v_count + self.n_count {
            Item::MemNode(VfNodeId::from_index(id - self.s_count - self.v_count))
        } else {
            let (s, o) = self.store_obj_items[id - self.s_count - self.v_count - self.n_count];
            Item::StoreObj(s, o)
        }
    }

    /// Merge of the reaching definitions of `o` at node `n`.
    fn pt_in(&self, n: VfNodeId, o: MemId) -> PtsSet {
        let mut set = PtsSet::new();
        if let Some(preds) = self.preds_by_obj.get(&(n, o)) {
            for &pred in preds {
                if let Some(p) = self.pt_defs.get(&(pred, o)) {
                    set.union_in_place(p);
                }
            }
        }
        set
    }

    /// Evaluates `v` from its full source list.
    fn eval_var(&self, v: VarId) -> PtsSet {
        let mut new = PtsSet::new();
        for source in &self.var_sources[v.index()] {
            match *source {
                VarSource::Obj(m) => {
                    new.insert(m);
                }
                VarSource::Var(src) => {
                    new.union_in_place(&self.pt_vars[src.index()]);
                }
                VarSource::LoadAt(sid, ptr) => {
                    if let Some(node) = self.svfg.stmt_node(sid) {
                        for o in self.pt_vars[ptr.index()].iter() {
                            self.union_pt_in(node, o, &mut new);
                        }
                    }
                }
                VarSource::Gep(base, field) => {
                    for o in self.pt_vars[base.index()].iter() {
                        new.insert(self.pre.objects().field_existing(o, field));
                    }
                }
            }
        }
        new
    }

    /// Unions the reaching definitions of `o` at node `n` into `acc`.
    fn union_pt_in(&self, n: VfNodeId, o: MemId, acc: &mut PtsSet) {
        if let Some(preds) = self.preds_by_obj.get(&(n, o)) {
            for &pred in preds {
                if let Some(p) = self.pt_defs.get(&(pred, o)) {
                    acc.union_in_place(p);
                }
            }
        }
    }

    /// Re-evaluates `v` from its full source list and replaces its set.
    fn recompute_var(&mut self, v: VarId) {
        let new = self.eval_var(v);
        if new != self.pt_vars[v.index()] {
            self.pt_vars[v.index()] = new;
            for i in 0..self.var_dependents[v.index()].len() {
                let dep = self.var_dependents[v.index()][i];
                self.push(dep);
            }
        }
    }

    /// Replaces `pt(n, o)`; on change, pushes the `o`-successors.
    fn set_def(&mut self, n: VfNodeId, o: MemId, new: PtsSet) {
        let changed = match self.pt_defs.get(&(n, o)) {
            Some(old) => *old != new,
            None => !new.is_empty(),
        };
        if !changed {
            return;
        }
        self.pt_defs.insert((n, o), new);
        let svfg = self.svfg;
        let module = self.module;
        for &(s, label) in svfg.succs(n) {
            if label != o {
                continue;
            }
            match svfg.kind(s) {
                VfNodeKind::Stmt(stmt) => {
                    if matches!(module.stmt(stmt).kind, StmtKind::Store { .. }) {
                        self.push(Item::StoreObj(stmt, o));
                    } else {
                        self.push(Item::Stmt(stmt));
                    }
                }
                _ => self.push(Item::MemNode(s)),
            }
        }
    }

    fn process_stmt(&mut self, sid: StmtId) {
        let module = self.module;
        let svfg = self.svfg;
        let stmt = module.stmt(sid);
        match &stmt.kind {
            // [P-STORE] + [P-SU/WU].
            StmtKind::Store { .. } => {
                for o in svfg.annotations().chi(sid).iter() {
                    self.process_store_obj(sid, o);
                }
            }
            // [P-LOAD], [P-ADDR], [P-COPY], [P-PHI], gep and call/fork
            // bindings: all funnel through the defined variables' sources.
            StmtKind::Call { dst, .. } => {
                let cg = self.pre.call_graph();
                for callee in cg.targets(sid) {
                    for i in 0..module.func(callee).params.len() {
                        self.recompute_var(module.func(callee).params[i]);
                    }
                }
                if let Some(d) = dst {
                    self.recompute_var(*d);
                }
            }
            StmtKind::Fork { dst, .. } => {
                let cg = self.pre.call_graph();
                for callee in cg.targets(sid) {
                    for i in 0..module.func(callee).params.len() {
                        self.recompute_var(module.func(callee).params[i]);
                    }
                }
                self.recompute_var(*dst);
            }
            _ => {
                if let Some(d) = stmt.def() {
                    self.recompute_var(d);
                }
            }
        }
    }

    /// Re-evaluates one object's outgoing definition at a store
    /// ([P-STORE] + [P-SU/WU] for a single `o`).
    fn process_store_obj(&mut self, sid: StmtId, o: MemId) {
        let StmtKind::Store { ptr, val } = self.module.stmt(sid).kind else {
            return;
        };
        let Some(node) = self.svfg.stmt_node(sid) else {
            return;
        };
        let ptr_pts = &self.pt_vars[ptr.index()];
        let written = ptr_pts.contains(o);
        let strong = ptr_pts
            .as_singleton()
            .is_some_and(|s| self.pre.objects().is_singleton(s));
        let out = if written && strong {
            // kill(s, p) = {o}: the old contents die.
            self.stats.strong_updates += 1;
            self.pt_vars[val.index()].clone()
        } else {
            let mut out = self.pt_in(node, o);
            if written {
                self.stats.weak_updates += 1;
                out.union_in_place(&self.pt_vars[val.index()]);
            }
            out
        };
        self.set_def(node, o, out);
    }

    /// Intermediate SVFG nodes replace their value with the merge of their
    /// reaching definitions.
    fn process_mem_node(&mut self, n: VfNodeId) {
        let obj = match self.svfg.kind(n) {
            VfNodeKind::MemPhi { obj, .. }
            | VfNodeKind::FormalIn { obj, .. }
            | VfNodeKind::FormalOut { obj, .. }
            | VfNodeKind::ActualOut { obj, .. }
            | VfNodeKind::ThreadJunction { obj } => obj,
            VfNodeKind::Stmt(_) => return,
        };
        let incoming = self.pt_in(n, obj);
        self.set_def(n, obj, incoming);
    }

    fn run(mut self) -> SparseResult {
        for sid in self.module.stmt_ids() {
            self.push(Item::Stmt(sid));
        }
        // Termination backstop: the recompute semantics converge after the
        // bounded strong/weak flips, but the bound is generous; a blow-out
        // indicates an implementation bug and should fail loudly rather
        // than spin forever.
        let limit =
            50_000usize.saturating_mul(self.module.stmt_count() + self.svfg.node_count() + 64);
        while let Some(id) = self.queue.pop() {
            let item = self.item_of(id);
            self.stats.processed += 1;
            assert!(
                self.stats.processed <= limit,
                "recompute solver failed to converge after {limit} items"
            );
            match item {
                Item::Stmt(s) => self.process_stmt(s),
                Item::StoreObj(s, o) => self.process_store_obj(s, o),
                Item::MemNode(n) => self.process_mem_node(n),
                Item::Var(v) => self.recompute_var(v),
            }
        }
        self.stats.recompute_items = self.stats.processed;
        self.stats.var_pts_entries = self.pt_vars.iter().map(PtsSet::len).sum();
        self.stats.def_pts_entries = self.pt_defs.values().map(PtsSet::len).sum();
        SparseResult::from_state(
            self.pt_vars,
            self.pt_defs,
            self.svfg.node_count(),
            self.stats,
        )
    }
}

//! The FSAM pipeline — paper Figure 2 — as a staged, cacheable [`Pipeline`].
//!
//! `pre-analysis → thread model → thread-oblivious SVFG → interleaving →
//! value-flow → lock → sparse flow-sensitive resolution`, with per-phase
//! wall-clock times, memory accounting, and the phase toggles used by the
//! Figure 12 ablation (*No-Interleaving*, *No-Value-Flow*, *No-Lock*).
//!
//! The pipeline materializes each phase as an explicit, typed stage cached
//! behind a `OnceLock`: drivers that run several configurations on one
//! module (the Figure 12 ablation sweep, the NonSparse comparison of
//! Table 2) build Andersen, the ICFG/thread model, the context table and
//! the thread-oblivious SVFG exactly once and share them across runs.
//! Independent stages are scheduled in parallel — the interleaving and lock
//! analyses, which only read the frozen [`ContextTable`], run concurrently
//! under `std::thread::scope`, and [`Pipeline::run_many`] solves whole
//! configurations on separate threads. [`Fsam::analyze`] and
//! [`Fsam::analyze_with`] remain the one-shot entry points, now thin
//! wrappers over a single-use pipeline.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use fsam_andersen::PreAnalysis;
use fsam_ir::context::ContextTable;
use fsam_ir::icfg::Icfg;
use fsam_ir::{Module, VarId};
use fsam_mssa::Svfg;
use fsam_pts::MemoryMeter;
use fsam_threads::flow::precompute_contexts;
use fsam_threads::hb::HbFacts;
use fsam_threads::interleave::Interleaving;
use fsam_threads::lock::LockAnalysis;
use fsam_threads::mhp::MhpBackend;
use fsam_threads::relation::MhpRelation;
use fsam_threads::valueflow::{self, ValueFlowPlan, ValueFlowStats};
use fsam_threads::{ProcMhp, ThreadModel};
use fsam_trace::{FieldValue, Recorder};

use crate::nonsparse::{self, NonSparseOutcome};
use crate::par;
use crate::solver::{self, SparseResult};

/// Which thread-interference phases run (the Figure 12 ablation knobs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhaseConfig {
    /// §3.3.1 interleaving analysis; when off, the PCG-style procedure-level
    /// MHP is used instead (*No-Interleaving*).
    pub interleaving: bool,
    /// §3.3.2 value-flow analysis; when off, the aliasing condition of
    /// `[THREAD-VF]` is disregarded (*No-Value-Flow*).
    pub value_flow: bool,
    /// §3.3.3 lock analysis; when off, no non-interference filtering
    /// (*No-Lock*).
    pub lock: bool,
    /// Vector-clock happens-before analysis (DESIGN §1.9); when off, the
    /// run carries an empty [`HbFacts`] and no MHP refinement or lint
    /// `killed_hb` filtering happens (*No-HB*, the `--no-hb` knob).
    pub hb: bool,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            interleaving: true,
            value_flow: true,
            lock: true,
            hb: true,
        }
    }
}

impl PhaseConfig {
    /// All phases on (the full FSAM configuration).
    pub fn full() -> Self {
        Self::default()
    }

    /// The *No-Interleaving* ablation.
    pub fn no_interleaving() -> Self {
        PhaseConfig {
            interleaving: false,
            ..Self::default()
        }
    }

    /// The *No-Value-Flow* ablation.
    pub fn no_value_flow() -> Self {
        PhaseConfig {
            value_flow: false,
            ..Self::default()
        }
    }

    /// The *No-Lock* ablation.
    pub fn no_lock() -> Self {
        PhaseConfig {
            lock: false,
            ..Self::default()
        }
    }

    /// The *No-HB* ablation: happens-before ordering is not computed, so
    /// condvar/barrier/atomic synchronization kills nothing downstream.
    pub fn no_hb() -> Self {
        PhaseConfig {
            hb: false,
            ..Self::default()
        }
    }
}

/// Wall-clock time of each pipeline phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Andersen pre-analysis.
    pub pre_analysis: Duration,
    /// ICFG + thread model construction.
    pub thread_model: Duration,
    /// Thread-oblivious SVFG (memory SSA).
    pub svfg: Duration,
    /// Interleaving (or PCG) analysis.
    pub interleaving: Duration,
    /// Happens-before (vector clock) analysis.
    pub hb: Duration,
    /// Lock analysis.
    pub lock: Duration,
    /// Value-flow analysis + edge insertion.
    pub value_flow: Duration,
    /// Sparse flow-sensitive resolution.
    pub sparse_solve: Duration,
}

impl PhaseTimes {
    /// Total analysis time.
    pub fn total(&self) -> Duration {
        self.pre_analysis
            + self.thread_model
            + self.svfg
            + self.interleaving
            + self.hb
            + self.lock
            + self.value_flow
            + self.sparse_solve
    }
}

/// How many times each shared stage was actually built (cache misses), and
/// whether the parallel interference path ran.
///
/// A driver that runs all four Figure 12 configurations through one
/// [`Pipeline`] sees every counter at 1: the ablations differ only in the
/// per-run phases (value-flow, edge insertion, sparse solve).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageBuildCounts {
    /// Andersen pre-analysis builds.
    pub pre_analysis: usize,
    /// ICFG + thread model builds.
    pub icfg: usize,
    /// Context-table precompute passes.
    pub contexts: usize,
    /// Thread-oblivious SVFG builds.
    pub svfg: usize,
    /// Interleaving analysis builds.
    pub interleaving: usize,
    /// PCG fallback builds.
    pub pcg: usize,
    /// Happens-before analysis builds.
    pub hb: usize,
    /// Lock analysis builds.
    pub lock: usize,
    /// Whether the interleaving and lock analyses were scheduled
    /// concurrently in one `thread::scope` (the full configuration's
    /// parallel path).
    pub parallel_interference: bool,
}

/// A cached stage: the artifact plus the wall-clock time of its one build.
/// Cache hits report the original duration, so [`PhaseTimes`] stays
/// comparable between a fresh run and a stage-sharing run.
type Stage<T> = (Arc<T>, Duration);

#[derive(Default)]
struct StageCounters {
    pre: AtomicUsize,
    icfg: AtomicUsize,
    ctxs: AtomicUsize,
    svfg: AtomicUsize,
    interleaving: AtomicUsize,
    pcg: AtomicUsize,
    hb: AtomicUsize,
    lock: AtomicUsize,
    parallel_interference: AtomicBool,
}

/// The staged FSAM driver: each phase of Figure 2 is an explicitly-typed
/// artifact, built on first demand and cached for every later run.
///
/// ```
/// use fsam::{PhaseConfig, Pipeline};
/// use fsam_ir::parse::parse_module;
///
/// let m = parse_module("func main() {\nentry:\n  ret\n}").unwrap();
/// let pipeline = Pipeline::for_module(&m);
/// // All four Figure 12 configurations share one Andersen run, one ICFG,
/// // one context table and one thread-oblivious SVFG.
/// let full = pipeline.run(PhaseConfig::full());
/// let ablated = pipeline.run(PhaseConfig::no_lock());
/// assert_eq!(pipeline.build_counts().pre_analysis, 1);
/// # let _ = (full, ablated);
/// ```
pub struct Pipeline<'m> {
    module: &'m Module,
    pre: OnceLock<Stage<PreAnalysis>>,
    cfg: OnceLock<(Arc<Icfg>, Arc<ThreadModel>, Duration)>,
    ctxs: OnceLock<Stage<ContextTable>>,
    svfg: OnceLock<Stage<Svfg>>,
    interleaving: OnceLock<Stage<Interleaving>>,
    pcg: OnceLock<Stage<ProcMhp>>,
    /// Factored MHP relations, one per backend kind (an ablation sweep uses
    /// both). Built once from the backend's exported facts and shared by
    /// every run and client.
    rel_inter: OnceLock<Arc<MhpRelation>>,
    rel_pcg: OnceLock<Arc<MhpRelation>>,
    hb: OnceLock<Stage<HbFacts>>,
    lock: OnceLock<Stage<LockAnalysis>>,
    counts: StageCounters,
    trace: Arc<Recorder>,
    /// Worker-pool width for the value-flow and sparse-solve phases.
    /// Defaults to [`par::thread_count`] (the `FSAM_THREADS` override, or
    /// the machine's available parallelism); `1` selects the exact
    /// sequential code path.
    threads: usize,
}

impl<'m> Pipeline<'m> {
    /// Creates an empty pipeline for `module`; nothing is computed yet.
    pub fn for_module(module: &'m Module) -> Pipeline<'m> {
        Pipeline {
            module,
            pre: OnceLock::new(),
            cfg: OnceLock::new(),
            ctxs: OnceLock::new(),
            svfg: OnceLock::new(),
            interleaving: OnceLock::new(),
            pcg: OnceLock::new(),
            rel_inter: OnceLock::new(),
            rel_pcg: OnceLock::new(),
            hb: OnceLock::new(),
            lock: OnceLock::new(),
            counts: StageCounters::default(),
            trace: Arc::new(Recorder::disabled()),
            threads: par::thread_count(),
        }
    }

    /// Sets the worker-pool width for the value-flow and sparse-solve
    /// phases. `1` (the floor — zero is clamped) runs the exact sequential
    /// code path; any larger value runs the level-synchronous parallel
    /// schedule, whose fixpoint is bit-identical to the sequential one.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The worker-pool width this pipeline will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a trace recorder: every stage build, pipeline run, and the
    /// sparse/NonSparse solves emit spans and counters into it. The
    /// recorder is shared (`Arc`) so [`Pipeline::run_many`]'s configuration
    /// threads all feed one stream; a disabled recorder (the default) costs
    /// one relaxed atomic load per instrumentation site.
    pub fn with_trace(mut self, trace: Arc<Recorder>) -> Self {
        self.trace = trace;
        self
    }

    /// The recorder this pipeline emits into (disabled unless
    /// [`Pipeline::with_trace`] installed one).
    pub fn trace(&self) -> &Arc<Recorder> {
        &self.trace
    }

    /// The module this pipeline analyzes.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// How many times each shared stage has been built so far.
    pub fn build_counts(&self) -> StageBuildCounts {
        StageBuildCounts {
            pre_analysis: self.counts.pre.load(Ordering::Relaxed),
            icfg: self.counts.icfg.load(Ordering::Relaxed),
            contexts: self.counts.ctxs.load(Ordering::Relaxed),
            svfg: self.counts.svfg.load(Ordering::Relaxed),
            interleaving: self.counts.interleaving.load(Ordering::Relaxed),
            pcg: self.counts.pcg.load(Ordering::Relaxed),
            hb: self.counts.hb.load(Ordering::Relaxed),
            lock: self.counts.lock.load(Ordering::Relaxed),
            parallel_interference: self.counts.parallel_interference.load(Ordering::Relaxed),
        }
    }

    // ---- shared stages (built once, cached) -------------------------------

    fn pre_stage(&self) -> &Stage<PreAnalysis> {
        self.pre.get_or_init(|| {
            self.counts.pre.fetch_add(1, Ordering::Relaxed);
            let span = self.trace.span("stage.pre_analysis");
            let t0 = Instant::now();
            let pre = PreAnalysis::run(self.module);
            span.counter("andersen.rounds", pre.stats.rounds as u64);
            span.counter("andersen.pts_entries", pre.stats.pts_entries as u64);
            (Arc::new(pre), t0.elapsed())
        })
    }

    fn cfg_stage(&self) -> &(Arc<Icfg>, Arc<ThreadModel>, Duration) {
        self.cfg.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            self.counts.icfg.fetch_add(1, Ordering::Relaxed);
            let span = self.trace.span("stage.icfg");
            let t0 = Instant::now();
            let icfg = Icfg::build(self.module, pre.call_graph());
            let tm = ThreadModel::build(self.module, pre, &icfg);
            span.counter("threads.abstract", tm.len() as u64);
            (Arc::new(icfg), Arc::new(tm), t0.elapsed())
        })
    }

    fn ctxs_stage(&self) -> &Stage<ContextTable> {
        self.ctxs.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            let (icfg, tm, _) = self.cfg_stage();
            self.counts.ctxs.fetch_add(1, Ordering::Relaxed);
            let _span = self.trace.span("stage.contexts");
            let t0 = Instant::now();
            let ctxs = precompute_contexts(icfg, pre.call_graph(), tm);
            (Arc::new(ctxs), t0.elapsed())
        })
    }

    fn svfg_stage(&self) -> &Stage<Svfg> {
        self.svfg.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            let (_, tm, _) = self.cfg_stage();
            self.counts.svfg.fetch_add(1, Ordering::Relaxed);
            let span = self.trace.span("stage.svfg");
            let t0 = Instant::now();
            let svfg = Svfg::build(self.module, pre, tm);
            span.counter("svfg.nodes", svfg.stats.nodes as u64);
            span.counter("svfg.edges", svfg.stats.edges as u64);
            span.counter("svfg.mem_phis", svfg.stats.mem_phis as u64);
            (Arc::new(svfg), t0.elapsed())
        })
    }

    /// The interleaving analysis (§3.3.1), built on first demand.
    fn interleaving_stage(&self) -> &Stage<Interleaving> {
        self.interleaving.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            let (icfg, tm, _) = self.cfg_stage();
            let (ctxs, _) = self.ctxs_stage();
            self.counts.interleaving.fetch_add(1, Ordering::Relaxed);
            let _span = self.trace.span("stage.interleaving");
            let t0 = Instant::now();
            let inter = Interleaving::compute(self.module, icfg, pre, tm, ctxs);
            (Arc::new(inter), t0.elapsed())
        })
    }

    fn pcg_stage(&self) -> &Stage<ProcMhp> {
        self.pcg.get_or_init(|| {
            let (icfg, tm, _) = self.cfg_stage();
            self.counts.pcg.fetch_add(1, Ordering::Relaxed);
            let _span = self.trace.span("stage.pcg");
            let t0 = Instant::now();
            let pcg = ProcMhp::build(self.module, icfg, tm);
            (Arc::new(pcg), t0.elapsed())
        })
    }

    /// The factored region×region MHP relation for `mhp`'s backend kind,
    /// built on first demand and cached per kind.
    fn relation_stage(&self, mhp: &MhpBackend) -> Arc<MhpRelation> {
        let slot = match mhp {
            MhpBackend::Interleaving(_) => &self.rel_inter,
            MhpBackend::Pcg(_) => &self.rel_pcg,
        };
        Arc::clone(slot.get_or_init(|| {
            let span = self.trace.span("stage.mhp_relation");
            let rel = mhp.relation();
            rel.export_trace(&span);
            Arc::new(rel)
        }))
    }

    /// The happens-before analysis (DESIGN §1.9), built on first demand.
    /// Modules without sync intrinsics gate to `HbFacts::empty()` inside
    /// the build, so this stage is effectively free on pre-HB programs.
    fn hb_stage(&self) -> &Stage<HbFacts> {
        self.hb.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            let (_, tm, _) = self.cfg_stage();
            self.counts.hb.fetch_add(1, Ordering::Relaxed);
            let span = self.trace.span("stage.hb");
            let t0 = Instant::now();
            let hb = HbFacts::build(self.module, pre, tm);
            hb.export_trace(&span);
            (Arc::new(hb), t0.elapsed())
        })
    }

    fn lock_stage(&self) -> &Stage<LockAnalysis> {
        self.lock.get_or_init(|| {
            let (pre, _) = self.pre_stage();
            let (icfg, tm, _) = self.cfg_stage();
            let (ctxs, _) = self.ctxs_stage();
            self.counts.lock.fetch_add(1, Ordering::Relaxed);
            let span = self.trace.span("stage.lock");
            let t0 = Instant::now();
            let lock = LockAnalysis::compute(self.module, icfg, pre, tm, ctxs);
            span.counter("lock.spans", lock.span_count as u64);
            (Arc::new(lock), t0.elapsed())
        })
    }

    /// Builds the interleaving and lock analyses concurrently. Both are
    /// forward data-flow passes that only *read* the shared pre-analysis,
    /// ICFG, thread model and frozen context table, so after materializing
    /// those inputs the two stages are independent.
    fn interference_parallel(&self) {
        let both_pending = self.interleaving.get().is_none() && self.lock.get().is_none();
        if !both_pending {
            // At least one is already cached; build the other inline.
            let _ = self.interleaving_stage();
            let _ = self.lock_stage();
            return;
        }
        let _ = self.pre_stage();
        let _ = self.cfg_stage();
        let _ = self.ctxs_stage();
        self.counts
            .parallel_interference
            .store(true, Ordering::Relaxed);
        thread::scope(|s| {
            s.spawn(|| {
                let _ = self.interleaving_stage();
            });
            let _ = self.lock_stage();
        });
    }

    // ---- drivers ----------------------------------------------------------

    /// Runs one configuration, reusing every already-built shared stage.
    ///
    /// In the full configuration the interleaving and lock analyses are
    /// scheduled concurrently; the value-flow phase, thread-aware edge
    /// insertion (on a clone of the cached thread-oblivious SVFG) and the
    /// sparse solve are per-configuration work.
    pub fn run(&self, config: PhaseConfig) -> Fsam {
        let mut times = PhaseTimes::default();
        let run_span = self.trace.span("pipeline.run");
        run_span.point(
            "config",
            vec![
                (
                    "interleaving".into(),
                    FieldValue::U64(config.interleaving.into()),
                ),
                (
                    "value_flow".into(),
                    FieldValue::U64(config.value_flow.into()),
                ),
                ("lock".into(), FieldValue::U64(config.lock.into())),
                ("hb".into(), FieldValue::U64(config.hb.into())),
            ],
        );

        let (pre, d) = self.pre_stage();
        times.pre_analysis = *d;
        let (icfg, tm, d) = self.cfg_stage();
        times.thread_model = *d;

        if config.interleaving && config.lock {
            self.interference_parallel();
        }
        // The interference analyses share the frozen context table; its
        // precompute pass is accounted to the thread-model phase (it depends
        // only on the ICFG and call graph).
        let (ctxs, d) = self.ctxs_stage();
        times.thread_model += *d;

        let mhp = if config.interleaving {
            let (inter, d) = self.interleaving_stage();
            times.interleaving = *d;
            MhpBackend::Interleaving(Arc::clone(inter))
        } else {
            let (pcg, d) = self.pcg_stage();
            times.interleaving = *d;
            MhpBackend::Pcg(Arc::clone(pcg))
        };

        let mhp_rel = self.relation_stage(&mhp);

        let hb = if config.hb {
            let (hb, d) = self.hb_stage();
            times.hb = *d;
            Arc::clone(hb)
        } else {
            Arc::new(HbFacts::empty())
        };

        let lock = config.lock.then(|| {
            let (lock, d) = self.lock_stage();
            times.lock = *d;
            Arc::clone(lock)
        });

        let (svfg_base, d) = self.svfg_stage();
        times.svfg = *d;

        let t0 = Instant::now();
        let vf_span = run_span.child("phase.value_flow");
        let vf = if self.threads > 1 && config.value_flow {
            // Shard the per-object store × access loops across the pool and
            // fold the results back in object order — bit-identical to the
            // sequential `valueflow::compute` by construction.
            let plan = ValueFlowPlan::new(self.module, icfg, pre, &mhp, &mhp_rel, lock.as_deref());
            let (flows, ps) =
                par::run_tasks(self.threads, plan.objects(), |_, i, _| plan.object_flow(i));
            vf_span.counter("par.workers", ps.workers.max(1) as u64);
            vf_span.counter("par.steals", ps.steals);
            plan.merge(flows)
        } else {
            valueflow::compute(
                self.module,
                icfg,
                pre,
                &mhp,
                &mhp_rel,
                lock.as_deref(),
                !config.value_flow,
            )
        };
        vf.stats.export_trace(&vf_span);
        let mut svfg = Svfg::clone(svfg_base);
        let inserted = svfg.insert_thread_edges_grouped(&vf.edges);
        vf_span.counter("svfg.thread_classes", inserted.classes as u64);
        vf_span.counter("svfg.thread_junctions", inserted.junctions as u64);
        vf_span.counter("svfg.thread_edges_added", inserted.edges_added as u64);
        drop(vf_span);
        times.value_flow = t0.elapsed();

        let t0 = Instant::now();
        let result = solver::solve_par_traced(
            self.module,
            pre,
            &svfg,
            self.threads,
            &self.trace,
            run_span.id(),
        );
        times.sparse_solve = t0.elapsed();

        Fsam {
            pre: Arc::clone(pre),
            icfg: Arc::clone(icfg),
            tm: Arc::clone(tm),
            svfg,
            mhp,
            mhp_rel,
            hb,
            lock,
            ctxs: Arc::clone(ctxs),
            vf_stats: vf.stats,
            result,
            times,
            config,
        }
    }

    /// Runs several configurations, solving them on separate threads once
    /// the shared stages are materialized. Results are returned in the order
    /// of `configs`.
    pub fn run_many(&self, configs: &[PhaseConfig]) -> Vec<Fsam> {
        // Materialize every shared stage the batch needs up front (with the
        // interleaving/lock pair in parallel) so the per-configuration
        // threads below only do per-run work on cached inputs.
        let need_inter = configs.iter().any(|c| c.interleaving);
        let need_lock = configs.iter().any(|c| c.lock);
        let need_pcg = configs.iter().any(|c| !c.interleaving);
        let _ = self.svfg_stage();
        let _ = self.ctxs_stage();
        if need_inter && need_lock {
            self.interference_parallel();
        } else if need_inter {
            let _ = self.interleaving_stage();
        } else if need_lock {
            let _ = self.lock_stage();
        }
        if need_pcg {
            let _ = self.pcg_stage();
        }
        if configs.iter().any(|c| c.hb) {
            let _ = self.hb_stage();
        }
        thread::scope(|s| {
            let handles: Vec<_> = configs
                .iter()
                .map(|&c| s.spawn(move || self.run(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("configuration run panicked"))
                .collect()
        })
    }

    /// Runs the four Figure 12 configurations (full plus the three
    /// ablations), sharing stages and solving in parallel.
    pub fn run_all(&self) -> Vec<Fsam> {
        self.run_many(&[
            PhaseConfig::full(),
            PhaseConfig::no_interleaving(),
            PhaseConfig::no_value_flow(),
            PhaseConfig::no_lock(),
        ])
    }

    /// Runs the NonSparse baseline (§4.3) on the shared pre-analysis and
    /// ICFG/thread-model stages — the Table 2 comparison without paying for
    /// a second pre-analysis.
    pub fn run_nonsparse(&self, budget: Option<Duration>) -> NonSparseOutcome {
        let (pre, _) = self.pre_stage();
        let (icfg, tm, _) = self.cfg_stage();
        let span = self.trace.span("pipeline.run_nonsparse");
        nonsparse::run_traced(self.module, pre, icfg, tm, budget, &self.trace, span.id())
    }
}

/// The complete output of an FSAM run.
///
/// Shared stages (`pre`, `icfg`, `tm`, `ctxs`, the MHP backend, the lock
/// analysis) are `Arc`-backed so several runs from one [`Pipeline`] hand out
/// the same artifacts; the SVFG, value-flow statistics, solver result and
/// times are per-run.
#[derive(Debug)]
pub struct Fsam {
    /// The pre-analysis (Andersen) results.
    pub pre: Arc<PreAnalysis>,
    /// The interprocedural CFG.
    pub icfg: Arc<Icfg>,
    /// The static thread model.
    pub tm: Arc<ThreadModel>,
    /// The (thread-aware) sparse value-flow graph.
    pub svfg: Svfg,
    /// The MHP oracle this configuration used: the interleaving analysis,
    /// or the PCG fallback under *No-Interleaving*.
    pub mhp: MhpBackend,
    /// The same backend factored into region×region bitmatrix form —
    /// statement-level MHP as two region lookups and one bit test.
    pub mhp_rel: Arc<MhpRelation>,
    /// The vector-clock happens-before facts (empty under *No-HB* or when
    /// the module has no sync intrinsics). `mhp_rel` stays the raw MHP —
    /// consumers combine the two: a pair truly races only when MHP holds
    /// and HB does not order it.
    pub hb: Arc<HbFacts>,
    /// The lock analysis (present unless *No-Lock*).
    pub lock: Option<Arc<LockAnalysis>>,
    /// The shared (frozen) context table.
    pub ctxs: Arc<ContextTable>,
    /// Value-flow phase statistics.
    pub vf_stats: ValueFlowStats,
    /// The sparse solver output.
    pub result: SparseResult,
    /// Per-phase wall-clock times.
    pub times: PhaseTimes,
    /// The configuration that ran.
    pub config: PhaseConfig,
}

impl Fsam {
    /// Runs the full FSAM pipeline on `module`.
    pub fn analyze(module: &Module) -> Fsam {
        Self::analyze_with(module, PhaseConfig::full())
    }

    /// Runs the pipeline with a specific phase configuration (a thin wrapper
    /// over a single-use [`Pipeline`]).
    pub fn analyze_with(module: &Module, config: PhaseConfig) -> Fsam {
        Pipeline::for_module(module).run(config)
    }

    /// Looks up `func::var`.
    ///
    /// # Panics
    ///
    /// Panics if no such variable exists.
    pub fn var_named(module: &Module, func: &str, var: &str) -> VarId {
        module
            .var_ids()
            .find(|&v| module.var(v).name == var && module.func(module.var(v).func).name == func)
            .unwrap_or_else(|| panic!("no variable {func}::{var}"))
    }

    /// Statement-level MHP refined by happens-before: the pair may race
    /// only if the raw MHP relation says it can interleave *and* no
    /// condvar/barrier/atomic synchronization chain orders it.
    pub fn mhp_refined(&self, s1: fsam_ir::StmtId, s2: fsam_ir::StmtId) -> bool {
        self.mhp_rel.mhp_stmt_refined(s1, s2, &self.hb)
    }

    /// Memory held by analysis state, broken down by category (the Table 2
    /// memory column).
    pub fn memory(&self) -> MemoryMeter {
        let mut m = MemoryMeter::new();
        m.add("pre-analysis", self.pre.pts_bytes());
        m.add("sparse-points-to", self.result.pts_bytes());
        m.add("hb-facts", self.hb.heap_bytes());
        m
    }

    /// A human-readable summary of the run: per-phase times and the key
    /// statistics of every stage.
    pub fn report(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "FSAM analysis report");
        let _ = writeln!(
            out,
            "  program: {} stmts, {} functions, {} objects, {} variables",
            module.stmt_count(),
            module.func_count(),
            module.obj_count(),
            module.var_count()
        );
        let _ = writeln!(out, "  threads: {} abstract threads", self.tm.len());
        let _ = writeln!(
            out,
            "  pre-analysis:  {:>10.2?}  ({} rounds, {} pts entries)",
            self.times.pre_analysis, self.pre.stats.rounds, self.pre.stats.pts_entries
        );
        let _ = writeln!(out, "  thread model:  {:>10.2?}", self.times.thread_model);
        let _ = writeln!(
            out,
            "  memory SSA:    {:>10.2?}  ({} nodes, {} edges, {} mem-phis)",
            self.times.svfg, self.svfg.stats.nodes, self.svfg.stats.edges, self.svfg.stats.mem_phis
        );
        let mhp_kind = if self.config.interleaving {
            "interleaving"
        } else {
            "PCG"
        };
        let _ = writeln!(out, "  MHP ({mhp_kind}): {:>8.2?}", self.times.interleaving);
        let _ = writeln!(
            out,
            "  happens-before:{:>10.2?}  ({} regions, {} chain events)",
            self.times.hb,
            self.hb.region_count(),
            self.hb.chain_event_count()
        );
        let _ = writeln!(
            out,
            "  lock analysis: {:>10.2?}  ({} spans)",
            self.times.lock,
            self.lock.as_ref().map_or(0, |l| l.span_count)
        );
        let _ = writeln!(
            out,
            "  value flow:    {:>10.2?}  ({} shared objects, {} MHP pairs, {} lock-filtered, {} edges)",
            self.times.value_flow,
            self.vf_stats.shared_objects,
            self.vf_stats.mhp_pairs,
            self.vf_stats.lock_filtered,
            self.vf_stats.edges
        );
        let _ = writeln!(
            out,
            "  sparse solve:  {:>10.2?}  ({} items, {} strong / {} weak updates)",
            self.times.sparse_solve,
            self.result.stats.processed,
            self.result.stats.strong_updates,
            self.result.stats.weak_updates
        );
        let _ = writeln!(out, "  total:         {:>10.2?}", self.times.total());
        let _ = writeln!(out, "  memory:        {}", self.memory());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    /// Sorted display names of the objects `func::var` points to under the
    /// flow-sensitive result. (External callers go through
    /// `fsam_query::QueryEngine::pt_names`; the query crate depends on this
    /// one, so in-crate tests read the result directly.)
    fn pt_names(fsam: &Fsam, m: &Module, func: &str, var: &str) -> Vec<String> {
        let v = Fsam::var_named(m, func, var);
        let mut names: Vec<String> = fsam
            .result
            .pt_var(v)
            .iter()
            .map(|o| fsam.pre.objects().display_name(m, o))
            .collect();
        names.sort();
        names
    }

    /// Paper Figure 1(a): interleaving soundness — pt(c) = {y, z}.
    #[test]
    fn figure_1a() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func foo() {
            entry:
              p2 = &x
              q = &y
              store p2, q      // *p = q (in thread t)
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              t = fork foo()
              store p, r       // *p = r
              c = load p       // c = *p
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(pt_names(&fsam, &m, "main", "c"), vec!["y", "z"]);
    }

    /// Paper Figure 1(c): fork/join precision with a strong update —
    /// pt(c) = {y} only.
    #[test]
    fn figure_1c() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func foo() {
            entry:
              p2 = &x
              q = &y
              store p2, q      // *p = q (strong update under thread order)
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              store p, r       // *p = r
              t = fork foo()
              join t
              c = load p       // c = *p — after the join
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(pt_names(&fsam, &m, "main", "c"), vec!["y"]);
    }

    /// Paper Figure 1(d): sparsity — *x and *p don't alias, so the store to
    /// x never pollutes c. pt(c) = {y}.
    #[test]
    fn figure_1d() {
        let m = parse_module(
            r#"
            global x
            global y
            global a
            func foo() {
            entry:
              p2 = &x
              q = &y
              xv = load p2     // x was set to &a in main; *x = r writes a
              store xv, xv     // *x = r stand-in: writes object a, not x
              store p2, q      // *p = q
              ret
            }
            func main() {
            entry:
              p = &x
              aa = &a
              store p, aa      // x = &a
              t = fork foo()
              c = load p       // c = *p
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        let names = pt_names(&fsam, &m, "main", "c");
        assert!(names.contains(&"y".to_owned()));
        assert!(!names.contains(&"x".to_owned()), "{names:?}");
    }

    /// Sequential strong updates still work end to end.
    #[test]
    fn sequential_strong_update() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func main() {
            entry:
              p = &x
              r = &z
              q = &y
              store p, r       // x = &z
              store p, q       // x = &y (kills &z)
              c = load p       // c = {y}
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(pt_names(&fsam, &m, "main", "c"), vec!["y"]);
        assert!(fsam.result.stats.strong_updates > 0);
    }

    /// Weak update on a heap object (never a singleton).
    #[test]
    fn heap_updates_are_weak() {
        let m = parse_module(
            r#"
            global y
            global z
            func main() {
            entry:
              h = alloc "cell"
              r = &z
              q = &y
              store h, r
              store h, q       // weak: heap objects are not singletons
              c = load h
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(pt_names(&fsam, &m, "main", "c"), vec!["y", "z"]);
    }

    /// FSAM refines the pre-analysis: every sparse points-to set is a subset
    /// of Andersen's.
    #[test]
    fn sparse_refines_andersen() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func worker(w) {
            entry:
              v = load w
              store w, v
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              q = &y
              store p, r
              t = fork worker(p)
              store p, q
              c = load p
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        for v in m.var_ids() {
            assert!(
                fsam.result.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                "sparse pt({}) ⊄ andersen",
                m.var_name(v)
            );
        }
    }

    #[test]
    fn alias_queries_and_report() {
        let m = parse_module(
            r#"
            global x
            global y
            func main() {
            entry:
              p = &x
              q = &x
              r = &y
              store p, r
              c = load q
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        let p = Fsam::var_named(&m, "main", "p");
        let q = Fsam::var_named(&m, "main", "q");
        let r = Fsam::var_named(&m, "main", "r");
        // Alias queries live in `fsam_query::QueryEngine::may_alias`; the
        // underlying flow-sensitive sets answer the same question here.
        assert!(fsam.result.pt_var(p).intersects(fsam.result.pt_var(q)));
        assert!(!fsam.result.pt_var(p).intersects(fsam.result.pt_var(r)));
        let report = fsam.report(&m);
        assert!(report.contains("sparse solve"), "{report}");
        assert!(report.contains("abstract threads"), "{report}");
        assert!(report.contains("strong"), "{report}");
    }

    /// A program that exercises every phase: forks, joins, locks, aliased
    /// stores and loads.
    const ABLATION_SRC: &str = r#"
            global o
            global lk
            global y
            global z
            func a() {
            entry:
              p = &o
              l = &lk
              zz = &z
              lock l
              store p, zz
              yy = &y
              store p, yy
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              l = &lk
              lock l
              c = load q
              unlock l
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              p = &o
              after = load p
              ret
            }
        "#;

    /// Ablations run and produce sound (superset-or-equal) results.
    #[test]
    fn ablations_are_sound_but_no_more_precise() {
        let m = parse_module(ABLATION_SRC).unwrap();
        let full = Fsam::analyze(&m);
        for cfg in [
            PhaseConfig::no_interleaving(),
            PhaseConfig::no_value_flow(),
            PhaseConfig::no_lock(),
        ] {
            let ablated = Fsam::analyze_with(&m, cfg);
            for v in m.var_ids() {
                assert!(
                    full.result.pt_var(v).is_subset(ablated.result.pt_var(v)),
                    "ablation {cfg:?} lost soundness on {}",
                    m.var_name(v)
                );
            }
        }
    }

    /// The tentpole guarantee: four ablations, one build of every shared
    /// stage, with the interleaving/lock pair scheduled concurrently.
    #[test]
    fn stages_are_built_once_across_ablations() {
        let m = parse_module(ABLATION_SRC).unwrap();
        let pipeline = Pipeline::for_module(&m);
        let runs = pipeline.run_all();
        assert_eq!(runs.len(), 4);
        let counts = pipeline.build_counts();
        assert_eq!(
            counts,
            StageBuildCounts {
                pre_analysis: 1,
                icfg: 1,
                contexts: 1,
                svfg: 1,
                interleaving: 1,
                pcg: 1,
                hb: 1,
                lock: 1,
                parallel_interference: true,
            }
        );
    }

    /// Stage sharing is by reference: runs from one pipeline hand out the
    /// same `Arc`-backed artifacts.
    #[test]
    fn runs_share_stage_arcs() {
        use fsam_threads::MhpBackend;
        let m = parse_module(ABLATION_SRC).unwrap();
        let pipeline = Pipeline::for_module(&m);
        let a = pipeline.run(PhaseConfig::full());
        let b = pipeline.run(PhaseConfig::no_lock());
        assert!(Arc::ptr_eq(&a.pre, &b.pre));
        assert!(Arc::ptr_eq(&a.icfg, &b.icfg));
        assert!(Arc::ptr_eq(&a.tm, &b.tm));
        assert!(Arc::ptr_eq(&a.ctxs, &b.ctxs));
        match (&a.mhp, &b.mhp) {
            (MhpBackend::Interleaving(x), MhpBackend::Interleaving(y)) => {
                assert!(Arc::ptr_eq(x, y));
            }
            other => panic!("both configurations use interleaving: {other:?}"),
        }
        assert!(a.lock.is_some());
        assert!(
            b.lock.is_none(),
            "*No-Lock* must not expose a lock analysis"
        );
    }

    /// `PhaseTimes::total` is the sum of all eight phases, and the empty
    /// value totals zero.
    #[test]
    fn phase_times_total_sums_every_phase() {
        let t = PhaseTimes {
            pre_analysis: Duration::from_millis(1),
            thread_model: Duration::from_millis(2),
            svfg: Duration::from_millis(4),
            interleaving: Duration::from_millis(8),
            hb: Duration::from_millis(128),
            lock: Duration::from_millis(16),
            value_flow: Duration::from_millis(32),
            sparse_solve: Duration::from_millis(64),
        };
        assert_eq!(t.total(), Duration::from_millis(255));
        assert_eq!(PhaseTimes::default().total(), Duration::ZERO);
    }

    /// Under `run_many`, shared stages build exactly once across parallel
    /// configurations, and cache-hit phases report the original build's
    /// duration — so `PhaseTimes` stays comparable between the run that
    /// built a stage and the runs that reused it.
    #[test]
    fn run_many_builds_shared_stages_once_with_original_durations() {
        let m = parse_module(ABLATION_SRC).unwrap();
        let pipeline = Pipeline::for_module(&m);
        let runs = pipeline.run_many(&[
            PhaseConfig::full(),
            PhaseConfig::full(),
            PhaseConfig::no_lock(),
        ]);
        assert_eq!(runs.len(), 3);
        let counts = pipeline.build_counts();
        assert_eq!(counts.pre_analysis, 1);
        assert_eq!(counts.icfg, 1);
        assert_eq!(counts.contexts, 1);
        assert_eq!(counts.svfg, 1);
        assert_eq!(counts.interleaving, 1);
        assert_eq!(counts.lock, 1);
        assert_eq!(counts.pcg, 0, "every config used interleaving");
        for r in &runs[1..] {
            assert_eq!(r.times.pre_analysis, runs[0].times.pre_analysis);
            assert_eq!(r.times.thread_model, runs[0].times.thread_model);
            assert_eq!(r.times.svfg, runs[0].times.svfg);
            assert_eq!(r.times.interleaving, runs[0].times.interleaving);
        }
        assert_eq!(runs[1].times.lock, runs[0].times.lock);
        assert_eq!(
            runs[2].times.lock,
            Duration::ZERO,
            "*No-Lock* never pays for the lock stage"
        );
        for r in &runs {
            assert!(r.times.total() >= r.times.pre_analysis + r.times.sparse_solve);
        }
    }

    /// The wrapper entry points and the staged driver agree exactly.
    #[test]
    fn wrapper_matches_staged_run() {
        let m = parse_module(ABLATION_SRC).unwrap();
        let pipeline = Pipeline::for_module(&m);
        for cfg in [
            PhaseConfig::full(),
            PhaseConfig::no_interleaving(),
            PhaseConfig::no_value_flow(),
            PhaseConfig::no_lock(),
        ] {
            let staged = pipeline.run(cfg);
            let standalone = Fsam::analyze_with(&m, cfg);
            assert_eq!(staged.result, standalone.result, "{cfg:?}");
            assert_eq!(staged.vf_stats, standalone.vf_stats, "{cfg:?}");
        }
    }

    /// NonSparse rides the same pre-analysis/ICFG stages.
    #[test]
    fn nonsparse_shares_stages() {
        let m = parse_module(ABLATION_SRC).unwrap();
        let pipeline = Pipeline::for_module(&m);
        let _ = pipeline.run(PhaseConfig::full());
        let outcome = pipeline.run_nonsparse(None);
        assert!(matches!(
            outcome,
            crate::nonsparse::NonSparseOutcome::Done(_)
        ));
        assert_eq!(pipeline.build_counts().pre_analysis, 1);
        assert_eq!(pipeline.build_counts().icfg, 1);
    }
}

//! The FSAM pipeline — paper Figure 2.
//!
//! `pre-analysis → thread model → thread-oblivious SVFG → interleaving →
//! value-flow → lock → sparse flow-sensitive resolution`, with per-phase
//! wall-clock times, memory accounting, and the phase toggles used by the
//! Figure 12 ablation (*No-Interleaving*, *No-Value-Flow*, *No-Lock*).

use std::time::{Duration, Instant};

use fsam_andersen::PreAnalysis;
use fsam_ir::context::ContextTable;
use fsam_ir::icfg::Icfg;
use fsam_ir::{Module, VarId};
use fsam_mssa::Svfg;
use fsam_pts::{MemoryMeter, PtsSet};
use fsam_threads::interleave::Interleaving;
use fsam_threads::lock::LockAnalysis;
use fsam_threads::mhp::{MhpOracle, ProcMhp};
use fsam_threads::valueflow::{self, ValueFlowStats};
use fsam_threads::ThreadModel;

use crate::solver::{self, SparseResult};

/// Which thread-interference phases run (the Figure 12 ablation knobs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhaseConfig {
    /// §3.3.1 interleaving analysis; when off, the PCG-style procedure-level
    /// MHP is used instead (*No-Interleaving*).
    pub interleaving: bool,
    /// §3.3.2 value-flow analysis; when off, the aliasing condition of
    /// `[THREAD-VF]` is disregarded (*No-Value-Flow*).
    pub value_flow: bool,
    /// §3.3.3 lock analysis; when off, no non-interference filtering
    /// (*No-Lock*).
    pub lock: bool,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig { interleaving: true, value_flow: true, lock: true }
    }
}

impl PhaseConfig {
    /// All phases on (the full FSAM configuration).
    pub fn full() -> Self {
        Self::default()
    }

    /// The *No-Interleaving* ablation.
    pub fn no_interleaving() -> Self {
        PhaseConfig { interleaving: false, ..Self::default() }
    }

    /// The *No-Value-Flow* ablation.
    pub fn no_value_flow() -> Self {
        PhaseConfig { value_flow: false, ..Self::default() }
    }

    /// The *No-Lock* ablation.
    pub fn no_lock() -> Self {
        PhaseConfig { lock: false, ..Self::default() }
    }
}

/// Wall-clock time of each pipeline phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Andersen pre-analysis.
    pub pre_analysis: Duration,
    /// ICFG + thread model construction.
    pub thread_model: Duration,
    /// Thread-oblivious SVFG (memory SSA).
    pub svfg: Duration,
    /// Interleaving (or PCG) analysis.
    pub interleaving: Duration,
    /// Lock analysis.
    pub lock: Duration,
    /// Value-flow analysis + edge insertion.
    pub value_flow: Duration,
    /// Sparse flow-sensitive resolution.
    pub sparse_solve: Duration,
}

impl PhaseTimes {
    /// Total analysis time.
    pub fn total(&self) -> Duration {
        self.pre_analysis
            + self.thread_model
            + self.svfg
            + self.interleaving
            + self.lock
            + self.value_flow
            + self.sparse_solve
    }
}

/// The complete output of an FSAM run.
#[derive(Debug)]
pub struct Fsam {
    /// The pre-analysis (Andersen) results.
    pub pre: PreAnalysis,
    /// The interprocedural CFG.
    pub icfg: Icfg,
    /// The static thread model.
    pub tm: ThreadModel,
    /// The (thread-aware) sparse value-flow graph.
    pub svfg: Svfg,
    /// The interleaving analysis (present unless *No-Interleaving*).
    pub interleaving: Option<Interleaving>,
    /// The PCG-style fallback oracle (present in *No-Interleaving* runs).
    pub pcg: Option<ProcMhp>,
    /// The lock analysis (present unless *No-Lock*).
    pub lock: Option<LockAnalysis>,
    /// The shared context table.
    pub ctxs: ContextTable,
    /// Value-flow phase statistics.
    pub vf_stats: ValueFlowStats,
    /// The sparse solver output.
    pub result: SparseResult,
    /// Per-phase wall-clock times.
    pub times: PhaseTimes,
    /// The configuration that ran.
    pub config: PhaseConfig,
}

impl Fsam {
    /// Runs the full FSAM pipeline on `module`.
    pub fn analyze(module: &Module) -> Fsam {
        Self::analyze_with(module, PhaseConfig::full())
    }

    /// Runs the pipeline with a specific phase configuration.
    pub fn analyze_with(module: &Module, config: PhaseConfig) -> Fsam {
        let mut times = PhaseTimes::default();

        let t0 = Instant::now();
        let pre = PreAnalysis::run(module);
        times.pre_analysis = t0.elapsed();

        let t0 = Instant::now();
        let icfg = Icfg::build(module, pre.call_graph());
        let tm = ThreadModel::build(module, &pre, &icfg);
        times.thread_model = t0.elapsed();

        let t0 = Instant::now();
        let mut svfg = Svfg::build(module, &pre, &tm);
        times.svfg = t0.elapsed();

        let mut ctxs = ContextTable::new();

        let t0 = Instant::now();
        let (interleaving, pcg) = if config.interleaving {
            (Some(Interleaving::compute(module, &icfg, &pre, &tm, &mut ctxs)), None)
        } else {
            (None, Some(ProcMhp::build(module, &icfg, &tm)))
        };
        times.interleaving = t0.elapsed();

        let t0 = Instant::now();
        let lock = config
            .lock
            .then(|| LockAnalysis::compute(module, &icfg, &pre, &tm, &mut ctxs));
        times.lock = t0.elapsed();

        let t0 = Instant::now();
        let oracle: &dyn MhpOracle = match (&interleaving, &pcg) {
            (Some(i), _) => i,
            (None, Some(p)) => p,
            (None, None) => unreachable!("one oracle always exists"),
        };
        let vf = valueflow::compute(
            module,
            &icfg,
            &pre,
            oracle,
            lock.as_ref(),
            !config.value_flow,
        );
        // Insert the thread-aware flows, grouping complete store×access
        // products per object through a junction node (identical results,
        // linear instead of quadratic edge count).
        {
            use std::collections::{BTreeMap, BTreeSet};
            let mut by_obj: BTreeMap<_, Vec<(fsam_ir::StmtId, fsam_ir::StmtId)>> = BTreeMap::new();
            for &(s, a, o) in &vf.edges {
                by_obj.entry(o).or_default().push((s, a));
            }
            for (o, pairs) in by_obj {
                // Partition stores by their exact access set; each class is
                // a complete bipartite product and can share one junction.
                let mut access_sets: BTreeMap<fsam_ir::StmtId, BTreeSet<fsam_ir::StmtId>> =
                    BTreeMap::new();
                for &(s, a) in &pairs {
                    access_sets.entry(s).or_default().insert(a);
                }
                let mut classes: BTreeMap<Vec<fsam_ir::StmtId>, Vec<fsam_ir::StmtId>> =
                    BTreeMap::new();
                for (s, accs) in access_sets {
                    let key: Vec<_> = accs.into_iter().collect();
                    classes.entry(key).or_default().push(s);
                }
                for (accesses, stores) in classes {
                    svfg.add_thread_group(&stores, &accesses, o);
                }
            }
        }
        times.value_flow = t0.elapsed();

        let t0 = Instant::now();
        let result = solver::solve(module, &pre, &svfg);
        times.sparse_solve = t0.elapsed();

        Fsam {
            pre,
            icfg,
            tm,
            svfg,
            interleaving,
            pcg,
            lock,
            ctxs,
            vf_stats: vf.stats,
            result,
            times,
            config,
        }
    }

    /// The flow-sensitive points-to set of variable `var` in function
    /// `func`, by name (convenience for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if no such variable exists.
    pub fn pt_of(&self, module: &Module, func: &str, var: &str) -> &PtsSet {
        let v = Self::var_named(module, func, var);
        self.result.pt_var(v)
    }

    /// The names of the objects `func::var` points to, sorted.
    pub fn pt_names(&self, module: &Module, func: &str, var: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .pt_of(module, func, var)
            .iter()
            .map(|o| self.pre.objects().display_name(module, o))
            .collect();
        names.sort();
        names
    }

    /// Looks up `func::var`.
    ///
    /// # Panics
    ///
    /// Panics if no such variable exists.
    pub fn var_named(module: &Module, func: &str, var: &str) -> VarId {
        module
            .var_ids()
            .find(|&v| {
                module.var(v).name == var && module.func(module.var(v).func).name == func
            })
            .unwrap_or_else(|| panic!("no variable {func}::{var}"))
    }

    /// Memory held by analysis state, broken down by category (the Table 2
    /// memory column).
    pub fn memory(&self) -> MemoryMeter {
        let mut m = MemoryMeter::new();
        m.add("pre-analysis", self.pre.pts_bytes());
        m.add("sparse-points-to", self.result.pts_bytes());
        m
    }

    /// Whether `*p` and `*q` may alias under the flow-sensitive results
    /// (client-facing alias query).
    pub fn may_alias(&self, p: VarId, q: VarId) -> bool {
        self.result.pt_var(p).intersects(self.result.pt_var(q))
    }

    /// A human-readable summary of the run: per-phase times and the key
    /// statistics of every stage.
    pub fn report(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "FSAM analysis report");
        let _ = writeln!(
            out,
            "  program: {} stmts, {} functions, {} objects, {} variables",
            module.stmt_count(),
            module.func_count(),
            module.obj_count(),
            module.var_count()
        );
        let _ = writeln!(out, "  threads: {} abstract threads", self.tm.len());
        let _ = writeln!(
            out,
            "  pre-analysis:  {:>10.2?}  ({} rounds, {} pts entries)",
            self.times.pre_analysis, self.pre.stats.rounds, self.pre.stats.pts_entries
        );
        let _ = writeln!(
            out,
            "  thread model:  {:>10.2?}",
            self.times.thread_model
        );
        let _ = writeln!(
            out,
            "  memory SSA:    {:>10.2?}  ({} nodes, {} edges, {} mem-phis)",
            self.times.svfg, self.svfg.stats.nodes, self.svfg.stats.edges, self.svfg.stats.mem_phis
        );
        let mhp_kind = if self.config.interleaving { "interleaving" } else { "PCG" };
        let _ = writeln!(
            out,
            "  MHP ({mhp_kind}): {:>8.2?}",
            self.times.interleaving
        );
        let _ = writeln!(
            out,
            "  lock analysis: {:>10.2?}  ({} spans)",
            self.times.lock,
            self.lock.as_ref().map_or(0, |l| l.span_count)
        );
        let _ = writeln!(
            out,
            "  value flow:    {:>10.2?}  ({} shared objects, {} MHP pairs, {} lock-filtered, {} edges)",
            self.times.value_flow,
            self.vf_stats.shared_objects,
            self.vf_stats.mhp_pairs,
            self.vf_stats.lock_filtered,
            self.vf_stats.edges
        );
        let _ = writeln!(
            out,
            "  sparse solve:  {:>10.2?}  ({} items, {} strong / {} weak updates)",
            self.times.sparse_solve,
            self.result.stats.processed,
            self.result.stats.strong_updates,
            self.result.stats.weak_updates
        );
        let _ = writeln!(out, "  total:         {:>10.2?}", self.times.total());
        let _ = writeln!(out, "  memory:        {}", self.memory());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    /// Paper Figure 1(a): interleaving soundness — pt(c) = {y, z}.
    #[test]
    fn figure_1a() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func foo() {
            entry:
              p2 = &x
              q = &y
              store p2, q      // *p = q (in thread t)
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              t = fork foo()
              store p, r       // *p = r
              c = load p       // c = *p
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(fsam.pt_names(&m, "main", "c"), vec!["y", "z"]);
    }

    /// Paper Figure 1(c): fork/join precision with a strong update —
    /// pt(c) = {y} only.
    #[test]
    fn figure_1c() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func foo() {
            entry:
              p2 = &x
              q = &y
              store p2, q      // *p = q (strong update under thread order)
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              store p, r       // *p = r
              t = fork foo()
              join t
              c = load p       // c = *p — after the join
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(fsam.pt_names(&m, "main", "c"), vec!["y"]);
    }

    /// Paper Figure 1(d): sparsity — *x and *p don't alias, so the store to
    /// x never pollutes c. pt(c) = {y}.
    #[test]
    fn figure_1d() {
        let m = parse_module(
            r#"
            global x
            global y
            global a
            func foo() {
            entry:
              p2 = &x
              q = &y
              xv = load p2     // x was set to &a in main; *x = r writes a
              store xv, xv     // *x = r stand-in: writes object a, not x
              store p2, q      // *p = q
              ret
            }
            func main() {
            entry:
              p = &x
              aa = &a
              store p, aa      // x = &a
              t = fork foo()
              c = load p       // c = *p
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        let names = fsam.pt_names(&m, "main", "c");
        assert!(names.contains(&"y".to_owned()));
        assert!(!names.contains(&"x".to_owned()), "{names:?}");
    }

    /// Sequential strong updates still work end to end.
    #[test]
    fn sequential_strong_update() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func main() {
            entry:
              p = &x
              r = &z
              q = &y
              store p, r       // x = &z
              store p, q       // x = &y (kills &z)
              c = load p       // c = {y}
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(fsam.pt_names(&m, "main", "c"), vec!["y"]);
        assert!(fsam.result.stats.strong_updates > 0);
    }

    /// Weak update on a heap object (never a singleton).
    #[test]
    fn heap_updates_are_weak() {
        let m = parse_module(
            r#"
            global y
            global z
            func main() {
            entry:
              h = alloc "cell"
              r = &z
              q = &y
              store h, r
              store h, q       // weak: heap objects are not singletons
              c = load h
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        assert_eq!(fsam.pt_names(&m, "main", "c"), vec!["y", "z"]);
    }

    /// FSAM refines the pre-analysis: every sparse points-to set is a subset
    /// of Andersen's.
    #[test]
    fn sparse_refines_andersen() {
        let m = parse_module(
            r#"
            global x
            global y
            global z
            func worker(w) {
            entry:
              v = load w
              store w, v
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              q = &y
              store p, r
              t = fork worker(p)
              store p, q
              c = load p
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        for v in m.var_ids() {
            assert!(
                fsam.result.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                "sparse pt({}) ⊄ andersen",
                m.var_name(v)
            );
        }
    }

    #[test]
    fn alias_queries_and_report() {
        let m = parse_module(
            r#"
            global x
            global y
            func main() {
            entry:
              p = &x
              q = &x
              r = &y
              store p, r
              c = load q
              ret
            }
        "#,
        )
        .unwrap();
        let fsam = Fsam::analyze(&m);
        let p = Fsam::var_named(&m, "main", "p");
        let q = Fsam::var_named(&m, "main", "q");
        let r = Fsam::var_named(&m, "main", "r");
        assert!(fsam.may_alias(p, q));
        assert!(!fsam.may_alias(p, r));
        let report = fsam.report(&m);
        assert!(report.contains("sparse solve"), "{report}");
        assert!(report.contains("abstract threads"), "{report}");
        assert!(report.contains("strong"), "{report}");
    }

    /// Ablations run and produce sound (superset-or-equal) results.
    #[test]
    fn ablations_are_sound_but_no_more_precise() {
        let src = r#"
            global o
            global lk
            global y
            global z
            func a() {
            entry:
              p = &o
              l = &lk
              zz = &z
              lock l
              store p, zz
              yy = &y
              store p, yy
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              l = &lk
              lock l
              c = load q
              unlock l
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              p = &o
              after = load p
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        let full = Fsam::analyze(&m);
        for cfg in [
            PhaseConfig::no_interleaving(),
            PhaseConfig::no_value_flow(),
            PhaseConfig::no_lock(),
        ] {
            let ablated = Fsam::analyze_with(&m, cfg);
            for v in m.var_ids() {
                assert!(
                    full.result.pt_var(v).is_subset(ablated.result.pt_var(v)),
                    "ablation {cfg:?} lost soundness on {}",
                    m.var_name(v)
                );
            }
        }
    }
}

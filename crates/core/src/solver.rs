//! The sparse flow-sensitive points-to solver — paper §3.4, Figure 10.
//!
//! Points-to facts propagate **only along the pre-computed def-use chains**:
//! top-level variables through the partial-SSA def-use maps (rules
//! `P-ADDR`/`P-COPY`/`P-PHI`), address-taken objects through the SVFG's
//! indirect edges (`P-LOAD`/`P-STORE`), with strong updates at stores whose
//! pointer resolves to a unique singleton object (`P-SU/WU` and the `kill`
//! function). Thread-aware edges appended by the interference phases are
//! ordinary indirect edges here — which is exactly why a strong update
//! remains sound: `[THREAD-VF]` added a direct edge from every MHP store to
//! every MHP access, so a kill at one store cannot hide another thread's
//! write.
//!
//! # Recompute semantics
//!
//! Strong updates make the transfer functions non-monotone in the points-to
//! state itself (a store's output *shrinks* when its pointer's points-to set
//! becomes a known singleton). The solver therefore **recomputes and
//! replaces** each definition from its inputs instead of accumulating:
//! every top-level variable's set is re-evaluated from its complete source
//! list (its unique SSA definition, or all argument/return bindings), and
//! every object definition from its reaching definitions. The inputs that
//! drive the strong/weak decision (`pt(p)`) only flip a bounded number of
//! times (∅ → singleton → larger), after which everything is monotone, so
//! the fixpoint exists and the worklist terminates.

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::stmt::{StmtKind, Terminator};
use fsam_ir::{Module, StmtId, VarId};
use fsam_mssa::{NodeId as VfNodeId, NodeKind as VfNodeKind, Svfg};
use fsam_pts::{MemId, PtsSet};

/// Solver statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Worklist items processed.
    pub processed: usize,
    /// Store evaluations that applied a strong update.
    pub strong_updates: usize,
    /// Store evaluations that applied a weak update.
    pub weak_updates: usize,
    /// Final points-to pairs over top-level variables.
    pub var_pts_entries: usize,
    /// Final points-to pairs at object definitions.
    pub def_pts_entries: usize,
}

/// The result of the sparse flow-sensitive analysis.
///
/// `PartialEq` compares the complete points-to state (per-variable and
/// per-definition sets plus statistics) — the driver-equivalence tests use
/// it to check that staged and standalone runs agree exactly.
#[derive(Debug, PartialEq, Eq)]
pub struct SparseResult {
    pt_vars: Vec<PtsSet>,
    pt_defs: HashMap<(VfNodeId, MemId), PtsSet>,
    /// Statistics.
    pub stats: SolverStats,
}

impl SparseResult {
    /// Flow-sensitive points-to set of a top-level variable (its unique SSA
    /// definition makes one set per variable flow-sensitive).
    pub fn pt_var(&self, v: VarId) -> &PtsSet {
        &self.pt_vars[v.index()]
    }

    /// Points-to set of object `o` immediately after its definition at SVFG
    /// node `n` (`pt(s, o)` of Figure 10).
    pub fn pt_def(&self, n: VfNodeId, o: MemId) -> &PtsSet {
        static EMPTY: PtsSet = PtsSet::new();
        self.pt_defs.get(&(n, o)).unwrap_or(&EMPTY)
    }

    /// Heap bytes held by the final points-to state (memory metering).
    pub fn pts_bytes(&self) -> usize {
        self.pt_vars.iter().map(PtsSet::heap_bytes).sum::<usize>()
            + self.pt_defs.values().map(PtsSet::heap_bytes).sum::<usize>()
            + self.pt_defs.len() * std::mem::size_of::<((VfNodeId, MemId), PtsSet)>()
    }
}

/// Runs the sparse solver over the (thread-aware) SVFG.
pub fn solve(module: &Module, pre: &PreAnalysis, svfg: &Svfg) -> SparseResult {
    Solver::new(module, pre, svfg).run()
}

/// Where a top-level variable's values come from.
#[derive(Clone, Debug)]
enum VarSource {
    /// `v = &obj` (also the fork handle).
    Obj(MemId),
    /// `v ⊇ src` (copy, phi arm, argument or return binding).
    Var(VarId),
    /// `v = *ptr` at the given load.
    LoadAt(StmtId, VarId),
    /// `v = gep base, field`.
    Gep(VarId, u32),
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Item {
    Stmt(StmtId),
    /// A store whose incoming definition of one object changed.
    StoreObj(StmtId, MemId),
    MemNode(VfNodeId),
    Var(VarId),
}

struct Solver<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    svfg: &'a Svfg,
    pt_vars: Vec<PtsSet>,
    pt_defs: HashMap<(VfNodeId, MemId), PtsSet>,
    var_sources: Vec<Vec<VarSource>>,
    /// Statements to reprocess when a variable changes (syntactic uses plus
    /// synthetic uses: call sites consuming a return variable).
    var_dependents: Vec<Vec<Item>>,
    /// Reaching-definition predecessors indexed by (node, object): avoids
    /// rescanning a node's full predecessor list per object.
    preds_by_obj: HashMap<(VfNodeId, MemId), Vec<VfNodeId>>,
    work: Vec<Item>,
    queued: HashMap<Item, ()>,
    stats: SolverStats,
}

impl<'a> Solver<'a> {
    fn new(module: &'a Module, pre: &'a PreAnalysis, svfg: &'a Svfg) -> Self {
        let mut preds_by_obj: HashMap<(VfNodeId, MemId), Vec<VfNodeId>> = HashMap::new();
        for n in svfg.node_ids() {
            for &(pred, o) in svfg.preds(n) {
                preds_by_obj.entry((n, o)).or_default().push(pred);
            }
        }
        let mut solver = Solver {
            module,
            pre,
            svfg,
            pt_vars: vec![PtsSet::new(); module.var_count()],
            pt_defs: HashMap::new(),
            var_sources: vec![Vec::new(); module.var_count()],
            var_dependents: vec![Vec::new(); module.var_count()],
            preds_by_obj,
            work: Vec::new(),
            queued: HashMap::new(),
            stats: SolverStats::default(),
        };
        solver.build_sources();
        solver
    }

    /// Collects the complete source list per variable and the dependency
    /// edges that drive recomputation.
    fn build_sources(&mut self) {
        // Syntactic uses: a statement re-evaluates when an operand changes.
        for (sid, stmt) in self.module.stmts() {
            for u in stmt.uses() {
                self.var_dependents[u.index()].push(Item::Stmt(sid));
            }
        }
        let cg = self.pre.call_graph();
        // Per-function return variables.
        let returns: Vec<Vec<VarId>> = self
            .module
            .funcs()
            .map(|f| {
                f.blocks()
                    .filter_map(|(_, b)| match b.term {
                        Terminator::Ret(Some(v)) => Some(v),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for (sid, stmt) in self.module.stmts() {
            match &stmt.kind {
                StmtKind::Addr { dst, obj } => {
                    let m = self.pre.objects().base(*obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                }
                StmtKind::Copy { dst, src } => {
                    self.var_sources[dst.index()].push(VarSource::Var(*src));
                }
                StmtKind::Phi { dst, arms } => {
                    for arm in arms {
                        self.var_sources[dst.index()].push(VarSource::Var(arm.var));
                    }
                }
                StmtKind::Load { dst, ptr } => {
                    self.var_sources[dst.index()].push(VarSource::LoadAt(sid, *ptr));
                }
                StmtKind::Gep { dst, base, field } => {
                    self.var_sources[dst.index()].push(VarSource::Gep(*base, *field));
                }
                StmtKind::Call { args, dst, .. } => {
                    for callee in cg.targets(sid) {
                        let params = &self.module.func(callee).params;
                        for (&a, &p) in args.iter().zip(params.iter()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_dependents[a.index()].push(Item::Var(p));
                        }
                        if let Some(d) = dst {
                            if !self.module.func(callee).is_external {
                                for &r in &returns[callee.index()] {
                                    self.var_sources[d.index()].push(VarSource::Var(r));
                                    self.var_dependents[r.index()].push(Item::Var(*d));
                                }
                            }
                        }
                    }
                }
                StmtKind::Fork {
                    dst,
                    arg,
                    handle_obj,
                    ..
                } => {
                    let m = self.pre.objects().base(*handle_obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                    for callee in cg.targets(sid) {
                        let params = &self.module.func(callee).params;
                        if let (Some(&a), Some(&p)) = (arg.as_ref(), params.first()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_dependents[a.index()].push(Item::Var(p));
                        }
                    }
                }
                StmtKind::Store { .. }
                | StmtKind::Join { .. }
                | StmtKind::Lock { .. }
                | StmtKind::Unlock { .. } => {}
            }
        }
    }

    fn push(&mut self, item: Item) {
        if self.queued.insert(item, ()).is_none() {
            self.work.push(item);
        }
    }

    /// Merge of the reaching definitions of `o` at node `n`.
    fn pt_in(&self, n: VfNodeId, o: MemId) -> PtsSet {
        let mut set = PtsSet::new();
        if let Some(preds) = self.preds_by_obj.get(&(n, o)) {
            for &pred in preds {
                if let Some(p) = self.pt_defs.get(&(pred, o)) {
                    set.union_in_place(p);
                }
            }
        }
        set
    }

    /// Re-evaluates `v` from its full source list and replaces its set.
    fn recompute_var(&mut self, v: VarId) {
        let mut new = PtsSet::new();
        for source in self.var_sources[v.index()].clone() {
            match source {
                VarSource::Obj(m) => {
                    new.insert(m);
                }
                VarSource::Var(src) => {
                    new.union_in_place(&self.pt_vars[src.index()]);
                }
                VarSource::LoadAt(sid, ptr) => {
                    if let Some(node) = self.svfg.stmt_node(sid) {
                        for o in self.pt_vars[ptr.index()].clone().iter() {
                            new.union_in_place(&self.pt_in(node, o));
                        }
                    }
                }
                VarSource::Gep(base, field) => {
                    for o in self.pt_vars[base.index()].clone().iter() {
                        new.insert(self.pre.objects().field_existing(o, field));
                    }
                }
            }
        }
        if new != self.pt_vars[v.index()] {
            self.pt_vars[v.index()] = new;
            for dep in self.var_dependents[v.index()].clone() {
                self.push(dep);
            }
        }
    }

    /// Replaces `pt(n, o)`; on change, pushes the `o`-successors.
    fn set_def(&mut self, n: VfNodeId, o: MemId, new: PtsSet) {
        let changed = match self.pt_defs.get(&(n, o)) {
            Some(old) => *old != new,
            None => !new.is_empty(),
        };
        if !changed {
            return;
        }
        self.pt_defs.insert((n, o), new);
        let succs: Vec<VfNodeId> = self
            .svfg
            .succs(n)
            .iter()
            .filter(|&&(_, label)| label == o)
            .map(|&(s, _)| s)
            .collect();
        for s in succs {
            match self.svfg.kind(s) {
                VfNodeKind::Stmt(stmt) => {
                    if matches!(self.module.stmt(stmt).kind, StmtKind::Store { .. }) {
                        self.push(Item::StoreObj(stmt, o));
                    } else {
                        self.push(Item::Stmt(stmt));
                    }
                }
                _ => self.push(Item::MemNode(s)),
            }
        }
    }

    fn process_stmt(&mut self, sid: StmtId) {
        let stmt = self.module.stmt(sid);
        match &stmt.kind {
            // [P-STORE] + [P-SU/WU].
            StmtKind::Store { .. } => {
                let chi: Vec<MemId> = self.svfg.annotations().chi(sid).iter().collect();
                for o in chi {
                    self.process_store_obj(sid, o);
                }
            }
            // [P-LOAD], [P-ADDR], [P-COPY], [P-PHI], gep and call/fork
            // bindings: all funnel through the defined variables' sources.
            StmtKind::Call { args, dst, .. } => {
                let targets: Vec<_> = self.pre.call_graph().targets(sid).collect();
                let _ = args;
                for callee in targets {
                    for p in self.module.func(callee).params.clone() {
                        self.recompute_var(p);
                    }
                }
                if let Some(d) = dst {
                    self.recompute_var(*d);
                }
            }
            StmtKind::Fork { dst, .. } => {
                let targets: Vec<_> = self.pre.call_graph().targets(sid).collect();
                for callee in targets {
                    for p in self.module.func(callee).params.clone() {
                        self.recompute_var(p);
                    }
                }
                self.recompute_var(*dst);
            }
            _ => {
                if let Some(d) = stmt.def() {
                    self.recompute_var(d);
                }
            }
        }
    }

    /// Re-evaluates one object's outgoing definition at a store
    /// ([P-STORE] + [P-SU/WU] for a single `o`).
    fn process_store_obj(&mut self, sid: StmtId, o: MemId) {
        let StmtKind::Store { ptr, val } = self.module.stmt(sid).kind else {
            return;
        };
        let Some(node) = self.svfg.stmt_node(sid) else {
            return;
        };
        let ptr_pts = &self.pt_vars[ptr.index()];
        let written = ptr_pts.contains(o);
        let strong = ptr_pts
            .as_singleton()
            .is_some_and(|s| self.pre.objects().is_singleton(s));
        let out = if written && strong {
            // kill(s, p) = {o}: the old contents die.
            self.stats.strong_updates += 1;
            self.pt_vars[val.index()].clone()
        } else {
            let mut out = self.pt_in(node, o);
            if written {
                self.stats.weak_updates += 1;
                out.union_in_place(&self.pt_vars[val.index()].clone());
            }
            out
        };
        self.set_def(node, o, out);
    }

    /// Intermediate SVFG nodes replace their value with the merge of their
    /// reaching definitions.
    fn process_mem_node(&mut self, n: VfNodeId) {
        let obj = match self.svfg.kind(n) {
            VfNodeKind::MemPhi { obj, .. }
            | VfNodeKind::FormalIn { obj, .. }
            | VfNodeKind::FormalOut { obj, .. }
            | VfNodeKind::ActualOut { obj, .. }
            | VfNodeKind::ThreadJunction { obj } => obj,
            VfNodeKind::Stmt(_) => return,
        };
        let incoming = self.pt_in(n, obj);
        self.set_def(n, obj, incoming);
    }

    fn run(mut self) -> SparseResult {
        for sid in self.module.stmt_ids() {
            self.push(Item::Stmt(sid));
        }
        // Termination backstop: the recompute semantics converge after the
        // bounded strong/weak flips, but the bound is generous; a blow-out
        // indicates an implementation bug and should fail loudly rather
        // than spin forever.
        let limit =
            50_000usize.saturating_mul(self.module.stmt_count() + self.svfg.node_count() + 64);
        while let Some(item) = self.work.pop() {
            self.queued.remove(&item);
            self.stats.processed += 1;
            assert!(
                self.stats.processed <= limit,
                "sparse solver failed to converge after {limit} items"
            );
            match item {
                Item::Stmt(s) => self.process_stmt(s),
                Item::StoreObj(s, o) => self.process_store_obj(s, o),
                Item::MemNode(n) => self.process_mem_node(n),
                Item::Var(v) => self.recompute_var(v),
            }
        }
        self.stats.var_pts_entries = self.pt_vars.iter().map(PtsSet::len).sum();
        self.stats.def_pts_entries = self.pt_defs.values().map(PtsSet::len).sum();
        SparseResult {
            pt_vars: self.pt_vars,
            pt_defs: self.pt_defs,
            stats: self.stats,
        }
    }
}

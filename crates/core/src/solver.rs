//! The sparse flow-sensitive points-to solver — paper §3.4, Figure 10.
//!
//! Points-to facts propagate **only along the pre-computed def-use chains**:
//! top-level variables through the partial-SSA def-use maps (rules
//! `P-ADDR`/`P-COPY`/`P-PHI`), address-taken objects through the SVFG's
//! indirect edges (`P-LOAD`/`P-STORE`), with strong updates at stores whose
//! pointer resolves to a unique singleton object (`P-SU/WU` and the `kill`
//! function). Thread-aware edges appended by the interference phases are
//! ordinary indirect edges here — which is exactly why a strong update
//! remains sound: `[THREAD-VF]` added a direct edge from every MHP store to
//! every MHP access, so a kill at one store cannot hide another thread's
//! write.
//!
//! # Difference propagation
//!
//! Each worklist item carries only the **delta** since its last visit
//! (Hardekopf–Lin style): when a variable or object definition grows, the
//! new members alone flow along its def-use edges into per-target pending
//! sets, and a visited item unions its pending delta into its current set.
//! Full recompute-and-replace survives solely as the fallback for the
//! non-monotone cases introduced by strong updates — a store's output
//! *shrinks* when its pointer's points-to set becomes a known singleton.
//! Each store tracks its pointer through a `∅ → singleton → multi` phase
//! flag ([`StorePhase`]); only the phase transitions (and explicit
//! non-monotone replacements, which cascade a recompute downstream) fall
//! back to re-evaluating a definition from its complete inputs, so the
//! fallback fires a bounded number of times per store. At quiescence every
//! dataflow equation holds exactly, so the solver reaches the same fixpoint
//! as pure recompute-and-replace — [`crate::recompute`] keeps that solver
//! as the equivalence oracle.
//!
//! # Priority order
//!
//! The worklist is an [`IndexedPriorityQueue`](crate::queue) keyed on the
//! topological position of each item's SCC in the condensation of the
//! combined def-use graph ([`Svfg::solve_order`]): definitions are
//! processed before their transitive uses wherever the graph is acyclic,
//! so a fact crosses each region once per round instead of rippling in
//! LIFO order.
//!
//! # Interned points-to store
//!
//! All points-to sets live in a [`PtsPool`] of hash-consed immutable sets;
//! the solver holds one 4-byte [`PtsRef`] per variable and per object
//! definition, and updates are copy-on-write handle swaps. The pool is
//! compacted down to the live sets when the solver finishes, so the final
//! [`SparseResult::pts_bytes`] reflects the retained state while
//! [`SolverStats::peak_pts_bytes`] records the in-flight peak.
//!
//! # Parallel solve
//!
//! [`solve_par`] runs the same fixpoint level-synchronously: the worklist
//! is keyed on the topological *depth* of each item's SCC
//! ([`fsam_mssa::topo::TopoOrder::level`]) instead of the total priority
//! order, one [`IndexedPriorityQueue::pop_level`] drains everything at the
//! current depth, and the batch's equations are *evaluated* concurrently
//! against the frozen state on the worker pool ([`crate::par`]) — each
//! worker interning into a thread-local [`PtsPool`] arena. The arenas are
//! then merged (handles remapped) into the global pool, and the results
//! *applied* sequentially in ascending item order by replaying the exact
//! sequential mutation paths. A precomputed evaluation is only used when
//! it provably matches what the inline visit would compute (pending-delta
//! length unchanged, mode unchanged, and — for recomputes — no other
//! batch member in the same SCC); otherwise the item falls back to the
//! inline visit. Evaluation is pure and application is deterministic, so
//! the fixpoint *and the statistics* are identical for every thread count
//! ≥ 2, and identical in points-to content to the sequential solver —
//! which [`crate::recompute`] referees as the (deliberately sequential)
//! equivalence oracle.

use std::collections::HashMap;
use std::time::Instant;

use fsam_andersen::PreAnalysis;
use fsam_ir::stmt::{StmtKind, Terminator};
use fsam_ir::{Module, StmtId, VarId};
use fsam_mssa::{NodeId as VfNodeId, NodeKind as VfNodeKind, Svfg};
use fsam_pts::{MemId, PtsPool, PtsRef, PtsSet};
use fsam_trace::{FieldValue, Recorder, SpanId};

use crate::par;
use crate::queue::IndexedPriorityQueue;

/// Solver statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Worklist items processed.
    pub processed: usize,
    /// Items processed in delta mode (pending difference only).
    pub delta_items: usize,
    /// Items processed in recompute mode (full re-evaluation fallback).
    pub recompute_items: usize,
    /// Store evaluations that applied a strong update.
    pub strong_updates: usize,
    /// Store evaluations that applied a weak update.
    pub weak_updates: usize,
    /// Final points-to pairs over top-level variables.
    pub var_pts_entries: usize,
    /// Final points-to pairs at object definitions.
    pub def_pts_entries: usize,
    /// Peak heap bytes of the points-to store before end-of-solve
    /// compaction (pool plus the per-variable/per-definition tables).
    pub peak_pts_bytes: usize,
}

/// The result of the sparse flow-sensitive analysis.
///
/// `PartialEq` compares the complete points-to state (per-variable and
/// per-definition sets plus statistics) — the driver-equivalence tests use
/// it to check that staged and standalone runs agree exactly. Use
/// [`points_to_eq`](SparseResult::points_to_eq) to compare sets only
/// (e.g. across solvers whose item counts legitimately differ).
#[derive(Debug)]
pub struct SparseResult {
    pool: PtsPool,
    pt_vars: Vec<PtsRef>,
    /// First slot of each SVFG node; `len == node_count + 1`.
    slot_base: Vec<u32>,
    /// Object defined by each slot, ascending within a node.
    slot_obj: Vec<MemId>,
    slot_out: Vec<PtsRef>,
    /// Statistics.
    pub stats: SolverStats,
}

impl SparseResult {
    /// Flow-sensitive points-to set of a top-level variable (its unique SSA
    /// definition makes one set per variable flow-sensitive).
    pub fn pt_var(&self, v: VarId) -> &PtsSet {
        self.pool.get(self.pt_vars[v.index()])
    }

    /// Points-to set of object `o` immediately after its definition at SVFG
    /// node `n` (`pt(s, o)` of Figure 10).
    pub fn pt_def(&self, n: VfNodeId, o: MemId) -> &PtsSet {
        static EMPTY: PtsSet = PtsSet::new();
        let i = n.index();
        if i + 1 >= self.slot_base.len() {
            return &EMPTY;
        }
        let (s, e) = (self.slot_base[i] as usize, self.slot_base[i + 1] as usize);
        match self.slot_obj[s..e].binary_search(&o) {
            Ok(k) => self.pool.get(self.slot_out[s + k]),
            Err(_) => &EMPTY,
        }
    }

    /// Heap bytes held by the final points-to state (memory metering): the
    /// compacted pool plus the dense per-variable and per-definition tables.
    pub fn pts_bytes(&self) -> usize {
        self.pool.heap_bytes()
            + table_bytes(
                &self.pt_vars,
                &self.slot_base,
                &self.slot_obj,
                &self.slot_out,
            )
    }

    /// Whether two results assign the same points-to sets everywhere,
    /// ignoring statistics. Definitions holding the empty set compare equal
    /// to absent definitions.
    pub fn points_to_eq(&self, other: &SparseResult) -> bool {
        if self.pt_vars.len() != other.pt_vars.len() {
            return false;
        }
        for (&a, &b) in self.pt_vars.iter().zip(other.pt_vars.iter()) {
            if self.pool.get(a) != other.pool.get(b) {
                return false;
            }
        }
        let nodes = self
            .slot_base
            .len()
            .max(other.slot_base.len())
            .saturating_sub(1);
        for n in 0..nodes {
            let mut a = self.nonempty_defs_at(n);
            let mut b = other.nonempty_defs_at(n);
            loop {
                match (a.next(), b.next()) {
                    (None, None) => break,
                    (Some((oa, sa)), Some((ob, sb))) if oa == ob && sa == sb => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// The non-empty `(object, set)` definitions at node `n`, ascending.
    fn nonempty_defs_at(&self, n: usize) -> impl Iterator<Item = (MemId, &PtsSet)> + '_ {
        let (s, e) = if n + 1 < self.slot_base.len() {
            (self.slot_base[n] as usize, self.slot_base[n + 1] as usize)
        } else {
            (0, 0)
        };
        (s..e).filter_map(move |k| {
            let set = self.pool.get(self.slot_out[k]);
            (!set.is_empty()).then_some((self.slot_obj[k], set))
        })
    }

    /// The interned pool backing every points-to set in this result.
    ///
    /// Exposed (together with [`var_handles`](SparseResult::var_handles) and
    /// [`slot_tables`](SparseResult::slot_tables)) so the snapshot layer can
    /// serialize the result as flat tables of handles; [`PtsPool::sets`] is
    /// the pool's stable serialization order.
    pub fn pool(&self) -> &PtsPool {
        &self.pool
    }

    /// Per-variable points-to handles into [`pool`](SparseResult::pool),
    /// indexed by [`VarId::index`].
    pub fn var_handles(&self) -> &[PtsRef] {
        &self.pt_vars
    }

    /// The per-definition slot tables `(slot_base, slot_obj, slot_out)`:
    /// node `n`'s definitions occupy slots `slot_base[n]..slot_base[n + 1]`,
    /// each defining `slot_obj[k]` with output set `slot_out[k]`.
    pub fn slot_tables(&self) -> (&[u32], &[MemId], &[PtsRef]) {
        (&self.slot_base, &self.slot_obj, &self.slot_out)
    }

    /// Rebuilds a result from serialized tables, validating every invariant
    /// the accessors rely on: `slot_base` non-empty, monotone and ending at
    /// the slot count, `slot_obj`/`slot_out` the same length, objects
    /// strictly ascending within each node's range (binary-search order),
    /// and every handle interned in `pool`. Violations are reported as
    /// messages, never panics, so corrupted snapshots fail closed.
    pub fn from_tables(
        pool: PtsPool,
        pt_vars: Vec<PtsRef>,
        slot_base: Vec<u32>,
        slot_obj: Vec<MemId>,
        slot_out: Vec<PtsRef>,
        stats: SolverStats,
    ) -> Result<SparseResult, String> {
        if slot_base.is_empty() {
            return Err("slot_base must hold at least the terminating entry".into());
        }
        if slot_obj.len() != slot_out.len() {
            return Err(format!(
                "slot tables disagree: {} objects vs {} outputs",
                slot_obj.len(),
                slot_out.len()
            ));
        }
        if *slot_base.last().unwrap() as usize != slot_obj.len() {
            return Err(format!(
                "slot_base ends at {} but there are {} slots",
                slot_base.last().unwrap(),
                slot_obj.len()
            ));
        }
        for w in slot_base.windows(2) {
            if w[0] > w[1] {
                return Err("slot_base is not monotone".into());
            }
        }
        for n in 0..slot_base.len() - 1 {
            let (s, e) = (slot_base[n] as usize, slot_base[n + 1] as usize);
            if !slot_obj[s..e].windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "slot objects of node {n} are not strictly ascending"
                ));
            }
        }
        for &r in pt_vars.iter().chain(slot_out.iter()) {
            if pool.handle(r.index()).is_none() {
                return Err(format!(
                    "handle p{} out of range (pool holds {} sets)",
                    r.index(),
                    pool.set_count()
                ));
            }
        }
        Ok(SparseResult {
            pool,
            pt_vars,
            slot_base,
            slot_obj,
            slot_out,
            stats,
        })
    }

    /// Builds a result from loose state (the recompute oracle's shape).
    pub(crate) fn from_state(
        pt_var_sets: Vec<PtsSet>,
        pt_defs: HashMap<(VfNodeId, MemId), PtsSet>,
        node_count: usize,
        stats: SolverStats,
    ) -> SparseResult {
        let mut pool = PtsPool::new();
        let pt_vars = pt_var_sets.into_iter().map(|s| pool.intern(s)).collect();
        let mut keys: Vec<(VfNodeId, MemId)> = pt_defs.keys().copied().collect();
        keys.sort_unstable_by_key(|&(n, o)| (n.index(), o));
        let mut slot_base = Vec::with_capacity(node_count + 1);
        let mut slot_obj = Vec::with_capacity(keys.len());
        let mut slot_out = Vec::with_capacity(keys.len());
        let mut it = keys.iter().peekable();
        for n in 0..node_count {
            slot_base.push(slot_obj.len() as u32);
            while let Some(&&(kn, o)) = it.peek() {
                if kn.index() != n {
                    break;
                }
                it.next();
                slot_obj.push(o);
                slot_out.push(pool.intern(pt_defs[&(kn, o)].clone()));
            }
        }
        slot_base.push(slot_obj.len() as u32);
        let mut result = SparseResult {
            pool,
            pt_vars,
            slot_base,
            slot_obj,
            slot_out,
            stats,
        };
        result.stats.peak_pts_bytes = result.pts_bytes();
        result
    }
}

impl PartialEq for SparseResult {
    fn eq(&self, other: &SparseResult) -> bool {
        self.stats == other.stats && self.points_to_eq(other)
    }
}

impl Eq for SparseResult {}

fn table_bytes(
    pt_vars: &[PtsRef],
    slot_base: &[u32],
    slot_obj: &[MemId],
    slot_out: &[PtsRef],
) -> usize {
    std::mem::size_of_val(pt_vars)
        + std::mem::size_of_val(slot_base)
        + std::mem::size_of_val(slot_obj)
        + std::mem::size_of_val(slot_out)
}

/// Runs the sparse solver over the (thread-aware) SVFG.
pub fn solve(module: &Module, pre: &PreAnalysis, svfg: &Svfg) -> SparseResult {
    Solver::new(module, pre, svfg).run()
}

/// Runs the sparse solver with tracing: a `solve` span under `parent`
/// carrying the worklist counters (the `BENCH_solver.json` columns under
/// the `solve.` namespace) plus the pool's intern hit/miss totals. When
/// the recorder has explain events enabled, every points-to member
/// introduction is additionally recorded as a `prop` event — the
/// substrate for [`fsam_trace::why_points_to`].
pub fn solve_traced(
    module: &Module,
    pre: &PreAnalysis,
    svfg: &Svfg,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> SparseResult {
    if !rec.is_enabled() {
        return solve(module, pre, svfg);
    }
    let span = rec.span_under(parent, "solve");
    let mut solver = Solver::new(module, pre, svfg);
    solver.trace = Some(rec);
    solver.trace_span = span.id();
    solver.trace_explain = rec.explain_enabled();
    let result = solver.run();
    export_solver_counters(&span, &result.stats);
    result
}

/// Batches below this size are applied inline without touching the worker
/// pool: spawning costs more than the work, and small levels dominate the
/// tails of every program's level profile.
const PAR_MIN_BATCH: usize = 24;

/// Items per work-stealing task: amortizes queue traffic over a few
/// evaluations while leaving enough tasks to rebalance skewed levels.
const PAR_CHUNK: usize = 16;

/// Runs the sparse solver with the level-synchronous parallel schedule on
/// `threads` workers. Falls back to the exact sequential [`solve`] when
/// `threads <= 1`. The fixpoint is identical to the sequential solver's
/// (see [`SparseResult::points_to_eq`]); the full result including
/// statistics is identical across all thread counts ≥ 2.
pub fn solve_par(module: &Module, pre: &PreAnalysis, svfg: &Svfg, threads: usize) -> SparseResult {
    if threads <= 1 {
        return solve(module, pre, svfg);
    }
    Solver::with_schedule(module, pre, svfg, true)
        .run_par(threads, PAR_MIN_BATCH)
        .0
}

/// [`solve_par`] with tracing: exports the `solve.*` counters plus the
/// parallel schedule's own (`par.workers`, `par.steals`, `par.levels`,
/// `par.merge_us`, `par.max_level_width`). Explain-mode tracing needs the
/// ordered propagation-event stream, so it routes to the sequential
/// [`solve_traced`], as does `threads <= 1`.
pub fn solve_par_traced(
    module: &Module,
    pre: &PreAnalysis,
    svfg: &Svfg,
    threads: usize,
    rec: &Recorder,
    parent: Option<SpanId>,
) -> SparseResult {
    if threads <= 1 || (rec.is_enabled() && rec.explain_enabled()) {
        return solve_traced(module, pre, svfg, rec, parent);
    }
    if !rec.is_enabled() {
        return solve_par(module, pre, svfg, threads);
    }
    let span = rec.span_under(parent, "solve");
    let mut solver = Solver::with_schedule(module, pre, svfg, true);
    solver.trace = Some(rec);
    solver.trace_span = span.id();
    let (result, ps) = solver.run_par(threads, PAR_MIN_BATCH);
    export_solver_counters(&span, &result.stats);
    span.counter("par.workers", ps.workers as u64);
    span.counter("par.steals", ps.steals);
    span.counter("par.levels", ps.levels);
    span.counter("par.merge_us", ps.merge_us);
    span.counter("par.max_level_width", ps.max_level_width);
    result
}

/// Exports a [`SolverStats`] onto `span` with the canonical counter
/// names. Shared by the sparse solver and the recompute oracle so their
/// traces diff directly.
pub(crate) fn export_solver_counters(span: &fsam_trace::Span<'_>, s: &SolverStats) {
    span.counter("solve.worklist_items", s.processed as u64);
    span.counter("solve.delta_items", s.delta_items as u64);
    span.counter("solve.recompute_items", s.recompute_items as u64);
    span.counter("solve.strong_updates", s.strong_updates as u64);
    span.counter("solve.weak_updates", s.weak_updates as u64);
    span.counter("solve.var_pts_entries", s.var_pts_entries as u64);
    span.counter("solve.def_pts_entries", s.def_pts_entries as u64);
    span.counter("solve.peak_pts_bytes", s.peak_pts_bytes as u64);
}

/// Where a top-level variable's values come from.
#[derive(Copy, Clone, Debug)]
enum VarSource {
    /// `v = &obj` (also the fork handle).
    Obj(MemId),
    /// `v ⊇ src` (copy, phi arm, argument or return binding).
    Var(VarId),
    /// `v = *ptr` at the given load.
    LoadAt(StmtId, VarId),
    /// `v = gep base, field`.
    Gep(VarId, u32),
}

/// A forward dependency of a variable: what a growth of `pt(v)` feeds.
#[derive(Copy, Clone, Debug)]
enum VarDep {
    /// `tgt ⊇ v` directly.
    Flow(VarId),
    /// `tgt ⊇ field(v, f)`.
    Gep(VarId, u32),
    /// `v` is the pointer of the load at `.0` defining `.1`.
    LoadPtr(StmtId, VarId),
    /// `v` is the pointer of the store at `.0`.
    StorePtr(StmtId),
    /// `v` is the stored value of the store at `.0`.
    StoreVal(StmtId),
}

/// What a slot (one object definition at one SVFG node) computes.
#[derive(Copy, Clone, Debug)]
enum SlotKind {
    /// A store's chi output: `P-STORE` + `P-SU/WU` for one object.
    Store { ptr: VarId, val: VarId },
    /// A merge node (mem-phi, formal/actual in/out, thread junction):
    /// output = union of reaching definitions.
    Merge,
}

/// The observed shape of a store pointer's points-to set. Only the
/// transitions of this flag (∅ → singleton → multi, plus non-monotone
/// replacements) trigger the recompute fallback at the store's slots.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum StorePhase {
    /// `pt(p) = ∅`: nothing written yet, every slot passes its input.
    Empty,
    /// `pt(p) = {o}` with `o` a singleton object: slot `o` is strong.
    Strong(MemId),
    /// Anything else: written slots update weakly.
    Weak,
}

/// Worklist modes. `RECOMP` supersedes `DELTA` for a queued item.
const DELTA: u8 = 1;
const RECOMP: u8 = 2;

/// One batch item of a level, snapshotted before evaluation.
#[derive(Copy, Clone)]
struct EvalTask {
    id: u32,
    /// The item's mode at snapshot time (validated again at apply).
    mode: u8,
    /// Whether a recompute evaluation may be precomputed: the item's SCC
    /// has no other member in this batch, so no same-level apply can write
    /// its inputs. Items without a tracked SCC are never precomputed.
    safe: bool,
}

/// How a recomputed set relates to the current one (the three-way split of
/// the sequential recompute visits), with replacement sets interned in the
/// evaluating worker's arena.
enum RecompOut {
    /// Unchanged: nothing to swap, nothing to forward.
    Equal,
    /// Monotone growth: swap the handle, forward `fresh` as a delta.
    Grew { new: PtsRef, fresh: PtsSet },
    /// Non-monotone replacement: swap the handle, cascade recomputes.
    Replace { new: PtsRef },
}

/// A precomputed evaluation of one batch item.
enum Eval {
    /// No precomputation — apply runs the sequential visit inline.
    Inline,
    /// Delta visit of a variable: the grown set and the genuinely new bits,
    /// valid while the pending delta still has `pend_len` members.
    VarDelta {
        grown: PtsRef,
        fresh: PtsSet,
        pend_len: usize,
    },
    /// Recompute visit of a variable.
    VarRecomp(RecompOut),
    /// Delta visit of a slot (strong/weak accounting happens at apply,
    /// against the live pointer set).
    SlotDelta {
        grown: PtsRef,
        fresh: PtsSet,
        pend_len: usize,
    },
    /// Recompute visit of a slot, with its strong/weak classification.
    SlotRecomp {
        out: RecompOut,
        strong: bool,
        weak: bool,
    },
}

/// Counters describing one parallel solve's schedule. Scheduling artifacts
/// (wall-clock, steals) live here rather than in [`SolverStats`], which
/// stays bit-identical across thread counts.
#[derive(Clone, Copy, Debug, Default)]
struct ParSolveStats {
    /// Peak workers engaged by any level.
    workers: usize,
    /// Tasks taken from another worker's shard.
    steals: u64,
    /// Levels drained (worklist rounds).
    levels: u64,
    /// Time merging worker arenas into the global pool, in µs.
    merge_us: u64,
    /// Widest level encountered.
    max_level_width: u64,
    /// Precomputed evaluations discarded at apply time (mode flip or
    /// pending growth after the snapshot) plus items planned inline.
    stale_evals: u64,
}

struct Solver<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    svfg: &'a Svfg,
    pool: PtsPool,
    pt_vars: Vec<PtsRef>,
    var_sources: Vec<Vec<VarSource>>,
    var_deps: Vec<Vec<VarDep>>,
    /// Slot tables: one slot per object definition, grouped per SVFG node
    /// with ascending objects (see [`SparseResult`]).
    slot_base: Vec<u32>,
    slot_obj: Vec<MemId>,
    slot_out: Vec<PtsRef>,
    slot_node: Vec<u32>,
    slot_kind: Vec<SlotKind>,
    /// Per-statement store phase (meaningful for stores only).
    store_phase: Vec<StorePhase>,
    /// Reaching-definition predecessor *slots* per (node, object).
    preds_by_obj: HashMap<(u32, MemId), Vec<u32>>,
    /// Pending deltas, one accumulator per variable / per slot.
    pending_var: Vec<PtsSet>,
    pending_slot: Vec<PtsSet>,
    /// Queued mode per item (vars `0..V`, then slots `V..V+K`).
    mode: Vec<u8>,
    queue: IndexedPriorityQueue,
    v_count: usize,
    /// Condensed SCC per item (parallel schedule only; `u32::MAX` marks
    /// items that must always be applied inline — variables without a def
    /// site, whose evaluation inputs are not tracked by the SCC graph).
    item_comp: Vec<u32>,
    /// Number of condensed components (sizes `item_comp`'s stamp arrays).
    comp_count: usize,
    stats: SolverStats,
    /// Tracing sink (None when disabled — the hot loop pays nothing).
    trace: Option<&'a Recorder>,
    /// Span the counters and prop events attach to.
    trace_span: Option<SpanId>,
    /// Whether to record per-member `prop` introduction events.
    trace_explain: bool,
}

impl<'a> Solver<'a> {
    fn new(module: &'a Module, pre: &'a PreAnalysis, svfg: &'a Svfg) -> Self {
        Self::with_schedule(module, pre, svfg, false)
    }

    /// Builds a solver whose worklist is keyed either on the total
    /// topological priority order (`level_keyed == false`, the sequential
    /// schedule) or on the coarser per-SCC depth (`level_keyed == true`,
    /// the parallel level-synchronous schedule, where independent SCCs
    /// share a key and drain together via [`IndexedPriorityQueue::pop_level`]).
    fn with_schedule(
        module: &'a Module,
        pre: &'a PreAnalysis,
        svfg: &'a Svfg,
        level_keyed: bool,
    ) -> Self {
        let s_count = module.stmt_count();
        let n_count = svfg.node_count();
        let v_count = module.var_count();

        // Slot layout: stores get one slot per chi / incident-edge object,
        // merge nodes one slot for their object. Plain statement nodes
        // (loads, calls, synthetic thread-edge endpoints) define nothing.
        let mut slot_base: Vec<u32> = Vec::with_capacity(n_count + 1);
        let mut slot_obj: Vec<MemId> = Vec::new();
        let mut slot_node: Vec<u32> = Vec::new();
        let mut slot_kind: Vec<SlotKind> = Vec::new();
        for n in svfg.node_ids() {
            slot_base.push(slot_obj.len() as u32);
            match svfg.kind(n) {
                VfNodeKind::Stmt(sid) if sid.index() < s_count => {
                    if let StmtKind::Store { ptr, val } = module.stmt(sid).kind {
                        let mut objs: Vec<MemId> = svfg.annotations().chi(sid).iter().collect();
                        for &(_, o) in svfg.preds(n).iter().chain(svfg.succs(n)) {
                            objs.push(o);
                        }
                        objs.sort_unstable();
                        objs.dedup();
                        for o in objs {
                            slot_obj.push(o);
                            slot_node.push(n.index() as u32);
                            slot_kind.push(SlotKind::Store { ptr, val });
                        }
                    }
                }
                VfNodeKind::MemPhi { obj, .. }
                | VfNodeKind::FormalIn { obj, .. }
                | VfNodeKind::FormalOut { obj, .. }
                | VfNodeKind::ActualOut { obj, .. }
                | VfNodeKind::ThreadJunction { obj } => {
                    slot_obj.push(obj);
                    slot_node.push(n.index() as u32);
                    slot_kind.push(SlotKind::Merge);
                }
                VfNodeKind::Stmt(_) => {}
            }
        }
        slot_base.push(slot_obj.len() as u32);
        let k_count = slot_obj.len();

        let mut preds_by_obj: HashMap<(u32, MemId), Vec<u32>> = HashMap::new();
        for n in svfg.node_ids() {
            for &(pred, o) in svfg.preds(n) {
                if let Some(pk) = slot_lookup(&slot_base, &slot_obj, pred.index(), o) {
                    preds_by_obj
                        .entry((n.index() as u32, o))
                        .or_default()
                        .push(pk as u32);
                }
            }
        }

        let order = svfg.solve_order(module, pre.call_graph());
        let (stmt_key, node_key): (&[u32], &[u32]) = if level_keyed {
            (&order.stmt_level, &order.node_level)
        } else {
            (&order.stmt_prio, &order.node_prio)
        };
        let mut var_prio = vec![u32::MAX; v_count];
        for v in module.var_ids() {
            if let Some(d) = svfg.var_def(v) {
                var_prio[v.index()] = stmt_key[d.index()];
            }
        }
        let mut item_comp = vec![u32::MAX; v_count + k_count];
        if level_keyed {
            for v in module.var_ids() {
                if let Some(d) = svfg.var_def(v) {
                    item_comp[v.index()] = order.stmt_comp[d.index()];
                }
            }
            for (k, &n) in slot_node.iter().enumerate() {
                item_comp[v_count + k] = order.node_comp[n as usize];
            }
        }

        let mut solver = Solver {
            module,
            pre,
            svfg,
            pool: PtsPool::new(),
            pt_vars: vec![PtsRef::EMPTY; v_count],
            var_sources: vec![Vec::new(); v_count],
            var_deps: vec![Vec::new(); v_count],
            slot_base,
            slot_obj,
            slot_out: vec![PtsRef::EMPTY; k_count],
            slot_node,
            slot_kind,
            store_phase: vec![StorePhase::Empty; s_count],
            preds_by_obj,
            pending_var: vec![PtsSet::new(); v_count],
            pending_slot: vec![PtsSet::new(); k_count],
            mode: vec![0; v_count + k_count],
            queue: IndexedPriorityQueue::new(Vec::new()),
            v_count,
            item_comp,
            comp_count: order.comp_count,
            stats: SolverStats::default(),
            trace: None,
            trace_span: None,
            trace_explain: false,
        };
        solver.build_sources(stmt_key, &mut var_prio);

        let mut prio = var_prio;
        for &n in &solver.slot_node {
            prio.push(node_key[n as usize]);
        }
        for p in prio.iter_mut() {
            if *p == u32::MAX {
                *p = 0;
            }
        }
        solver.queue = IndexedPriorityQueue::new(prio);
        solver
    }

    /// Collects the complete source list and forward dependencies per
    /// variable. Binding a parameter at a call site also lowers the
    /// parameter's priority to the site's (parameters have no def site).
    fn build_sources(&mut self, stmt_prio: &[u32], var_prio: &mut [u32]) {
        let module = self.module;
        let pre = self.pre;
        let cg = pre.call_graph();
        // Per-function return variables.
        let returns: Vec<Vec<VarId>> = module
            .funcs()
            .map(|f| {
                f.blocks()
                    .filter_map(|(_, b)| match b.term {
                        Terminator::Ret(Some(v)) => Some(v),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for (sid, stmt) in module.stmts() {
            match &stmt.kind {
                StmtKind::Addr { dst, obj } => {
                    let m = pre.objects().base(*obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                }
                StmtKind::Copy { dst, src } => {
                    self.var_sources[dst.index()].push(VarSource::Var(*src));
                    self.var_deps[src.index()].push(VarDep::Flow(*dst));
                }
                StmtKind::Phi { dst, arms } => {
                    for arm in arms {
                        self.var_sources[dst.index()].push(VarSource::Var(arm.var));
                        self.var_deps[arm.var.index()].push(VarDep::Flow(*dst));
                    }
                }
                StmtKind::Load { dst, ptr } => {
                    self.var_sources[dst.index()].push(VarSource::LoadAt(sid, *ptr));
                    self.var_deps[ptr.index()].push(VarDep::LoadPtr(sid, *dst));
                }
                StmtKind::Gep { dst, base, field } => {
                    self.var_sources[dst.index()].push(VarSource::Gep(*base, *field));
                    self.var_deps[base.index()].push(VarDep::Gep(*dst, *field));
                }
                StmtKind::Store { ptr, val } => {
                    self.var_deps[ptr.index()].push(VarDep::StorePtr(sid));
                    self.var_deps[val.index()].push(VarDep::StoreVal(sid));
                }
                StmtKind::Call { args, dst, .. } => {
                    for callee in cg.targets(sid) {
                        let params = &module.func(callee).params;
                        for (&a, &p) in args.iter().zip(params.iter()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_deps[a.index()].push(VarDep::Flow(p));
                            var_prio[p.index()] = var_prio[p.index()].min(stmt_prio[sid.index()]);
                        }
                        if let Some(d) = dst {
                            if !module.func(callee).is_external {
                                for &r in &returns[callee.index()] {
                                    self.var_sources[d.index()].push(VarSource::Var(r));
                                    self.var_deps[r.index()].push(VarDep::Flow(*d));
                                }
                            }
                        }
                    }
                }
                StmtKind::Fork {
                    dst,
                    arg,
                    handle_obj,
                    ..
                } => {
                    let m = pre.objects().base(*handle_obj);
                    self.var_sources[dst.index()].push(VarSource::Obj(m));
                    for callee in cg.targets(sid) {
                        let params = &module.func(callee).params;
                        if let (Some(&a), Some(&p)) = (arg.as_ref(), params.first()) {
                            self.var_sources[p.index()].push(VarSource::Var(a));
                            self.var_deps[a.index()].push(VarDep::Flow(p));
                            var_prio[p.index()] = var_prio[p.index()].min(stmt_prio[sid.index()]);
                        }
                    }
                }
                // Sync intrinsics don't touch pointer memory; atomic dsts
                // have empty points-to by IR contract (DESIGN §1.9).
                StmtKind::Join { .. }
                | StmtKind::Lock { .. }
                | StmtKind::Unlock { .. }
                | StmtKind::Signal { .. }
                | StmtKind::Wait { .. }
                | StmtKind::Broadcast { .. }
                | StmtKind::BarrierInit { .. }
                | StmtKind::BarrierWait { .. }
                | StmtKind::AtomicLoad { .. }
                | StmtKind::AtomicStore { .. }
                | StmtKind::AtomicRmw { .. } => {}
            }
        }
    }

    fn slot_of(&self, node: usize, o: MemId) -> Option<usize> {
        slot_lookup(&self.slot_base, &self.slot_obj, node, o)
    }

    fn push_delta(&mut self, id: usize) {
        if self.mode[id] == 0 {
            self.mode[id] = DELTA;
        }
        self.queue.push(id);
    }

    fn push_recomp(&mut self, id: usize) {
        self.mode[id] = RECOMP;
        self.queue.push(id);
    }

    // ---- explain instrumentation ------------------------------------------
    //
    // When `trace_explain` is on, every points-to member *introduction* is
    // recorded as a `prop` event (the field contract lives in
    // `fsam_trace::explain`). Delta sites emit at the producer when they
    // push a pending delta; recompute sites replay their full inputs after
    // re-evaluation. Together that guarantees coverage: every member of
    // every final set has at least one recorded derivation, so
    // `why_points_to` can always walk a true fact back to its seed.

    /// Records one `prop` event: member `obj` arrived at the destination
    /// (`dst_var` selects variable vs. SVFG-node space) from the source.
    #[allow(clippy::too_many_arguments)]
    fn emit_prop(
        &self,
        dst_var: bool,
        dst: u64,
        obj: MemId,
        src_kind: &'static str,
        src: u64,
        src_obj: MemId,
        via: &'static str,
    ) {
        let Some(rec) = self.trace else { return };
        rec.point(
            self.trace_span,
            "prop",
            vec![
                (
                    "dst_kind".into(),
                    if dst_var { "var" } else { "def" }.into(),
                ),
                ("dst".into(), FieldValue::U64(dst)),
                ("obj".into(), FieldValue::U64(u64::from(obj.raw()))),
                ("src_kind".into(), src_kind.into()),
                ("src".into(), FieldValue::U64(src)),
                ("src_obj".into(), FieldValue::U64(u64::from(src_obj.raw()))),
                ("via".into(), via.into()),
            ],
        );
    }

    /// `merge`/`load` steps become `thread` when the SVFG edge they ride
    /// was appended by the interference phases.
    fn via_of(&self, from_node: usize, to_node: usize, fallback: &'static str) -> &'static str {
        if self.svfg.is_thread_edge(
            VfNodeId::from_index(from_node),
            VfNodeId::from_index(to_node),
        ) {
            "thread"
        } else {
            fallback
        }
    }

    /// Replays `v`'s full source contributions as `prop` events (after a
    /// recompute re-evaluated it from scratch).
    fn trace_var_sources(&self, v: VarId) {
        for source in &self.var_sources[v.index()] {
            match *source {
                VarSource::Obj(m) => {
                    self.emit_prop(
                        true,
                        v.index() as u64,
                        m,
                        "addr",
                        u64::from(m.raw()),
                        m,
                        "addr",
                    );
                }
                VarSource::Var(src) => {
                    for o in self.pool.get(self.pt_vars[src.index()]).iter() {
                        self.emit_prop(
                            true,
                            v.index() as u64,
                            o,
                            "var",
                            src.index() as u64,
                            o,
                            "copy",
                        );
                    }
                }
                VarSource::LoadAt(sid, ptr) => {
                    let Some(node) = self.svfg.stmt_node(sid) else {
                        continue;
                    };
                    for o in self.pool.get(self.pt_vars[ptr.index()]).iter() {
                        let Some(pks) = self.preds_by_obj.get(&(node.index() as u32, o)) else {
                            continue;
                        };
                        for &pk in pks {
                            let pn = self.slot_node[pk as usize] as usize;
                            let via = self.via_of(pn, node.index(), "load");
                            for m in self.pool.get(self.slot_out[pk as usize]).iter() {
                                self.emit_prop(true, v.index() as u64, m, "def", pn as u64, m, via);
                            }
                        }
                    }
                }
                VarSource::Gep(base, field) => {
                    for o in self.pool.get(self.pt_vars[base.index()]).iter() {
                        let f = self.pre.objects().field_existing(o, field);
                        self.emit_prop(
                            true,
                            v.index() as u64,
                            f,
                            "var",
                            base.index() as u64,
                            o,
                            "gep",
                        );
                    }
                }
            }
        }
    }

    /// Replays slot `k`'s full input contributions as `prop` events (after
    /// a recompute re-evaluated it from scratch).
    fn trace_slot_inputs(&self, k: usize) {
        let n = self.slot_node[k] as usize;
        let o = self.slot_obj[k];
        let (written, strong, val) = match self.slot_kind[k] {
            SlotKind::Merge => (false, false, None),
            SlotKind::Store { ptr, val } => {
                let ptr_set = self.pool.get(self.pt_vars[ptr.index()]);
                (
                    ptr_set.contains(o),
                    ptr_set
                        .as_singleton()
                        .is_some_and(|s| self.pre.objects().is_singleton(s)),
                    Some(val),
                )
            }
        };
        if !(written && strong) {
            if let Some(pks) = self.preds_by_obj.get(&(n as u32, o)) {
                for &pk in pks {
                    let pn = self.slot_node[pk as usize] as usize;
                    let via = self.via_of(pn, n, "merge");
                    for m in self.pool.get(self.slot_out[pk as usize]).iter() {
                        self.emit_prop(false, n as u64, m, "def", pn as u64, m, via);
                    }
                }
            }
        }
        if written {
            let val = val.expect("written implies store");
            for m in self.pool.get(self.pt_vars[val.index()]).iter() {
                self.emit_prop(false, n as u64, m, "var", val.index() as u64, m, "store");
            }
        }
    }

    /// Unions the reaching definitions of `o` at node `n` into `acc`.
    fn union_pt_in(&self, node: usize, o: MemId, acc: &mut PtsSet) {
        if let Some(pks) = self.preds_by_obj.get(&(node as u32, o)) {
            for &pk in pks {
                acc.union_in_place(self.pool.get(self.slot_out[pk as usize]));
            }
        }
    }

    /// Merge of the reaching definitions of `o` at node `n`.
    fn pt_in(&self, node: usize, o: MemId) -> PtsSet {
        let mut set = PtsSet::new();
        self.union_pt_in(node, o, &mut set);
        set
    }

    /// Evaluates `v` from its full source list (the recompute equation).
    fn eval_var(&self, v: VarId) -> PtsSet {
        let mut new = PtsSet::new();
        for source in &self.var_sources[v.index()] {
            match *source {
                VarSource::Obj(m) => {
                    new.insert(m);
                }
                VarSource::Var(src) => {
                    new.union_in_place(self.pool.get(self.pt_vars[src.index()]));
                }
                VarSource::LoadAt(sid, ptr) => {
                    if let Some(node) = self.svfg.stmt_node(sid) {
                        for o in self.pool.get(self.pt_vars[ptr.index()]).iter() {
                            self.union_pt_in(node.index(), o, &mut new);
                        }
                    }
                }
                VarSource::Gep(base, field) => {
                    for o in self.pool.get(self.pt_vars[base.index()]).iter() {
                        new.insert(self.pre.objects().field_existing(o, field));
                    }
                }
            }
        }
        new
    }

    /// The phase of a store pointer's current points-to set.
    fn phase_of(&self, ptr: VarId) -> StorePhase {
        let set = self.pool.get(self.pt_vars[ptr.index()]);
        if set.is_empty() {
            StorePhase::Empty
        } else {
            match set.as_singleton() {
                Some(s) if self.pre.objects().is_singleton(s) => StorePhase::Strong(s),
                _ => StorePhase::Weak,
            }
        }
    }

    /// Delta visit of a variable: fold the pending delta in; forward only
    /// the genuinely new members.
    fn delta_var(&mut self, v: VarId) {
        let delta = std::mem::take(&mut self.pending_var[v.index()]);
        if delta.is_empty() {
            return;
        }
        let (new_ref, fresh) = self.pool.union_delta(self.pt_vars[v.index()], &delta);
        if fresh.is_empty() {
            return;
        }
        self.pt_vars[v.index()] = new_ref;
        self.apply_var_growth(v, &fresh);
    }

    /// Recompute visit of a variable: re-evaluate from the full source
    /// list. Growth degrades gracefully to a delta forward; a non-monotone
    /// replacement cascades recomputes downstream.
    fn recompute_var(&mut self, v: VarId) {
        let new = self.eval_var(v);
        let cur_ref = self.pt_vars[v.index()];
        let fresh = {
            let cur = self.pool.get(cur_ref);
            if *cur == new {
                return;
            }
            cur.is_subset(&new).then(|| new.difference(cur))
        };
        self.pt_vars[v.index()] = self.pool.intern(new);
        if self.trace_explain {
            self.trace_var_sources(v);
        }
        match fresh {
            Some(fresh) => self.apply_var_growth(v, &fresh),
            None => self.cascade_var_recompute(v),
        }
    }

    /// Forwards a growth of `pt(v)` by `fresh` along `v`'s dependencies.
    fn apply_var_growth(&mut self, v: VarId, fresh: &PtsSet) {
        for i in 0..self.var_deps[v.index()].len() {
            let dep = self.var_deps[v.index()][i];
            match dep {
                VarDep::Flow(t) => {
                    if self.trace_explain {
                        for o in fresh.iter() {
                            self.emit_prop(
                                true,
                                t.index() as u64,
                                o,
                                "var",
                                v.index() as u64,
                                o,
                                "copy",
                            );
                        }
                    }
                    self.pending_var[t.index()].union_in_place(fresh);
                    self.push_delta(t.index());
                }
                VarDep::Gep(t, field) => {
                    for o in fresh.iter() {
                        let f = self.pre.objects().field_existing(o, field);
                        if self.trace_explain {
                            self.emit_prop(
                                true,
                                t.index() as u64,
                                f,
                                "var",
                                v.index() as u64,
                                o,
                                "gep",
                            );
                        }
                        self.pending_var[t.index()].insert(f);
                    }
                    self.push_delta(t.index());
                }
                VarDep::LoadPtr(sid, dst) => {
                    // The load now also reads the new objects: pull their
                    // full reaching definitions once; later growth arrives
                    // through the (now open) forward gate.
                    if let Some(node) = self.svfg.stmt_node(sid) {
                        let mut add = PtsSet::new();
                        for o in fresh.iter() {
                            if self.trace_explain {
                                if let Some(pks) = self.preds_by_obj.get(&(node.index() as u32, o))
                                {
                                    for &pk in pks {
                                        let pn = self.slot_node[pk as usize] as usize;
                                        let via = self.via_of(pn, node.index(), "load");
                                        for m in self.pool.get(self.slot_out[pk as usize]).iter() {
                                            self.emit_prop(
                                                true,
                                                dst.index() as u64,
                                                m,
                                                "def",
                                                pn as u64,
                                                m,
                                                via,
                                            );
                                        }
                                    }
                                }
                            }
                            self.union_pt_in(node.index(), o, &mut add);
                        }
                        if !add.is_empty() {
                            self.pending_var[dst.index()].union_in_place(&add);
                            self.push_delta(dst.index());
                        }
                    }
                }
                VarDep::StoreVal(sid) => self.on_store_val_growth(sid, fresh),
                VarDep::StorePtr(sid) => self.on_store_ptr_growth(sid, fresh),
            }
        }
    }

    /// Non-monotone replacement of `pt(v)`: everything it feeds must be
    /// re-evaluated from full inputs.
    fn cascade_var_recompute(&mut self, v: VarId) {
        for i in 0..self.var_deps[v.index()].len() {
            let dep = self.var_deps[v.index()][i];
            match dep {
                VarDep::Flow(t) | VarDep::Gep(t, _) => self.push_recomp(t.index()),
                VarDep::LoadPtr(_, dst) => self.push_recomp(dst.index()),
                VarDep::StoreVal(sid) => self.recomp_store_slots(sid),
                VarDep::StorePtr(sid) => {
                    if let StmtKind::Store { ptr, .. } = self.module.stmt(sid).kind {
                        self.store_phase[sid.index()] = self.phase_of(ptr);
                    }
                    self.recomp_store_slots(sid);
                }
            }
        }
    }

    fn recomp_store_slots(&mut self, sid: StmtId) {
        let Some(node) = self.svfg.stmt_node(sid) else {
            return;
        };
        let n = node.index();
        let (s, e) = (self.slot_base[n] as usize, self.slot_base[n + 1] as usize);
        for k in s..e {
            self.push_recomp(self.v_count + k);
        }
    }

    /// `pt(val)` of the store at `sid` grew by `fresh`: every written slot's
    /// output contains `pt(val)` (exactly, for the strong slot; as one
    /// operand of the union otherwise), so the delta flows straight in.
    fn on_store_val_growth(&mut self, sid: StmtId, fresh: &PtsSet) {
        let Some(node) = self.svfg.stmt_node(sid) else {
            return;
        };
        let n = node.index();
        let (s, e) = (self.slot_base[n] as usize, self.slot_base[n + 1] as usize);
        let Some(&SlotKind::Store { ptr, val }) = self.slot_kind.get(s) else {
            return;
        };
        for k in s..e {
            let o = self.slot_obj[k];
            if self.pool.contains(self.pt_vars[ptr.index()], o) {
                if self.trace_explain {
                    for m in fresh.iter() {
                        self.emit_prop(false, n as u64, m, "var", val.index() as u64, m, "store");
                    }
                }
                self.pending_slot[k].union_in_place(fresh);
                self.push_delta(self.v_count + k);
            }
        }
    }

    /// `pt(ptr)` of the store at `sid` grew by `fresh`: reclassify the
    /// slots. Only the `∅ → singleton` transition is non-monotone (the
    /// strong slot's output becomes exactly `pt(val)`); every other
    /// transition adds members and propagates as deltas.
    fn on_store_ptr_growth(&mut self, sid: StmtId, fresh: &PtsSet) {
        let Some(node) = self.svfg.stmt_node(sid) else {
            return;
        };
        let n = node.index();
        let (s, e) = (self.slot_base[n] as usize, self.slot_base[n + 1] as usize);
        let Some(&SlotKind::Store { ptr, val, .. }) = self.slot_kind.get(s) else {
            return;
        };
        let old_phase = self.store_phase[sid.index()];
        let new_phase = self.phase_of(ptr);
        self.store_phase[sid.index()] = new_phase;
        match (old_phase, new_phase) {
            (StorePhase::Empty, StorePhase::Strong(tgt)) => {
                // The written slot flips from pass-through to kill:
                // incomparable, so re-evaluate it. Other slots stay
                // unwritten pass-throughs.
                if let Some(k) = self.slot_of(n, tgt) {
                    self.push_recomp(self.v_count + k);
                }
            }
            (StorePhase::Empty | StorePhase::Weak, StorePhase::Weak) => {
                // Newly written slots gain pt(val) on top of their inputs.
                let val_ref = self.pt_vars[val.index()];
                for k in s..e {
                    if fresh.contains(self.slot_obj[k]) && self.pool.len_of(val_ref) > 0 {
                        if self.trace_explain {
                            for m in self.pool.get(val_ref).iter() {
                                self.emit_prop(
                                    false,
                                    n as u64,
                                    m,
                                    "var",
                                    val.index() as u64,
                                    m,
                                    "store",
                                );
                            }
                        }
                        self.pending_slot[k].union_in_place(self.pool.get(val_ref));
                        self.push_delta(self.v_count + k);
                    }
                }
            }
            (StorePhase::Strong(prev), StorePhase::Weak) => {
                // The strong slot weakens: its output regains the reaching
                // definitions it was killing (their deltas were gated out
                // while strong, so pull the full current input).
                if let Some(k) = self.slot_of(n, prev) {
                    if self.trace_explain {
                        if let Some(pks) = self.preds_by_obj.get(&(n as u32, prev)) {
                            for &pk in pks {
                                let pn = self.slot_node[pk as usize] as usize;
                                let via = self.via_of(pn, n, "merge");
                                for m in self.pool.get(self.slot_out[pk as usize]).iter() {
                                    self.emit_prop(false, n as u64, m, "def", pn as u64, m, via);
                                }
                            }
                        }
                    }
                    let add = self.pt_in(n, prev);
                    if !add.is_empty() {
                        self.pending_slot[k].union_in_place(&add);
                        self.push_delta(self.v_count + k);
                    }
                }
                let val_ref = self.pt_vars[val.index()];
                for k in s..e {
                    if fresh.contains(self.slot_obj[k]) && self.pool.len_of(val_ref) > 0 {
                        if self.trace_explain {
                            for m in self.pool.get(val_ref).iter() {
                                self.emit_prop(
                                    false,
                                    n as u64,
                                    m,
                                    "var",
                                    val.index() as u64,
                                    m,
                                    "store",
                                );
                            }
                        }
                        self.pending_slot[k].union_in_place(self.pool.get(val_ref));
                        self.push_delta(self.v_count + k);
                    }
                }
            }
            // Growth strictly enlarges pt(ptr), so it can never *become*
            // empty, stay a singleton, or turn back into one. Re-evaluate
            // everything if an unexpected transition ever shows up.
            _ => self.recomp_store_slots(sid),
        }
    }

    /// Delta visit of a slot: fold the pending delta into its output.
    fn delta_slot(&mut self, k: usize) {
        let delta = std::mem::take(&mut self.pending_slot[k]);
        if delta.is_empty() {
            return;
        }
        if let SlotKind::Store { ptr, .. } = self.slot_kind[k] {
            let ptr_set = self.pool.get(self.pt_vars[ptr.index()]);
            if ptr_set.contains(self.slot_obj[k]) {
                if ptr_set
                    .as_singleton()
                    .is_some_and(|s| self.pre.objects().is_singleton(s))
                {
                    self.stats.strong_updates += 1;
                } else {
                    self.stats.weak_updates += 1;
                }
            }
        }
        let (new_ref, fresh) = self.pool.union_delta(self.slot_out[k], &delta);
        if fresh.is_empty() {
            return;
        }
        self.slot_out[k] = new_ref;
        self.forward_delta(k, &fresh);
    }

    /// Evaluates slot `k`'s full equation against the current state without
    /// mutating anything. Returns the output set plus whether the equation
    /// was a strong or weak update (counted by the caller — the parallel
    /// path evaluates on worker threads and folds statistics in at apply).
    fn eval_slot(&self, k: usize) -> (PtsSet, bool, bool) {
        let n = self.slot_node[k] as usize;
        let o = self.slot_obj[k];
        match self.slot_kind[k] {
            SlotKind::Merge => (self.pt_in(n, o), false, false),
            SlotKind::Store { ptr, val, .. } => {
                let (written, strong) = {
                    let ptr_set = self.pool.get(self.pt_vars[ptr.index()]);
                    (
                        ptr_set.contains(o),
                        ptr_set
                            .as_singleton()
                            .is_some_and(|s| self.pre.objects().is_singleton(s)),
                    )
                };
                if written && strong {
                    // kill(s, p) = {o}: the old contents die.
                    (
                        self.pool.get(self.pt_vars[val.index()]).clone(),
                        true,
                        false,
                    )
                } else {
                    let mut out = self.pt_in(n, o);
                    if written {
                        out.union_in_place(self.pool.get(self.pt_vars[val.index()]));
                    }
                    (out, false, written)
                }
            }
        }
    }

    /// Recompute visit of a slot: re-evaluate its equation from full
    /// inputs and replace the output.
    fn recompute_slot(&mut self, k: usize) {
        let (out, strong, weak) = self.eval_slot(k);
        if strong {
            self.stats.strong_updates += 1;
        }
        if weak {
            self.stats.weak_updates += 1;
        }
        if self.trace_explain {
            self.trace_slot_inputs(k);
        }
        self.replace_slot(k, out);
    }

    /// Replaces a slot's output; growth forwards a delta, a non-monotone
    /// replacement cascades recomputes.
    fn replace_slot(&mut self, k: usize, new: PtsSet) {
        let fresh = {
            let cur = self.pool.get(self.slot_out[k]);
            if *cur == new {
                return;
            }
            cur.is_subset(&new).then(|| new.difference(cur))
        };
        self.slot_out[k] = self.pool.intern(new);
        match fresh {
            Some(fresh) => self.forward_delta(k, &fresh),
            None => self.forward_recompute(k),
        }
    }

    /// Forwards `fresh` new members of slot `k`'s output along the SVFG.
    fn forward_delta(&mut self, k: usize, fresh: &PtsSet) {
        let svfg = self.svfg;
        let module = self.module;
        let s_count = module.stmt_count();
        let n = VfNodeId::from_index(self.slot_node[k] as usize);
        let o = self.slot_obj[k];
        for &(succ, label) in svfg.succs(n) {
            if label != o {
                continue;
            }
            match svfg.kind(succ) {
                VfNodeKind::Stmt(sid) if sid.index() < s_count => match &module.stmt(sid).kind {
                    // A strong slot's output is exactly pt(val): its
                    // reaching definitions are killed, so their deltas
                    // must not leak through.
                    StmtKind::Store { .. }
                        if self.store_phase[sid.index()] != StorePhase::Strong(o) =>
                    {
                        if let Some(j) = self.slot_of(succ.index(), o) {
                            if self.trace_explain {
                                let via = self.via_of(n.index(), succ.index(), "merge");
                                for m in fresh.iter() {
                                    self.emit_prop(
                                        false,
                                        succ.index() as u64,
                                        m,
                                        "def",
                                        n.index() as u64,
                                        m,
                                        via,
                                    );
                                }
                            }
                            self.pending_slot[j].union_in_place(fresh);
                            self.push_delta(self.v_count + j);
                        }
                    }
                    StmtKind::Load { dst, ptr } => {
                        // P-LOAD is gated on o ∈ pt(ptr); a later pointer
                        // growth pulls the full input via LoadPtr.
                        let (dst, ptr) = (*dst, *ptr);
                        if self.pool.contains(self.pt_vars[ptr.index()], o) {
                            if self.trace_explain {
                                let via = self.via_of(n.index(), succ.index(), "load");
                                for m in fresh.iter() {
                                    self.emit_prop(
                                        true,
                                        dst.index() as u64,
                                        m,
                                        "def",
                                        n.index() as u64,
                                        m,
                                        via,
                                    );
                                }
                            }
                            self.pending_var[dst.index()].union_in_place(fresh);
                            self.push_delta(dst.index());
                        }
                    }
                    // Other statements read no memory: a changed reaching
                    // definition cannot affect them.
                    _ => {}
                },
                // Synthetic statement nodes (thread-edge endpoints interned
                // by tests) define and use nothing.
                VfNodeKind::Stmt(_) => {}
                _ => {
                    if let Some(j) = self.slot_of(succ.index(), o) {
                        if self.trace_explain {
                            let via = self.via_of(n.index(), succ.index(), "merge");
                            for m in fresh.iter() {
                                self.emit_prop(
                                    false,
                                    succ.index() as u64,
                                    m,
                                    "def",
                                    n.index() as u64,
                                    m,
                                    via,
                                );
                            }
                        }
                        self.pending_slot[j].union_in_place(fresh);
                        self.push_delta(self.v_count + j);
                    }
                }
            }
        }
    }

    /// Non-monotone replacement of slot `k`'s output: everything it feeds
    /// must re-evaluate from full inputs.
    fn forward_recompute(&mut self, k: usize) {
        let svfg = self.svfg;
        let module = self.module;
        let s_count = module.stmt_count();
        let n = VfNodeId::from_index(self.slot_node[k] as usize);
        let o = self.slot_obj[k];
        for &(succ, label) in svfg.succs(n) {
            if label != o {
                continue;
            }
            match svfg.kind(succ) {
                VfNodeKind::Stmt(sid) if sid.index() < s_count => match &module.stmt(sid).kind {
                    StmtKind::Store { .. } => {
                        if let Some(j) = self.slot_of(succ.index(), o) {
                            self.push_recomp(self.v_count + j);
                        }
                    }
                    StmtKind::Load { dst, .. } => {
                        let dst = *dst;
                        self.push_recomp(dst.index());
                    }
                    _ => {}
                },
                VfNodeKind::Stmt(_) => {}
                _ => {
                    if let Some(j) = self.slot_of(succ.index(), o) {
                        self.push_recomp(self.v_count + j);
                    }
                }
            }
        }
    }

    /// Seeds the worklist: every variable with at least one source. Slots
    /// need no seeds — store and merge outputs start empty and consistent,
    /// and every input change reaches them through the dependency edges.
    fn seed(&mut self) {
        for v in self.module.var_ids() {
            if !self.var_sources[v.index()].is_empty() {
                self.push_recomp(v.index());
            }
        }
    }

    /// Termination backstop: the delta/recompute split converges after the
    /// bounded strong/weak flips, but the bound is generous; a blow-out
    /// indicates an implementation bug and should fail loudly rather than
    /// spin forever.
    fn item_limit(&self) -> usize {
        50_000usize.saturating_mul(self.module.stmt_count() + self.svfg.node_count() + 64)
    }

    fn bump_processed(&mut self, limit: usize) {
        self.stats.processed += 1;
        assert!(
            self.stats.processed <= limit,
            "sparse solver failed to converge after {limit} items"
        );
    }

    /// One inline worklist visit of `id` in (already-taken) mode `m`.
    fn visit(&mut self, id: usize, m: u8) {
        if id < self.v_count {
            let v = VarId::from_usize(id);
            if m == RECOMP {
                self.stats.recompute_items += 1;
                self.pending_var[id].clear();
                self.recompute_var(v);
            } else {
                self.stats.delta_items += 1;
                self.delta_var(v);
            }
        } else {
            let k = id - self.v_count;
            if m == RECOMP {
                self.stats.recompute_items += 1;
                self.pending_slot[k].clear();
                self.recompute_slot(k);
            } else {
                self.stats.delta_items += 1;
                self.delta_slot(k);
            }
        }
    }

    fn run(mut self) -> SparseResult {
        self.seed();
        let limit = self.item_limit();
        while let Some(id) = self.queue.pop() {
            let m = std::mem::replace(&mut self.mode[id], 0);
            self.bump_processed(limit);
            self.visit(id, m);
        }
        self.finish()
    }

    /// Level-synchronous parallel fixpoint (see the module docs): pop one
    /// topological level at a time, evaluate its equations concurrently
    /// against the frozen state, merge the worker arenas, and apply the
    /// results sequentially in ascending item order. `min_batch` gates the
    /// pool — smaller levels run fully inline (exposed so tests can force
    /// the parallel path on tiny programs).
    fn run_par(mut self, threads: usize, min_batch: usize) -> (SparseResult, ParSolveStats) {
        debug_assert!(threads >= 2, "run_par needs a real pool; use run()");
        debug_assert!(
            !self.trace_explain,
            "explain tracing needs the ordered sequential propagation stream"
        );
        self.seed();
        let limit = self.item_limit();
        let mut ps = ParSolveStats::default();
        let mut batch: Vec<usize> = Vec::new();
        // Round-stamped SCC occupancy: a recompute is only precomputable
        // when its SCC has exactly one member in the batch (same-level items
        // of one SCC may feed each other during apply).
        let mut comp_seen = vec![0u32; self.comp_count.max(1)];
        let mut comp_multi = vec![0u32; self.comp_count.max(1)];
        let mut round = 0u32;
        while !self.queue.is_empty() {
            self.queue.pop_level(&mut batch);
            round += 1;
            ps.levels += 1;
            ps.max_level_width = ps.max_level_width.max(batch.len() as u64);
            if batch.len() < min_batch {
                for &id in &batch {
                    let m = std::mem::replace(&mut self.mode[id], 0);
                    self.bump_processed(limit);
                    self.visit(id, m);
                }
                continue;
            }
            for &id in &batch {
                let c = self.item_comp[id];
                if c != u32::MAX {
                    let c = c as usize;
                    if comp_seen[c] == round {
                        comp_multi[c] = round;
                    } else {
                        comp_seen[c] = round;
                    }
                }
            }
            // Snapshot each item's mode and precompute eligibility before
            // anything mutates: an apply earlier in the level can upgrade a
            // later item's mode, which invalidates its evaluation.
            let plan: Vec<EvalTask> = batch
                .iter()
                .map(|&id| {
                    let c = self.item_comp[id];
                    EvalTask {
                        id: id as u32,
                        mode: self.mode[id],
                        safe: c != u32::MAX && comp_multi[c as usize] != round,
                    }
                })
                .collect();
            let chunks: Vec<&[EvalTask]> = plan.chunks(PAR_CHUNK).collect();
            let solver = &self;
            let (chunk_out, arenas, pool_stats) = par::run_with_workers(
                threads,
                &chunks,
                |_| PtsPool::new(),
                |w, arena, _, chunk| {
                    chunk
                        .iter()
                        .map(|t| (w, solver.eval_item(t, arena)))
                        .collect::<Vec<(usize, Eval)>>()
                },
            );
            ps.workers = ps.workers.max(pool_stats.workers);
            ps.steals += pool_stats.steals;
            let merge_start = Instant::now();
            let remaps: Vec<Vec<PtsRef>> =
                arenas.iter().map(|a| self.pool.merge_remap(a)).collect();
            ps.merge_us += merge_start.elapsed().as_micros() as u64;
            for ((w, ev), &id) in chunk_out.into_iter().flatten().zip(batch.iter()) {
                self.apply(id, w, ev, &remaps, limit, &mut ps);
            }
        }
        ps.workers = ps.workers.max(1);
        (self.finish(), ps)
    }

    /// Evaluates one batch item against the frozen pre-level state, interning
    /// any derived set into the worker's arena. Pure with respect to the
    /// solver: multiple workers share `&self`.
    fn eval_item(&self, t: &EvalTask, arena: &mut PtsPool) -> Eval {
        let id = t.id as usize;
        if id < self.v_count {
            if t.mode == RECOMP {
                if !t.safe {
                    return Eval::Inline;
                }
                let new = self.eval_var(VarId::from_usize(id));
                Eval::VarRecomp(self.relate(self.pt_vars[id], new, arena))
            } else {
                let pending = &self.pending_var[id];
                let cur = self.pool.get(self.pt_vars[id]);
                let fresh = pending.difference(cur);
                let grown = if fresh.is_empty() {
                    PtsRef::EMPTY // unused: nothing to swap in
                } else {
                    let mut grown = cur.clone();
                    grown.union_in_place(&fresh);
                    arena.intern(grown)
                };
                Eval::VarDelta {
                    grown,
                    fresh,
                    pend_len: pending.len(),
                }
            }
        } else {
            let k = id - self.v_count;
            if t.mode == RECOMP {
                if !t.safe {
                    return Eval::Inline;
                }
                let (new, strong, weak) = self.eval_slot(k);
                Eval::SlotRecomp {
                    out: self.relate(self.slot_out[k], new, arena),
                    strong,
                    weak,
                }
            } else {
                let pending = &self.pending_slot[k];
                let cur = self.pool.get(self.slot_out[k]);
                let fresh = pending.difference(cur);
                let grown = if fresh.is_empty() {
                    PtsRef::EMPTY
                } else {
                    let mut grown = cur.clone();
                    grown.union_in_place(&fresh);
                    arena.intern(grown)
                };
                Eval::SlotDelta {
                    grown,
                    fresh,
                    pend_len: pending.len(),
                }
            }
        }
    }

    /// Classifies a recomputed set against the current one — the same
    /// three-way split [`Solver::recompute_var`] / [`Solver::replace_slot`]
    /// make inline — interning the replacement into the worker arena.
    fn relate(&self, cur_ref: PtsRef, new: PtsSet, arena: &mut PtsPool) -> RecompOut {
        let cur = self.pool.get(cur_ref);
        if *cur == new {
            return RecompOut::Equal;
        }
        if cur.is_subset(&new) {
            let fresh = new.difference(cur);
            RecompOut::Grew {
                new: arena.intern(new),
                fresh,
            }
        } else {
            RecompOut::Replace {
                new: arena.intern(new),
            }
        }
    }

    /// Applies one batch item sequentially. Uses the precomputed evaluation
    /// only when it still provably matches what the inline visit would do
    /// (same mode as at snapshot, same pending length for deltas); anything
    /// stale falls back to [`Solver::visit`], which recomputes live.
    fn apply(
        &mut self,
        id: usize,
        w: usize,
        ev: Eval,
        remaps: &[Vec<PtsRef>],
        limit: usize,
        ps: &mut ParSolveStats,
    ) {
        let m = std::mem::replace(&mut self.mode[id], 0);
        self.bump_processed(limit);
        match ev {
            Eval::VarDelta {
                grown,
                fresh,
                pend_len,
            } if m != RECOMP => {
                self.stats.delta_items += 1;
                let v = VarId::from_usize(id);
                if self.pending_var[id].len() != pend_len {
                    // A same-level producer extended the delta after the
                    // snapshot (pending sets only grow between visits, so an
                    // unchanged length means an unchanged set).
                    ps.stale_evals += 1;
                    self.delta_var(v);
                } else {
                    self.pending_var[id] = PtsSet::new();
                    if !fresh.is_empty() {
                        self.pt_vars[id] = remaps[w][grown.index()];
                        self.apply_var_growth(v, &fresh);
                    }
                }
            }
            Eval::VarRecomp(out) if m == RECOMP => {
                self.stats.recompute_items += 1;
                self.pending_var[id].clear();
                let v = VarId::from_usize(id);
                match out {
                    RecompOut::Equal => {}
                    RecompOut::Grew { new, fresh } => {
                        self.pt_vars[id] = remaps[w][new.index()];
                        self.apply_var_growth(v, &fresh);
                    }
                    RecompOut::Replace { new } => {
                        self.pt_vars[id] = remaps[w][new.index()];
                        self.cascade_var_recompute(v);
                    }
                }
            }
            Eval::SlotDelta {
                grown,
                fresh,
                pend_len,
            } if m != RECOMP => {
                self.stats.delta_items += 1;
                let k = id - self.v_count;
                if self.pending_slot[k].len() != pend_len {
                    ps.stale_evals += 1;
                    self.delta_slot(k);
                } else if pend_len > 0 {
                    self.pending_slot[k] = PtsSet::new();
                    // The strong/weak accounting reads the *live* pointer
                    // set, exactly as the inline delta visit does.
                    if let SlotKind::Store { ptr, .. } = self.slot_kind[k] {
                        let ptr_set = self.pool.get(self.pt_vars[ptr.index()]);
                        if ptr_set.contains(self.slot_obj[k]) {
                            if ptr_set
                                .as_singleton()
                                .is_some_and(|s| self.pre.objects().is_singleton(s))
                            {
                                self.stats.strong_updates += 1;
                            } else {
                                self.stats.weak_updates += 1;
                            }
                        }
                    }
                    if !fresh.is_empty() {
                        self.slot_out[k] = remaps[w][grown.index()];
                        self.forward_delta(k, &fresh);
                    }
                }
            }
            Eval::SlotRecomp { out, strong, weak } if m == RECOMP => {
                self.stats.recompute_items += 1;
                let k = id - self.v_count;
                self.pending_slot[k].clear();
                if strong {
                    self.stats.strong_updates += 1;
                }
                if weak {
                    self.stats.weak_updates += 1;
                }
                match out {
                    RecompOut::Equal => {}
                    RecompOut::Grew { new, fresh } => {
                        self.slot_out[k] = remaps[w][new.index()];
                        self.forward_delta(k, &fresh);
                    }
                    RecompOut::Replace { new } => {
                        self.slot_out[k] = remaps[w][new.index()];
                        self.forward_recompute(k);
                    }
                }
            }
            // Eval::Inline, or the item's mode changed after the snapshot
            // (a delta can be upgraded to a recompute by an earlier apply).
            _ => {
                ps.stale_evals += 1;
                self.visit(id, m);
            }
        }
    }

    /// Final statistics, trace counters, and pool compaction — the shared
    /// tail of [`Solver::run`] and [`Solver::run_par`].
    fn finish(mut self) -> SparseResult {
        self.stats.var_pts_entries = self.pt_vars.iter().map(|&r| self.pool.len_of(r)).sum();
        self.stats.def_pts_entries = self.slot_out.iter().map(|&r| self.pool.len_of(r)).sum();
        self.stats.peak_pts_bytes = self.pool.heap_bytes()
            + table_bytes(
                &self.pt_vars,
                &self.slot_base,
                &self.slot_obj,
                &self.slot_out,
            );

        if let Some(rec) = self.trace {
            // The working pool's intern traffic (the payoff of
            // hash-consing) — recorded before compaction discards it.
            let is = self.pool.intern_stats();
            rec.counter(self.trace_span, "pool.intern_hits", is.hits);
            rec.counter(self.trace_span, "pool.intern_misses", is.misses);
            rec.counter(self.trace_span, "pool.sets", self.pool.set_count() as u64);
        }

        // Compact: rebuild the pool from the live handles only, dropping
        // every intermediate set the fixpoint iteration interned.
        let mut live = PtsPool::new();
        let mut memo: HashMap<usize, PtsRef> = HashMap::new();
        let pt_vars: Vec<PtsRef> = self
            .pt_vars
            .iter()
            .map(|&r| remap(&self.pool, &mut live, &mut memo, r))
            .collect();
        let slot_out: Vec<PtsRef> = self
            .slot_out
            .iter()
            .map(|&r| remap(&self.pool, &mut live, &mut memo, r))
            .collect();
        SparseResult {
            pool: live,
            pt_vars,
            slot_base: self.slot_base,
            slot_obj: self.slot_obj,
            slot_out,
            stats: self.stats,
        }
    }
}

/// Binary-searches node `node`'s slot range for object `o`.
fn slot_lookup(slot_base: &[u32], slot_obj: &[MemId], node: usize, o: MemId) -> Option<usize> {
    let (s, e) = (slot_base[node] as usize, slot_base[node + 1] as usize);
    slot_obj[s..e].binary_search(&o).ok().map(|i| s + i)
}

/// Re-interns the set behind `r` (from `old`) into `live`, memoized.
fn remap(
    old: &PtsPool,
    live: &mut PtsPool,
    memo: &mut HashMap<usize, PtsRef>,
    r: PtsRef,
) -> PtsRef {
    if let Some(&nr) = memo.get(&r.index()) {
        return nr;
    }
    let nr = live.intern(old.get(r).clone());
    memo.insert(r.index(), nr);
    nr
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;
    use fsam_threads::ThreadModel;

    /// Builds the thread-oblivious solver inputs the way the pipeline does.
    fn inputs(m: &Module) -> (PreAnalysis, Svfg) {
        let pre = PreAnalysis::run(m);
        let icfg = Icfg::build(m, pre.call_graph());
        let tm = ThreadModel::build(m, &pre, &icfg);
        let svfg = Svfg::build(m, &pre, &tm);
        (pre, svfg)
    }

    /// Runs the parallel schedule with `min_batch == 2` so even small
    /// levels take the eval/merge/apply path (the production threshold
    /// would evaluate them inline and the test would prove nothing).
    fn run_par(m: &Module, pre: &PreAnalysis, svfg: &Svfg, threads: usize) -> SparseResult {
        Solver::with_schedule(m, pre, svfg, true)
            .run_par(threads, 2)
            .0
    }

    /// Handwritten stress programs: strong/weak updates, a loop-carried
    /// memory phi (an SCC wider than one statement), recursion (recompute
    /// cascades), and a fork whose callee interferes with main.
    const PROGRAMS: &[&str] = &[
        // Last store wins through a chain of strong updates.
        r#"
        global cell
        global a
        global b
        func main() {
        entry:
          p = &cell
          x = &a
          store p, x
          y = &b
          store p, y
          c = load p
          ret
        }
        "#,
        // Branch merge: strong per arm, weak at the join.
        r#"
        global cell
        global a
        global b
        global init
        func main() {
        entry:
          p = &cell
          i = &init
          store p, i
          br ?, l, r
        l:
          x = &a
          store p, x
          br done
        r:
          y = &b
          store p, y
          br done
        done:
          c = load p
          ret
        }
        "#,
        // Loop-carried memory phi: the header SCC has several members, so
        // the level schedule must keep its items on the sequential path
        // (multi-member SCC evals are unsafe to precompute).
        r#"
        global cell
        global start
        global iter
        global last
        func main() {
        entry:
          p = &cell
          s = &start
          store p, s
          br header
        header:
          inloop = load p
          br ?, body, exit
        body:
          it = &iter
          store p, it
          br header
        exit:
          lv = &last
          store p, lv
          c = load p
          ret
        }
        "#,
        // Recursion: weak updates on the recursive local, recompute
        // cascades when pt(f) is replaced.
        r#"
        global a
        global b
        func rec(p) {
        local frame
        entry:
          f = &frame
          br ?, again, base
        again:
          x = &a
          store f, x
          r1 = call rec(f)
          br out
        base:
          y = &b
          store f, y
          br out
        out:
          c = load f
          ret c
        }
        func main() {
        entry:
          seed = &a
          r = call rec(seed)
          ret
        }
        "#,
        // Fork: the paper's Figure 1(a) shape.
        r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t = fork foo()
          store p, r
          c = load p
          ret
        }
        "#,
    ];

    #[test]
    fn parallel_fixpoint_matches_sequential_on_handwritten_programs() {
        for (i, src) in PROGRAMS.iter().enumerate() {
            let m = parse_module(src).unwrap();
            let (pre, svfg) = inputs(&m);
            let seq = solve(&m, &pre, &svfg);
            for threads in [2, 3, 8] {
                let par = run_par(&m, &pre, &svfg, threads);
                assert!(
                    seq.points_to_eq(&par),
                    "program {i}: fixpoint diverged at {threads} threads"
                );
                assert_eq!(
                    seq.stats.var_pts_entries, par.stats.var_pts_entries,
                    "program {i}: var entries diverged at {threads} threads"
                );
                assert_eq!(
                    seq.stats.def_pts_entries, par.stats.def_pts_entries,
                    "program {i}: def entries diverged at {threads} threads"
                );
                assert_eq!(
                    seq.stats.strong_updates, par.stats.strong_updates,
                    "program {i}: strong updates diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_fixpoint_matches_sequential_on_suite_programs() {
        for p in [
            fsam_suite::Program::X264,
            fsam_suite::Program::Raytrace,
            fsam_suite::Program::Kmeans,
        ] {
            let m = p.generate(fsam_suite::Scale::SMOKE);
            let (pre, svfg) = inputs(&m);
            let seq = solve(&m, &pre, &svfg);
            for threads in [2, 8] {
                let par = run_par(&m, &pre, &svfg, threads);
                assert!(
                    seq.points_to_eq(&par),
                    "{p:?}: fixpoint diverged at {threads} threads"
                );
                assert_eq!(
                    seq.stats.var_pts_entries, par.stats.var_pts_entries,
                    "{p:?}"
                );
                assert_eq!(
                    seq.stats.def_pts_entries, par.stats.def_pts_entries,
                    "{p:?}"
                );
            }
        }
    }

    /// The whole result — statistics included — is identical across thread
    /// counts ≥ 2: eval is pure and apply replays one deterministic order.
    #[test]
    fn parallel_results_are_identical_across_thread_counts() {
        let m = fsam_suite::Program::X264.generate(fsam_suite::Scale::SMOKE);
        let (pre, svfg) = inputs(&m);
        let two = run_par(&m, &pre, &svfg, 2);
        let eight = run_par(&m, &pre, &svfg, 8);
        assert_eq!(two, eight);
    }

    /// `solve_par` with one thread is the sequential solver, bit for bit.
    #[test]
    fn one_thread_is_the_exact_sequential_path() {
        let m = fsam_suite::Program::Kmeans.generate(fsam_suite::Scale::SMOKE);
        let (pre, svfg) = inputs(&m);
        assert_eq!(solve(&m, &pre, &svfg), solve_par(&m, &pre, &svfg, 1));
    }

    /// The level schedule reports its shape: at least one level, and a
    /// width bounded by the batch totals.
    #[test]
    fn parallel_schedule_reports_level_counters() {
        let m = fsam_suite::Program::Raytrace.generate(fsam_suite::Scale::SMOKE);
        let (pre, svfg) = inputs(&m);
        let (_, ps) = Solver::with_schedule(&m, &pre, &svfg, true).run_par(2, 2);
        assert!(ps.levels > 0, "no levels recorded");
        assert!(ps.max_level_width > 0, "no width recorded");
        assert!(ps.workers >= 1);
    }
}

//! Instrumentation planning for dynamic race detectors.
//!
//! The paper's §6 proposes combining FSAM "with some dynamic analysis tools
//! such as Google's ThreadSanitizer to reduce their instrumentation
//! overhead". This module implements that client: a memory access needs
//! dynamic instrumentation only if the static analysis cannot prove it
//! race-free. An access is *provably race-free* when
//!
//! * every object it may touch is thread-private (escape analysis), or
//! * it participates in no MHP store/access pair on a shared object, or
//! * every such pair is consistently protected by a common lock.
//!
//! The planner returns the set of accesses to instrument; everything else
//! can run uninstrumented, which is where the overhead reduction comes
//! from. The plan errs toward instrumenting (any statically-unprovable
//! access stays instrumented), so the dynamic tool loses no coverage.

use std::collections::{HashMap, HashSet};

use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;
use fsam_threads::mhp::MhpOracle;
use fsam_threads::SharedObjects;

use crate::pipeline::Fsam;

/// The instrumentation plan for one module.
#[derive(Debug)]
pub struct InstrumentationPlan {
    /// Accesses (loads and stores) that must be instrumented.
    pub instrument: Vec<StmtId>,
    /// Accesses proven race-free (skippable).
    pub skip: Vec<StmtId>,
}

impl InstrumentationPlan {
    /// Fraction of memory accesses that can skip instrumentation.
    ///
    /// A program with no memory accesses needs no instrumentation at all,
    /// so the reduction is total: `1.0`, not `0.0` (the `0/0` case must
    /// not read as "nothing skippable").
    pub fn reduction(&self) -> f64 {
        let total = self.instrument.len() + self.skip.len();
        if total == 0 {
            return 1.0;
        }
        self.skip.len() as f64 / total as f64
    }
}

/// Computes the plan from the pipeline's results.
pub fn plan(module: &Module, fsam: &Fsam) -> InstrumentationPlan {
    let oracle: &dyn MhpOracle = &fsam.mhp;
    let shared = SharedObjects::compute(module, &fsam.pre);

    // Shared-object access sets (flow-sensitive pointer results keep the
    // sets tight, which is exactly the precision argument of §1).
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut all_accesses: Vec<StmtId> = Vec::new();
    for (sid, stmt) in module.stmts() {
        match stmt.kind {
            StmtKind::Store { ptr, .. } => {
                all_accesses.push(sid);
                for o in fsam.result.pt_var(ptr).iter() {
                    if shared.is_shared(&fsam.pre, o) {
                        stores_of.entry(o).or_default().push(sid);
                        accesses_of.entry(o).or_default().push(sid);
                    }
                }
            }
            StmtKind::Load { ptr, .. } => {
                all_accesses.push(sid);
                for o in fsam.result.pt_var(ptr).iter() {
                    if shared.is_shared(&fsam.pre, o) {
                        accesses_of.entry(o).or_default().push(sid);
                    }
                }
            }
            _ => {}
        }
    }

    // An access is racy-capable if some MHP store/access pair on a common
    // shared object is not consistently lock-protected.
    let mut needs: HashSet<StmtId> = HashSet::new();
    for (&o, stores) in &stores_of {
        let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        for &s in stores {
            for &a in accesses {
                if needs.contains(&s) && needs.contains(&a) {
                    continue;
                }
                if !oracle.mhp_stmt(s, a) {
                    continue;
                }
                let protected = instances_protected(fsam, oracle, s, a);
                if !protected {
                    needs.insert(s);
                    needs.insert(a);
                }
            }
        }
    }

    let mut instrument = Vec::new();
    let mut skip = Vec::new();
    for sid in all_accesses {
        if needs.contains(&sid) {
            instrument.push(sid);
        } else {
            skip.push(sid);
        }
    }
    InstrumentationPlan { instrument, skip }
}

/// Whether every MHP instance pair of `(s, a)` holds a common lock.
///
/// Public so engine-backed clients (`fsam-query`) can reuse the
/// instance-level refinement after answering the statement-level queries
/// from a snapshot.
pub fn instances_protected(fsam: &Fsam, oracle: &dyn MhpOracle, s: StmtId, a: StmtId) -> bool {
    let Some(lock) = &fsam.lock else { return false };
    for &(t1, c1) in &oracle.instances(s) {
        for &(t2, c2) in &oracle.instances(a) {
            let i1 = (t1, c1, s);
            let i2 = (t2, c2, a);
            if oracle.mhp_instances(&fsam.icfg, i1, i2)
                && !lock.commonly_protected(&fsam.icfg, i1, i2)
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    fn plan_for(src: &str) -> (Module, Fsam, InstrumentationPlan) {
        let m = parse_module(src).unwrap();
        let fsam = Fsam::analyze(&m);
        let p = plan(&m, &fsam);
        (m, fsam, p)
    }

    #[test]
    fn sequential_program_needs_no_instrumentation() {
        let (_, _, p) = plan_for(
            r#"
            global g
            func main() {
            entry:
              q = &g
              store q, q
              c = load q
              ret
            }
        "#,
        );
        assert!(p.instrument.is_empty());
        assert_eq!(p.reduction(), 1.0);
    }

    #[test]
    fn racy_accesses_are_instrumented_private_ones_skipped() {
        let (m, _, p) = plan_for(
            r#"
            global counter
            func worker() {
            local scratch
            entry:
              q = &counter
              s = &scratch
              v = load s          // private: skip
              store s, v          // private: skip
              store q, q          // races with main's read
              ret
            }
            func main() {
            entry:
              q = &counter
              t = fork worker()
              c = load q          // races with worker's store
              join t
              ret
            }
        "#,
        );
        // The two racy accesses are instrumented; the private ones skip.
        assert_eq!(p.instrument.len(), 2, "{:?}", render(&m, &p.instrument));
        assert!(p.skip.len() >= 2);
        assert!(p.reduction() > 0.0 && p.reduction() < 1.0);
    }

    #[test]
    fn consistently_locked_accesses_are_skipped() {
        let (_, _, p) = plan_for(
            r#"
            global counter
            global mu
            func worker() {
            entry:
              q = &counter
              l = &mu
              lock l
              v = load q
              store q, v
              unlock l
              ret
            }
            func main() {
            entry:
              q = &counter
              l = &mu
              t = fork worker()
              lock l
              c = load q
              unlock l
              join t
              ret
            }
        "#,
        );
        assert!(
            p.instrument.is_empty(),
            "locked accesses need no dynamic checking: {:?}",
            p.instrument
        );
    }

    /// Regression: zero memory accesses means full reduction (nothing to
    /// instrument), not `0.0`.
    #[test]
    fn no_accesses_is_full_reduction() {
        let (_, _, p) = plan_for(
            r#"
            func main() {
            entry:
              ret
            }
        "#,
        );
        assert!(p.instrument.is_empty());
        assert!(p.skip.is_empty());
        assert_eq!(p.reduction(), 1.0);
    }

    fn render(m: &Module, stmts: &[StmtId]) -> Vec<String> {
        stmts.iter().map(|&s| m.describe_stmt(s)).collect()
    }
}

//! A shared, std-only worker pool for the parallel analysis phases.
//!
//! The two dominant pipeline phases — the sparse solve and the value-flow
//! analysis — fan their work out through this module: a fixed set of
//! scoped worker threads draining a mutex-sharded work-stealing deque of
//! task indices. Tasks are distributed round-robin across per-worker
//! shards; a worker that exhausts its own shard steals from the back of
//! its neighbours', so skewed task costs (one huge SCC level chunk, one
//! hot points-to class) still balance.
//!
//! Design constraints, in order:
//!
//! * **Determinism** — results are returned in task order, and nothing
//!   about *which* worker ran a task may leak into them. Callers keep
//!   per-worker scratch state (e.g. a thread-local [`fsam_pts::PtsPool`]
//!   arena) and merge it deterministically afterwards.
//! * **No hangs on panic** — workers never block on each other: the deque
//!   is drained until globally empty, with no barrier or condvar inside a
//!   worker. A panicking task takes its worker down; the remaining workers
//!   finish the queue, and the panic is resumed on the calling thread.
//! * **`threads == 1` is exactly the sequential path** — no thread is
//!   spawned, no mutex is taken; tasks run inline on the caller in order.
//!
//! The pool width comes from [`thread_count`]: the `FSAM_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. The pipeline exposes the same
//! knob programmatically as [`Pipeline::with_threads`](crate::Pipeline::with_threads).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// What a pool run observed about itself: the worker count actually
/// spawned and the number of successful steals (tasks a worker took from
/// another worker's shard). Exported as the `par.workers` / `par.steals`
/// trace counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers that participated (1 for the inline sequential path).
    pub workers: usize,
    /// Tasks taken from a foreign shard.
    pub steals: u64,
}

impl PoolStats {
    /// Accumulates another run's stats (worker count saturates at the
    /// maximum, steals add up) — the solver runs the pool once per level.
    pub fn absorb(&mut self, other: PoolStats) {
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
    }
}

/// The configured pool width: `FSAM_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism (1 when that is
/// unknown).
pub fn thread_count() -> usize {
    match std::env::var("FSAM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every task on a pool of `threads` workers, returning the
/// results in task order.
///
/// `f` receives `(worker_index, task_index, &task)`. With `threads <= 1`
/// (or at most one task) everything runs inline on the calling thread —
/// the exact sequential code path, no spawn, no locking.
///
/// # Panics
///
/// Panics if a task panics: the worker unwinds, the remaining workers
/// drain the queue, and the first panic payload is resumed here. The pool
/// never deadlocks on a panicking task — no worker ever waits on another.
pub fn run_tasks<T, R, F>(threads: usize, tasks: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let (results, _, stats) = run_with_workers(threads, tasks, |_| (), |w, (), i, t| f(w, i, t));
    (results, stats)
}

/// Like [`run_tasks`], but each worker additionally owns a scratch state
/// built by `init(worker_index)` and threaded through every task it runs;
/// the states are returned in worker-index order so the caller can merge
/// them deterministically.
///
/// This is the sparse solver's entry point: the scratch state is a
/// thread-local [`fsam_pts::PtsPool`] arena, merged (and its handles
/// remapped) into the global pool at the level barrier.
pub fn run_with_workers<T, W, R, I, F>(
    threads: usize,
    tasks: &[T],
    init: I,
    f: F,
) -> (Vec<R>, Vec<W>, PoolStats)
where
    T: Sync,
    W: Send,
    R: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(usize, &mut W, usize, &T) -> R + Sync,
{
    if threads <= 1 || tasks.len() <= 1 {
        // The sequential path: inline, in order, on the calling thread.
        let mut w = init(0);
        let results = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| f(0, &mut w, i, t))
            .collect();
        return (
            results,
            vec![w],
            PoolStats {
                workers: 1,
                steals: 0,
            },
        );
    }

    let workers = threads.min(tasks.len());
    // Round-robin task distribution over per-worker shards: contiguous
    // runs of expensive tasks spread across workers up front, and
    // stealing corrects whatever imbalance remains.
    let shards: Vec<Mutex<VecDeque<u32>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..tasks.len() as u32)
                    .filter(|i| *i as usize % workers == w)
                    .collect(),
            )
        })
        .collect();
    let steals = AtomicU64::new(0);
    // One slot per task. `Mutex<Option<R>>` rather than `OnceLock<R>` so
    // `R` only needs `Send`; each slot is written exactly once (its task
    // runs on one worker), so the locks never contend.
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();

    let states = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shards = &shards;
                let steals = &steals;
                let slots = &slots;
                let init = &init;
                let f = &f;
                s.spawn(move || {
                    let mut state = init(w);
                    loop {
                        // Own shard first (front: preserve distribution
                        // order), then steal from the back of the others.
                        let mut job = shards[w].lock().expect("shard poisoned").pop_front();
                        if job.is_none() {
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                job = shards[victim].lock().expect("shard poisoned").pop_back();
                                if job.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        let Some(i) = job else { break };
                        let r = f(w, &mut state, i as usize, &tasks[i as usize]);
                        *slots[i as usize].lock().expect("slot poisoned") = Some(r);
                    }
                    state
                })
            })
            .collect();
        // Join explicitly so the first worker panic is resumed as-is
        // (scope would otherwise panic with a generic message). Joining in
        // order cannot hang: workers only drain the deque — none of them
        // waits on a peer.
        let mut states = Vec::with_capacity(workers);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(state) => states.push(state),
                Err(p) => panic = panic.or(Some(p)),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        states
    });

    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every task ran")
        })
        .collect();
    (
        results,
        states,
        PoolStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_task_list_drains_immediately() {
        let tasks: Vec<u32> = Vec::new();
        let (results, stats) = run_tasks(8, &tasks, |_, _, &t| t * 2);
        assert!(results.is_empty());
        assert_eq!(stats.workers, 1, "nothing to do: no workers spawned");
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let (results, stats) = run_tasks(threads, &tasks, |_, i, &t| {
                assert_eq!(i, t);
                t * t
            });
            assert_eq!(results, (0..257).map(|t| t * t).collect::<Vec<_>>());
            assert!(stats.workers <= threads);
        }
    }

    #[test]
    fn single_thread_runs_inline_on_the_caller() {
        let caller = thread::current().id();
        let tasks = vec![1u32, 2, 3];
        let order = Mutex::new(Vec::new());
        let (results, stats) = run_tasks(1, &tasks, |w, i, &t| {
            assert_eq!(w, 0);
            assert_eq!(
                thread::current().id(),
                caller,
                "threads=1 must not spawn a worker"
            );
            order.lock().unwrap().push(i);
            t + 10
        });
        assert_eq!(results, vec![11, 12, 13]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "strictly in order");
        assert_eq!(
            stats,
            PoolStats {
                workers: 1,
                steals: 0
            }
        );
    }

    /// `FSAM_THREADS=1` must select the inline path through
    /// [`thread_count`]; bad values fall back to the machine default.
    /// (Environment mutation is process-global, so one test owns the
    /// variable end to end.)
    #[test]
    fn thread_count_honours_env_and_rejects_garbage() {
        // Restore whatever the harness had — tests must not leak config.
        let saved = std::env::var("FSAM_THREADS").ok();
        std::env::set_var("FSAM_THREADS", "1");
        assert_eq!(thread_count(), 1);
        std::env::set_var("FSAM_THREADS", "7");
        assert_eq!(thread_count(), 7);
        std::env::set_var("FSAM_THREADS", "zero");
        assert_eq!(thread_count(), default_threads());
        std::env::set_var("FSAM_THREADS", "0");
        assert_eq!(thread_count(), default_threads());
        match saved {
            Some(v) => std::env::set_var("FSAM_THREADS", v),
            None => std::env::remove_var("FSAM_THREADS"),
        }
    }

    /// Work stealing under a skewed distribution: worker 0 sits in a slow
    /// task while the rest of its shard is stolen and finished by others.
    #[test]
    fn skewed_shards_are_rebalanced_by_stealing() {
        let workers = 4usize;
        // Round-robin assigns tasks 0, 4, 8, ... to worker 0's shard.
        // Task 0 is slow; its shard-mates must be stolen meanwhile.
        let tasks: Vec<usize> = (0..64).collect();
        let ran_by = Mutex::new(vec![usize::MAX; tasks.len()]);
        let (results, stats) = run_tasks(workers, &tasks, |w, i, &t| {
            if i == 0 {
                thread::sleep(std::time::Duration::from_millis(60));
            }
            ran_by.lock().unwrap()[i] = w;
            t
        });
        assert_eq!(results, tasks);
        let ran_by = ran_by.into_inner().unwrap();
        let own_shard_elsewhere = (0..64)
            .filter(|i| i % workers == 0 && ran_by[*i] != 0)
            .count();
        assert!(
            stats.steals as usize >= own_shard_elsewhere,
            "every foreign-run task was stolen: {} stolen, {} foreign-run",
            stats.steals,
            own_shard_elsewhere
        );
        assert!(
            own_shard_elsewhere > 0,
            "worker 0's shard should have been raided while it slept: {ran_by:?}"
        );
    }

    /// A panicking task propagates to the caller — and the pool does not
    /// hang waiting for anything.
    #[test]
    fn worker_panic_propagates_without_hanging() {
        let tasks: Vec<usize> = (0..32).collect();
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_tasks(4, &tasks, |_, _, &t| {
                if t == 5 {
                    panic!("task 5 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                t
            })
        }));
        let err = result.expect_err("the task panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("task 5 exploded"), "payload preserved: {msg}");
        // The surviving workers drained the rest of the queue.
        assert!(completed.load(Ordering::Relaxed) >= tasks.len() - 1 - 3);
    }

    /// Worker-local scratch state comes back in worker order and each
    /// task's result can name the worker that ran it.
    #[test]
    fn worker_states_are_returned_for_deterministic_merge() {
        let tasks: Vec<usize> = (0..40).collect();
        let (results, states, stats) = run_with_workers(
            3,
            &tasks,
            |w| (w, 0usize),
            |w, state, _, &t| {
                assert_eq!(state.0, w);
                state.1 += 1;
                (w, t)
            },
        );
        assert_eq!(states.len(), stats.workers);
        let per_worker_total: usize = states.iter().map(|s| s.1).sum();
        assert_eq!(per_worker_total, tasks.len());
        for (w, t) in results {
            assert!(w < stats.workers);
            assert!(t < 40);
        }
    }
}

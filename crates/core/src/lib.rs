//! # fsam — sparse flow-sensitive pointer analysis for multithreaded programs
//!
//! A from-scratch reproduction of *FSAM* (Sui, Di & Xue, CGO 2016): a
//! flow-sensitive pointer analysis that scales to multithreaded C-like
//! programs by propagating points-to facts sparsely along def-use chains
//! pre-computed by a series of thread-interference analyses.
//!
//! * [`Fsam`] runs the full pipeline of the paper's Figure 2 —
//!   Andersen pre-analysis, static thread model, thread-oblivious SVFG,
//!   interleaving/value-flow/lock analyses, sparse resolution;
//! * [`PhaseConfig`] toggles the interference phases (the Figure 12
//!   ablation);
//! * [`nonsparse`] is the traditional data-flow baseline (`NonSparse`,
//!   §4.3) the paper compares against;
//! * [`race`] is a data-race detection client built on the results (§6).
//!
//! ## Example
//!
//! ```
//! # #![allow(deprecated)] // pt_names: superseded by fsam_query::QueryEngine
//! use fsam::Fsam;
//! use fsam_ir::parse::parse_module;
//!
//! // The paper's Figure 1(a): a store in a spawned thread interferes with
//! // a load in main, so pt(c) = {y, z}.
//! let module = parse_module(r#"
//!     global x
//!     global y
//!     global z
//!     func foo() {
//!     entry:
//!       p2 = &x
//!       q = &y
//!       store p2, q
//!       ret
//!     }
//!     func main() {
//!     entry:
//!       p = &x
//!       r = &z
//!       t = fork foo()
//!       store p, r
//!       c = load p
//!       ret
//!     }
//! "#)?;
//! let fsam = Fsam::analyze(&module);
//! assert_eq!(fsam.pt_names(&module, "main", "c"), vec!["y", "z"]);
//! # Ok::<(), fsam_ir::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod instrument;
pub mod nonsparse;
pub mod pipeline;
pub mod queue;
pub mod race;
pub mod recompute;
pub mod solver;

#[allow(deprecated)]
pub use deadlock::detect as detect_deadlocks;
pub use deadlock::{detect_cycles, lock_order_edges, Deadlock, LockCycle};
pub use fsam_threads::MhpBackend;
pub use instrument::{plan as plan_instrumentation, InstrumentationPlan};
pub use nonsparse::{NonSparseOutcome, NonSparseResult, NonSparseStats};
pub use pipeline::{Fsam, PhaseConfig, PhaseTimes, Pipeline, StageBuildCounts};
pub use queue::IndexedPriorityQueue;
#[allow(deprecated)]
pub use race::detect as detect_races;
pub use race::{racy_instances, Race};
pub use recompute::solve_recompute;
pub use solver::{SolverStats, SparseResult};

//! # fsam — sparse flow-sensitive pointer analysis for multithreaded programs
//!
//! A from-scratch reproduction of *FSAM* (Sui, Di & Xue, CGO 2016): a
//! flow-sensitive pointer analysis that scales to multithreaded C-like
//! programs by propagating points-to facts sparsely along def-use chains
//! pre-computed by a series of thread-interference analyses.
//!
//! * [`Fsam`] runs the full pipeline of the paper's Figure 2 —
//!   Andersen pre-analysis, static thread model, thread-oblivious SVFG,
//!   interleaving/value-flow/lock analyses, sparse resolution;
//! * [`PhaseConfig`] toggles the interference phases (the Figure 12
//!   ablation);
//! * [`nonsparse`] is the traditional data-flow baseline (`NonSparse`,
//!   §4.3) the paper compares against;
//! * [`race`] holds the data-race primitives clients build on (§6).
//!
//! Name-based convenience queries (`pt_names`, `may_alias`, race/deadlock
//! reports) live downstream in `fsam_query::QueryEngine` and the
//! `fsam-lint` checker registry; this crate exposes the raw results.
//!
//! ## Example
//!
//! ```
//! use fsam::Fsam;
//! use fsam_ir::parse::parse_module;
//!
//! // The paper's Figure 1(a): a store in a spawned thread interferes with
//! // a load in main, so pt(c) = {y, z}.
//! let module = parse_module(r#"
//!     global x
//!     global y
//!     global z
//!     func foo() {
//!     entry:
//!       p2 = &x
//!       q = &y
//!       store p2, q
//!       ret
//!     }
//!     func main() {
//!     entry:
//!       p = &x
//!       r = &z
//!       t = fork foo()
//!       store p, r
//!       c = load p
//!       ret
//!     }
//! "#)?;
//! let fsam = Fsam::analyze(&module);
//! let c = Fsam::var_named(&module, "main", "c");
//! let mut names: Vec<String> = fsam
//!     .result
//!     .pt_var(c)
//!     .iter()
//!     .map(|o| fsam.pre.objects().display_name(&module, o))
//!     .collect();
//! names.sort();
//! assert_eq!(names, vec!["y", "z"]);
//! # Ok::<(), fsam_ir::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod instrument;
pub mod nonsparse;
pub mod par;
pub mod pipeline;
pub mod queue;
pub mod race;
pub mod recompute;
pub mod solver;

pub use deadlock::{detect_cycles, lock_order_edges, Deadlock, LockCycle};
pub use fsam_threads::MhpBackend;
pub use instrument::{plan as plan_instrumentation, InstrumentationPlan};
pub use nonsparse::{NonSparseOutcome, NonSparseResult, NonSparseStats};
pub use par::thread_count;
pub use pipeline::{Fsam, PhaseConfig, PhaseTimes, Pipeline, StageBuildCounts};
pub use queue::IndexedPriorityQueue;
pub use race::{racy_instances, Race};
pub use recompute::solve_recompute;
pub use solver::{solve_par, SolverStats, SparseResult};

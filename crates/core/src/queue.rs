//! An indexed min-priority worklist.
//!
//! The sparse solver assigns every worklist item a *static* topological
//! priority (from the SCC condensation of its def-use graph, see
//! [`fsam_mssa::topo`]) and always pops the pending item with the smallest
//! priority. Definitions are then processed before their transitive uses
//! whenever the graph is acyclic there, so a fact crosses each region once
//! per fixpoint round instead of rippling in LIFO order.
//!
//! Priorities never change after construction, so no decrease-key is
//! needed: a plain binary heap of `(priority, item)` pairs plus a dense
//! `queued` bitmap (for O(1) dedup) suffices. Ties break on the item id,
//! keeping pops — and therefore solver results — fully deterministic.

/// A deduplicating min-priority queue over dense item ids with fixed
/// priorities.
#[derive(Debug)]
pub struct IndexedPriorityQueue {
    prio: Vec<u32>,
    /// Binary min-heap of item ids, ordered by `(prio[id], id)`.
    heap: Vec<u32>,
    queued: Vec<bool>,
}

impl IndexedPriorityQueue {
    /// Creates a queue for items `0..prio.len()`, each with its fixed
    /// priority.
    pub fn new(prio: Vec<u32>) -> Self {
        let n = prio.len();
        IndexedPriorityQueue {
            prio,
            heap: Vec::new(),
            queued: vec![false; n],
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn key(&self, id: u32) -> (u32, u32) {
        (self.prio[id as usize], id)
    }

    /// Enqueues `id`; returns `false` if it was already queued.
    pub fn push(&mut self, id: usize) -> bool {
        if self.queued[id] {
            return false;
        }
        self.queued[id] = true;
        self.heap.push(id as u32);
        self.sift_up(self.heap.len() - 1);
        true
    }

    /// Pops the queued item with the smallest `(priority, id)`.
    pub fn pop(&mut self) -> Option<usize> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        self.queued[top as usize] = false;
        Some(top as usize)
    }

    /// Pops *every* queued item sharing the current smallest priority,
    /// appending them to `out` in ascending id order (the heap's tie-break).
    ///
    /// One call drains one level of the parallel solver's level-synchronous
    /// schedule: when the queue is keyed on topological *levels* rather than
    /// the total priority order, everything returned here is mutually
    /// independent outside its own SCC and can be evaluated concurrently.
    /// `out` is cleared first. Items pushed back while the batch is being
    /// processed re-enter the queue for a later call.
    pub fn pop_level(&mut self, out: &mut Vec<usize>) {
        out.clear();
        let Some(&first) = self.heap.first() else {
            return;
        };
        let level = self.prio[first as usize];
        while let Some(&top) = self.heap.first() {
            if self.prio[top as usize] != level {
                break;
            }
            out.push(self.pop().expect("non-empty heap"));
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(self.heap[i]) < self.key(self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.key(self.heap[l]) < self.key(self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.key(self.heap[r]) < self.key(self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut q = IndexedPriorityQueue::new(vec![3, 0, 2, 1]);
        for i in 0..4 {
            assert!(q.push(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_deduplicates_until_popped() {
        let mut q = IndexedPriorityQueue::new(vec![0, 1]);
        assert!(q.push(0));
        assert!(!q.push(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(0), "re-queuable after pop");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_priorities_break_ties_by_id() {
        let mut q = IndexedPriorityQueue::new(vec![5; 6]);
        for i in [4, 2, 0, 5, 1, 3] {
            q.push(i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pop_level_drains_exactly_one_priority_band() {
        let mut q = IndexedPriorityQueue::new(vec![1, 0, 1, 0, 2, 1]);
        for i in 0..6 {
            q.push(i);
        }
        let mut batch = Vec::new();
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![1, 3], "level 0, ascending id");
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![0, 2, 5], "level 1, ascending id");
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![4]);
        q.pop_level(&mut batch);
        assert!(batch.is_empty(), "empty queue yields an empty batch");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_level_items_can_requeue_for_a_later_batch() {
        let mut q = IndexedPriorityQueue::new(vec![0, 0, 1]);
        q.push(0);
        q.push(1);
        let mut batch = Vec::new();
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![0, 1]);
        // A popped item pushed back mid-batch lands in a later call, even at
        // the same priority.
        assert!(q.push(1));
        assert!(q.push(2));
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![1]);
        q.pop_level(&mut batch);
        assert_eq!(batch, vec![2]);
    }

    #[test]
    fn interleaved_push_pop_keeps_heap_invariant() {
        use fsam_ir::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0x90E0E);
        let n = 64usize;
        let prio: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..8)).collect();
        let mut q = IndexedPriorityQueue::new(prio.clone());
        let mut queued = vec![false; n];
        for _ in 0..1000 {
            if rng.gen_bool(0.6) {
                let id = rng.gen_range(0u32..n as u32) as usize;
                assert_eq!(q.push(id), !queued[id]);
                queued[id] = true;
            } else if let Some(popped) = q.pop() {
                assert!(queued[popped]);
                queued[popped] = false;
                // Min-heap property: nothing queued has a smaller key.
                for (id, &still) in queued.iter().enumerate() {
                    if still {
                        assert!((prio[popped], popped) < (prio[id], id));
                    }
                }
            }
        }
    }
}

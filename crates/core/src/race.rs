//! Data-race primitives shared by FSAM's race-detection clients.
//!
//! The paper names race detection as the first intended client (§1, §6:
//! "we plan to evaluate the effectiveness of FSAM in helping bug-detection
//! tools in detecting concurrency bugs such as data races"). A pair
//! `(store s, access s')` on a common abstract object races when
//! * some pair of their context-sensitive instances may happen in parallel
//!   (interleaving analysis), and
//! * that instance pair does not hold a common lock (lock analysis).
//!
//! The enumerating detectors live downstream: the `fsam-lint` registry
//! (checker FL0001, backed by the staged reducer) and the engine-backed
//! `fsam_query::detect_races`. This module provides what they share — the
//! [`Race`] report type and the instance-level lockset × MHP check
//! [`racy_instances`].

use fsam_ir::{Module, StmtId};
use fsam_pts::MemId;
use fsam_threads::mhp::MhpOracle;

use crate::pipeline::Fsam;

/// One potential data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// The writing statement.
    pub store: StmtId,
    /// The racing access (load or store).
    pub access: StmtId,
    /// The abstract object both may touch.
    pub obj: MemId,
}

impl Race {
    /// Human-readable rendering, e.g. for the race-detection example.
    pub fn render(&self, module: &Module, fsam: &Fsam) -> String {
        format!(
            "race on `{}`: write at {} || access at {}",
            fsam.pre.objects().display_name(module, self.obj),
            module.describe_stmt(self.store),
            module.describe_stmt(self.access),
        )
    }
}

/// Whether some MHP instance pair of `(s, a)` lacks a common lock.
///
/// Public so engine-backed clients (`fsam-query`) can reuse the
/// instance-level refinement after answering the statement-level queries
/// from a snapshot.
pub fn racy_instances(module_fsam: &Fsam, oracle: &dyn MhpOracle, s: StmtId, a: StmtId) -> bool {
    let icfg = &module_fsam.icfg;
    let is1 = oracle.instances(s);
    let is2 = oracle.instances(a);
    for &(t1, c1) in &is1 {
        for &(t2, c2) in &is2 {
            let i1 = (t1, c1, s);
            let i2 = (t2, c2, a);
            if !oracle.mhp_instances(icfg, i1, i2) {
                continue;
            }
            match &module_fsam.lock {
                Some(lock) => {
                    if !lock.commonly_protected(icfg, i1, i2) {
                        return true;
                    }
                }
                None => return true,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    use fsam_ir::parse::parse_module;
    use fsam_ir::StmtKind;

    /// Reference enumeration for these tests: the classic lockset × MHP
    /// check over the flow-sensitive sets, spelled out pair by pair. The
    /// shipping detectors (`fsam-lint` FL0001, `fsam_query::detect_races`)
    /// report the same races in factored/grouped form; here the point is to
    /// exercise `racy_instances` against known-racy and known-clean
    /// programs without any of that machinery.
    fn enumerate(module: &Module, fsam: &Fsam) -> Vec<Race> {
        let oracle: &dyn MhpOracle = &fsam.mhp;
        let shared = fsam_threads::SharedObjects::compute(module, &fsam.pre);
        let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
        let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
        for (sid, stmt) in module.stmts() {
            match stmt.kind {
                StmtKind::Store { ptr, .. } => {
                    for o in fsam.result.pt_var(ptr).iter() {
                        stores_of.entry(o).or_default().push(sid);
                        accesses_of.entry(o).or_default().push(sid);
                    }
                }
                StmtKind::Load { ptr, .. } => {
                    for o in fsam.result.pt_var(ptr).iter() {
                        accesses_of.entry(o).or_default().push(sid);
                    }
                }
                _ => {}
            }
        }
        let mut races = Vec::new();
        let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
        objects.sort();
        for o in objects {
            if fsam.pre.objects().as_thread_handle(o).is_some() {
                continue;
            }
            if !shared.is_shared(&fsam.pre, o) {
                continue;
            }
            let stores = &stores_of[&o];
            let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
            let store_set: HashSet<StmtId> = stores.iter().copied().collect();
            for &s in stores {
                for &a in accesses {
                    // Store/store pairs appear in both orders; keep one.
                    if store_set.contains(&a) && s > a {
                        continue;
                    }
                    if !fsam.mhp_rel.mhp_stmt(s, a) {
                        continue;
                    }
                    if racy_instances(fsam, oracle, s, a) {
                        races.push(Race {
                            store: s,
                            access: a,
                            obj: o,
                        });
                    }
                }
            }
        }
        races.sort_by_key(|r| (r.store, r.access, r.obj));
        races.dedup();
        races
    }

    fn races_of(src: &str) -> (Module, Fsam, Vec<Race>) {
        let m = parse_module(src).unwrap();
        let fsam = Fsam::analyze(&m);
        let races = enumerate(&m, &fsam);
        (m, fsam, races)
    }

    #[test]
    fn unprotected_parallel_write_is_a_race() {
        let (m, fsam, races) = races_of(
            r#"
            global counter
            func worker() {
            entry:
              p = &counter
              v = load p
              store p, v
              ret
            }
            func main() {
            entry:
              q = &counter
              t = fork worker()
              c = load q
              join t
              ret
            }
        "#,
        );
        assert!(!races.is_empty(), "write in worker races with main's read");
        let rendered = races[0].render(&m, &fsam);
        assert!(rendered.contains("counter"), "{rendered}");
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let (_, _, races) = races_of(
            r#"
            global counter
            global mu
            func worker() {
            entry:
              p = &counter
              l = &mu
              lock l
              v = load p
              store p, v
              unlock l
              ret
            }
            func main() {
            entry:
              q = &counter
              l2 = &mu
              t = fork worker()
              lock l2
              c = load q
              unlock l2
              join t
              ret
            }
        "#,
        );
        assert!(
            races.is_empty(),
            "consistent locking: no races, got {races:?}"
        );
    }

    #[test]
    fn post_join_access_does_not_race() {
        let (_, _, races) = races_of(
            r#"
            global counter
            func worker() {
            entry:
              p = &counter
              store p, p
              ret
            }
            func main() {
            entry:
              q = &counter
              t = fork worker()
              join t
              c = load q
              ret
            }
        "#,
        );
        assert!(
            races.is_empty(),
            "access after join is ordered, got {races:?}"
        );
    }

    #[test]
    fn inconsistent_locking_races() {
        let (_, _, races) = races_of(
            r#"
            global counter
            global mu
            func worker() {
            entry:
              p = &counter
              l = &mu
              lock l
              store p, p
              unlock l
              ret
            }
            func main() {
            entry:
              q = &counter
              t = fork worker()
              c = load q     // no lock held: races with worker's store
              join t
              ret
            }
        "#,
        );
        assert_eq!(races.len(), 1, "{races:?}");
    }

    /// Regression: a race must be reported even when the store's statement
    /// id is larger than the load's (the pair only enumerates store-first).
    #[test]
    fn store_after_load_in_program_order_still_races() {
        let (_, _, races) = races_of(
            r#"
            global counter
            func main_reader() {
            entry:
              q = &counter
              snapshot = load q   // load has the smaller statement id
              ret
            }
            func writer() {
            entry:
              p = &counter
              store p, p          // store has the larger statement id
              ret
            }
            func main() {
            entry:
              t1 = fork main_reader()
              t2 = fork writer()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert_eq!(races.len(), 1, "{races:?}");
    }

    #[test]
    fn sequential_program_has_no_races() {
        let (_, _, races) = races_of(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
        "#,
        );
        assert!(races.is_empty());
    }
}

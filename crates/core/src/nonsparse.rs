//! The NonSparse baseline — the traditional data-flow-based flow-sensitive
//! pointer analysis the paper evaluates against (§4.3).
//!
//! This re-implements what the paper calls `NonSparse`: Rugina & Rinard's
//! iterative flow-sensitive data-flow analysis \[25\], with parallel regions
//! discovered at procedure granularity by a PCG-style MHP analysis \[14\].
//! A full points-to map for address-taken objects is **maintained at every
//! ICFG node** and propagated blindly to all control-flow successors — and,
//! for stores in concurrent procedures, into every parallel region — whether
//! the facts are needed there or not. That per-program-point state is
//! exactly the time and memory cost that FSAM's sparsity eliminates
//! (Table 2: 12x time, 28x memory on average; out-of-time on the two
//! largest programs).
//!
//! The baseline shares the pre-analysis (Andersen) with FSAM for function
//! pointer resolution, as the paper's implementation does.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fsam_andersen::PreAnalysis;
use fsam_ir::icfg::{Icfg, NodeId, NodeKind};
use fsam_ir::stmt::{StmtKind, Terminator};
use fsam_ir::{FuncId, Module, VarId};
use fsam_mssa::topo::condense;
use fsam_pts::{MemId, PtsSet};
use fsam_threads::{ThreadId, ThreadModel};

use crate::queue::IndexedPriorityQueue;

/// Statistics of a NonSparse run.
#[derive(Clone, Debug, Default)]
pub struct NonSparseStats {
    /// Worklist pops.
    pub processed: usize,
    /// ICFG nodes carrying a points-to map.
    pub nodes: usize,
    /// Total points-to pairs across all program points.
    pub pts_entries: usize,
    /// Concurrent procedure pairs found by the PCG-style MHP.
    pub concurrent_proc_pairs: usize,
}

/// Why a NonSparse run ended.
#[derive(Debug)]
pub enum NonSparseOutcome {
    /// Reached the fixpoint.
    Done(NonSparseResult),
    /// Exceeded the time budget (the paper's "OOT", §4.4).
    OutOfTime {
        /// Time spent before giving up.
        elapsed: Duration,
        /// Partial statistics at abort time.
        stats: NonSparseStats,
        /// Bytes held when aborted (for reporting).
        bytes: usize,
    },
}

/// The converged baseline state.
#[derive(Debug)]
pub struct NonSparseResult {
    pt_vars: Vec<PtsSet>,
    in_maps: Vec<HashMap<MemId, PtsSet>>,
    /// Statistics.
    pub stats: NonSparseStats,
}

impl NonSparseResult {
    /// Points-to set of a top-level variable.
    pub fn pt_var(&self, v: VarId) -> &PtsSet {
        &self.pt_vars[v.index()]
    }

    /// The points-to map maintained at an ICFG node (IN state).
    pub fn pt_at(&self, n: NodeId, o: MemId) -> Option<&PtsSet> {
        self.in_maps[n.index()].get(&o)
    }

    /// Heap bytes held by the per-program-point state (memory metering).
    pub fn pts_bytes(&self) -> usize {
        bytes_of(&self.pt_vars, &self.in_maps)
    }
}

fn bytes_of(pt_vars: &[PtsSet], in_maps: &[HashMap<MemId, PtsSet>]) -> usize {
    let var_bytes: usize = pt_vars.iter().map(PtsSet::heap_bytes).sum();
    let map_bytes: usize = in_maps
        .iter()
        .map(|m| {
            m.values().map(PtsSet::heap_bytes).sum::<usize>()
                + m.len() * std::mem::size_of::<(MemId, PtsSet)>()
        })
        .sum();
    var_bytes + map_bytes
}

/// Runs the baseline. `budget` bounds wall-clock time (the Table 2 harness
/// uses the paper's two-hour cap scaled down).
pub fn run(
    module: &Module,
    pre: &PreAnalysis,
    icfg: &Icfg,
    tm: &ThreadModel,
    budget: Option<Duration>,
) -> NonSparseOutcome {
    Analysis::new(module, pre, icfg, tm).run(budget)
}

/// Runs the baseline with tracing: a `solve` span whose
/// `solve.worklist_items` counter matches the sparse solver's schema (so
/// FSAM-vs-baseline traces diff directly), plus the baseline-specific
/// per-program-point totals under the `nonsparse.` namespace.
pub fn run_traced(
    module: &Module,
    pre: &PreAnalysis,
    icfg: &Icfg,
    tm: &ThreadModel,
    budget: Option<Duration>,
    rec: &fsam_trace::Recorder,
    parent: Option<fsam_trace::SpanId>,
) -> NonSparseOutcome {
    if !rec.is_enabled() {
        return run(module, pre, icfg, tm, budget);
    }
    let span = rec.span_under(parent, "solve");
    let outcome = run(module, pre, icfg, tm, budget);
    let (stats, bytes, oot) = match &outcome {
        NonSparseOutcome::Done(r) => (&r.stats, r.pts_bytes(), 0u64),
        NonSparseOutcome::OutOfTime { stats, bytes, .. } => (stats, *bytes, 1),
    };
    span.counter("solve.worklist_items", stats.processed as u64);
    span.counter("nonsparse.nodes", stats.nodes as u64);
    span.counter("nonsparse.pts_entries", stats.pts_entries as u64);
    span.counter(
        "nonsparse.concurrent_proc_pairs",
        stats.concurrent_proc_pairs as u64,
    );
    span.counter("nonsparse.pts_bytes", bytes as u64);
    span.counter("nonsparse.out_of_time", oot);
    outcome
}

struct Analysis<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    icfg: &'a Icfg,
    pt_vars: Vec<PtsSet>,
    in_maps: Vec<HashMap<MemId, PtsSet>>,
    /// Interference input per function: stores from concurrent procedures.
    interf: Vec<HashMap<MemId, PtsSet>>,
    /// Function-level concurrency (PCG).
    conc_funcs: HashMap<FuncId, Vec<FuncId>>,
    /// Load nodes per function (re-pushed when interference grows).
    load_nodes: Vec<Vec<NodeId>>,
    /// Nodes to reprocess when a variable changes.
    var_dependents: Vec<Vec<NodeId>>,
    /// Extra propagation edges: joined routine exits -> join node.
    join_edges: Vec<(NodeId, NodeId)>,
    /// Priority worklist over ICFG nodes, keyed by the topological position
    /// of each node's SCC in the propagation graph (control-flow successors
    /// plus join and fork edges). The baseline's transfer functions are
    /// monotone in the per-point maps, so the fixpoint is order-independent;
    /// the priority order just reaches it with fewer pops than LIFO.
    queue: IndexedPriorityQueue,
    stats: NonSparseStats,
}

impl<'a> Analysis<'a> {
    fn new(module: &'a Module, pre: &'a PreAnalysis, icfg: &'a Icfg, tm: &'a ThreadModel) -> Self {
        let n = icfg.node_count();

        // PCG: function-level concurrency from the thread model without
        // statement-level fork/join positioning.
        let mut thread_pairs: Vec<(ThreadId, ThreadId)> = Vec::new();
        for a in tm.threads() {
            for b in tm.threads() {
                if a.id == b.id {
                    if a.multi_forked {
                        thread_pairs.push((a.id, b.id));
                    }
                    continue;
                }
                let ordered = tm.are_siblings(a.id, b.id)
                    && (tm.happens_before(icfg, a.id, b.id) || tm.happens_before(icfg, b.id, a.id));
                if !ordered {
                    thread_pairs.push((a.id, b.id));
                }
            }
        }
        let mut conc_funcs: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut pair_count = 0usize;
        for &(t1, t2) in &thread_pairs {
            for &f1 in tm.funcs_of(t1) {
                for &f2 in tm.funcs_of(t2) {
                    let entry = conc_funcs.entry(f1).or_default();
                    if !entry.contains(&f2) {
                        entry.push(f2);
                        pair_count += 1;
                    }
                }
            }
        }

        // Dependency maps.
        let mut var_dependents: Vec<Vec<NodeId>> = vec![Vec::new(); module.var_count()];
        let mut load_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); module.func_count()];
        let mut join_edges = Vec::new();
        for (sid, stmt) in module.stmts() {
            let node = icfg.stmt_node(sid);
            for u in stmt.uses() {
                var_dependents[u.index()].push(node);
            }
            match &stmt.kind {
                StmtKind::Load { .. } => load_nodes[stmt.func.index()].push(node),
                StmtKind::Join { .. } => {
                    for e in tm.joins_at(sid) {
                        let routine = tm.info(e.thread).routine;
                        join_edges.push((icfg.exit(routine), node));
                    }
                }
                _ => {}
            }
        }
        // Return variables feed call sites.
        for (sid, stmt) in module.stmts() {
            if let StmtKind::Call { dst: Some(_), .. } = stmt.kind {
                for callee in pre.call_graph().targets(sid) {
                    for (_, b) in module.func(callee).blocks() {
                        if let Terminator::Ret(Some(v)) = b.term {
                            var_dependents[v.index()].push(icfg.stmt_node(sid));
                        }
                    }
                }
            }
        }

        let stats = NonSparseStats {
            concurrent_proc_pairs: pair_count,
            nodes: n,
            ..Default::default()
        };

        // Topological priorities over the propagation graph the baseline
        // actually iterates: ICFG successors, join side-effect edges, and
        // fork entry edges.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for nd in icfg.node_ids() {
            for &(s, _) in icfg.succs(nd) {
                if s != nd {
                    adj[nd.index()].push(s.index() as u32);
                }
            }
        }
        for &(from, to) in &join_edges {
            adj[from.index()].push(to.index() as u32);
        }
        for (sid, stmt) in module.stmts() {
            if matches!(stmt.kind, StmtKind::Fork { .. }) {
                for callee in pre.call_graph().targets(sid) {
                    adj[icfg.stmt_node(sid).index()].push(icfg.entry(callee).index() as u32);
                }
            }
        }
        let order = condense(&adj);

        Analysis {
            module,
            pre,
            icfg,
            pt_vars: vec![PtsSet::new(); module.var_count()],
            in_maps: vec![HashMap::new(); n],
            interf: vec![HashMap::new(); module.func_count()],
            conc_funcs,
            load_nodes,
            var_dependents,
            join_edges,
            queue: IndexedPriorityQueue::new(order.priority),
            stats,
        }
    }

    fn push(&mut self, n: NodeId) {
        self.queue.push(n.index());
    }

    fn grow_var(&mut self, v: VarId, set: &PtsSet) {
        if self.pt_vars[v.index()].union_in_place(set) {
            for i in 0..self.var_dependents[v.index()].len() {
                let dep = self.var_dependents[v.index()][i];
                self.push(dep);
            }
        }
    }

    /// `pt(dst) ∪= pt(src)` between two top-level variables.
    fn copy_var(&mut self, dst: VarId, src: VarId) {
        let (d, s) = (dst.index(), src.index());
        if d == s {
            return;
        }
        let (lo, hi) = self.pt_vars.split_at_mut(d.max(s));
        let grew = if d < s {
            lo[d].union_in_place(&hi[0])
        } else {
            hi[0].union_in_place(&lo[s])
        };
        if grew {
            for i in 0..self.var_dependents[d].len() {
                let dep = self.var_dependents[d][i];
                self.push(dep);
            }
        }
    }

    fn insert_var(&mut self, v: VarId, o: MemId) {
        if self.pt_vars[v.index()].insert(o) {
            for i in 0..self.var_dependents[v.index()].len() {
                let dep = self.var_dependents[v.index()][i];
                self.push(dep);
            }
        }
    }

    /// Unions the value of `o` at node `n` — the per-point map plus the
    /// interference input — into `acc`.
    fn read_mem_into(&self, n: NodeId, o: MemId, acc: &mut PtsSet) {
        if let Some(set) = self.in_maps[n.index()].get(&o) {
            acc.union_in_place(set);
        }
        if let Some(i) = self.interf[self.icfg.func_of(n).index()].get(&o) {
            acc.union_in_place(i);
        }
    }

    /// Merges `out` into the IN map of `succ`.
    fn flow_into(&mut self, out: &HashMap<MemId, PtsSet>, succ: NodeId) {
        let mut changed = false;
        for (&o, set) in out {
            changed |= self.in_maps[succ.index()]
                .entry(o)
                .or_default()
                .union_in_place(set);
        }
        if changed {
            self.push(succ);
        }
    }

    fn process(&mut self, n: NodeId) {
        let module = self.module;
        let pre = self.pre;
        let icfg = self.icfg;
        // OUT starts as a copy of IN (the costly part of NonSparse: points-to
        // maps are materialized and copied at every program point).
        let mut out = self.in_maps[n.index()].clone();

        if let NodeKind::Stmt(sid) = icfg.kind(n) {
            let stmt = module.stmt(sid);
            match &stmt.kind {
                StmtKind::Addr { dst, obj } => {
                    let m = pre.objects().base(*obj);
                    self.insert_var(*dst, m);
                }
                StmtKind::Copy { dst, src } => {
                    self.copy_var(*dst, *src);
                }
                StmtKind::Phi { dst, arms } => {
                    for arm in arms {
                        self.copy_var(*dst, arm.var);
                    }
                }
                StmtKind::Gep { dst, base, field } => {
                    let mut fields = PtsSet::new();
                    for o in self.pt_vars[base.index()].iter() {
                        fields.insert(pre.objects().field_existing(o, *field));
                    }
                    self.grow_var(*dst, &fields);
                }
                StmtKind::Load { dst, ptr } => {
                    let mut vals = PtsSet::new();
                    for o in self.pt_vars[ptr.index()].iter() {
                        self.read_mem_into(n, o, &mut vals);
                    }
                    self.grow_var(*dst, &vals);
                }
                StmtKind::Store { ptr, val } => {
                    let func = stmt.func;
                    // Strong update only for singleton objects in functions
                    // with no concurrent peer (the baseline has no
                    // statement-level thread ordering).
                    let sequential = !self.conc_funcs.contains_key(&func);
                    let strong = sequential
                        && self.pt_vars[ptr.index()]
                            .as_singleton()
                            .is_some_and(|o| pre.objects().is_singleton(o));
                    for o in self.pt_vars[ptr.index()].iter() {
                        if strong {
                            out.insert(o, self.pt_vars[val.index()].clone());
                        } else {
                            out.entry(o)
                                .or_default()
                                .union_in_place(&self.pt_vars[val.index()]);
                        }
                        // Broadcast the generated fact into every concurrent
                        // procedure: blind propagation — every load of the
                        // parallel region must reconsider.
                        if let Some(targets) = self.conc_funcs.get(&func) {
                            for &q in targets {
                                let grew = self.interf[q.index()]
                                    .entry(o)
                                    .or_default()
                                    .union_in_place(&self.pt_vars[val.index()]);
                                if grew {
                                    for &ld in &self.load_nodes[q.index()] {
                                        self.queue.push(ld.index());
                                    }
                                }
                            }
                        }
                    }
                }
                StmtKind::Call { args, dst, .. } => {
                    for callee in pre.call_graph().targets(sid) {
                        let f = module.func(callee);
                        for (&a, &p) in args.iter().zip(f.params.iter()) {
                            self.copy_var(p, a);
                        }
                        if let Some(d) = dst {
                            if !f.is_external {
                                for (_, b) in f.blocks() {
                                    if let Terminator::Ret(Some(r)) = b.term {
                                        self.copy_var(*d, r);
                                    }
                                }
                            }
                        }
                    }
                }
                StmtKind::Fork {
                    dst,
                    arg,
                    handle_obj,
                    ..
                } => {
                    let m = pre.objects().base(*handle_obj);
                    self.insert_var(*dst, m);
                    for callee in pre.call_graph().targets(sid) {
                        if let (Some(&a), Some(&p)) =
                            (arg.as_ref(), module.func(callee).params.first())
                        {
                            self.copy_var(p, a);
                        }
                        // The spawnee starts from the spawner's memory state.
                        self.flow_into(&out, icfg.entry(callee));
                    }
                }
                // Sync intrinsics don't touch pointer memory; atomic dsts
                // have empty points-to by IR contract (DESIGN §1.9).
                StmtKind::Join { .. }
                | StmtKind::Lock { .. }
                | StmtKind::Unlock { .. }
                | StmtKind::Signal { .. }
                | StmtKind::Wait { .. }
                | StmtKind::Broadcast { .. }
                | StmtKind::BarrierInit { .. }
                | StmtKind::BarrierWait { .. }
                | StmtKind::AtomicLoad { .. }
                | StmtKind::AtomicStore { .. }
                | StmtKind::AtomicRmw { .. } => {}
            }
        }

        // Propagate OUT to all ICFG successors (blind propagation).
        for &(s, _) in icfg.succs(n) {
            self.flow_into(&out, s);
        }
        // Join side-effect edges.
        for i in 0..self.join_edges.len() {
            let (from, to) = self.join_edges[i];
            if from == n {
                self.flow_into(&out, to);
            }
        }
    }

    fn run(mut self, budget: Option<Duration>) -> NonSparseOutcome {
        let start = Instant::now();
        for n in self.icfg.node_ids() {
            self.push(n);
        }
        while let Some(id) = self.queue.pop() {
            let n = NodeId::from_index(id);
            self.stats.processed += 1;
            if self.stats.processed == 1 || self.stats.processed.is_multiple_of(256) {
                if let Some(b) = budget {
                    if start.elapsed() > b {
                        let bytes = bytes_of(&self.pt_vars, &self.in_maps);
                        return NonSparseOutcome::OutOfTime {
                            elapsed: start.elapsed(),
                            stats: self.stats,
                            bytes,
                        };
                    }
                }
            }
            self.process(n);
        }
        self.stats.pts_entries = self.pt_vars.iter().map(PtsSet::len).sum::<usize>()
            + self
                .in_maps
                .iter()
                .map(|m| m.values().map(PtsSet::len).sum::<usize>())
                .sum::<usize>();
        NonSparseOutcome::Done(NonSparseResult {
            pt_vars: self.pt_vars,
            in_maps: self.in_maps,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Fsam;
    use fsam_ir::parse::parse_module;

    fn analyze(src: &str) -> (Module, Fsam, NonSparseResult) {
        let m = parse_module(src).unwrap();
        let fsam = Fsam::analyze(&m);
        let outcome = run(&m, &fsam.pre, &fsam.icfg, &fsam.tm, None);
        let NonSparseOutcome::Done(res) = outcome else {
            panic!("baseline did not finish")
        };
        (m, fsam, res)
    }

    const SHARED: &str = r#"
        global x
        global y
        global z
        func foo() {
        entry:
          p2 = &x
          q = &y
          store p2, q
          ret
        }
        func main() {
        entry:
          p = &x
          r = &z
          t = fork foo()
          store p, r
          c = load p
          join t
          ret
        }
    "#;

    #[test]
    fn baseline_is_sound_wrt_interleaving() {
        let (m, fsam, res) = analyze(SHARED);
        let c = Fsam::var_named(&m, "main", "c");
        // Figure 1(a): pt(c) must contain both y and z.
        let names: Vec<String> = res
            .pt_var(c)
            .iter()
            .map(|o| fsam.pre.objects().display_name(&m, o))
            .collect();
        assert!(names.contains(&"y".to_owned()), "{names:?}");
        assert!(names.contains(&"z".to_owned()), "{names:?}");
    }

    #[test]
    fn both_flow_sensitive_analyses_refine_andersen() {
        let (m, fsam, res) = analyze(SHARED);
        for v in m.var_ids() {
            assert!(
                fsam.result.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                "FSAM ⊄ Andersen on {}",
                m.var_name(v)
            );
            assert!(
                res.pt_var(v).is_subset(fsam.pre.pt_var(v)),
                "NonSparse ⊄ Andersen on {}",
                m.var_name(v)
            );
        }
    }

    #[test]
    fn fsam_refines_baseline_on_sequential_programs() {
        let (m, fsam, res) = analyze(
            r#"
            global a
            global b
            global c
            func helper(p) {
            entry:
              v = load p
              store p, v
              ret v
            }
            func main() {
            entry:
              pa = &a
              pb = &b
              pc = &c
              store pa, pb
              store pa, pc
              h = call helper(pa)
              d = load pa
              ret
            }
        "#,
        );
        assert!(fsam.tm.is_empty(), "sequential program");
        for v in m.var_ids() {
            assert!(
                fsam.result.pt_var(v).is_subset(res.pt_var(v)),
                "sequential FSAM ⊄ NonSparse on {}: {:?} vs {:?}",
                m.var_name(v),
                fsam.result.pt_var(v),
                res.pt_var(v)
            );
        }
    }

    #[test]
    fn baseline_carries_state_at_every_point() {
        let (_, fsam, res) = analyze(SHARED);
        // NonSparse materializes maps at many program points; FSAM keeps
        // points-to only at definitions.
        assert!(res.stats.pts_entries > 0);
        assert!(
            res.stats.pts_entries >= fsam.result.stats.var_pts_entries,
            "baseline holds no more points-to entries than the sparse solver"
        );
    }

    #[test]
    fn budget_aborts() {
        let m = parse_module(SHARED).unwrap();
        let fsam = Fsam::analyze(&m);
        let outcome = run(&m, &fsam.pre, &fsam.icfg, &fsam.tm, Some(Duration::ZERO));
        assert!(matches!(outcome, NonSparseOutcome::OutOfTime { .. }));
    }

    #[test]
    fn sequential_strong_update_matches_fsam() {
        let (m, fsam, res) = analyze(
            r#"
            global x
            global y
            global z
            func main() {
            entry:
              p = &x
              r = &z
              q = &y
              store p, r
              store p, q
              c = load p
              ret
            }
        "#,
        );
        let c = Fsam::var_named(&m, "main", "c");
        let names: Vec<String> = res
            .pt_var(c)
            .iter()
            .map(|o| fsam.pre.objects().display_name(&m, o))
            .collect();
        assert_eq!(
            names,
            vec!["y"],
            "sequential program: baseline strong-updates too"
        );
    }
}

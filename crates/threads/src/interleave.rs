//! The interleaving (MHP) analysis — paper §3.3.1, Figure 7.
//!
//! A flow- and context-sensitive forward data-flow over every thread's ICFG.
//! For each context-sensitive statement instance `(t, c, s)` it computes
//! `I(t, c, s)`: the set of threads that may be running in parallel when `t`
//! executes `s` under context `c`. Two statement instances may happen in
//! parallel (`∥`) iff each one's thread appears in the other's `I` set — or
//! the instances belong to the same *multi-forked* thread (Definition 1).
//!
//! The rules map onto the driver in [`crate::flow`] as follows:
//!
//! * `[I-DESCENDANT]` — the transfer function at a fork site adds the
//!   spawned subtree to the spawner's set (the transitive `[T-FORK]`
//!   premise), and every thread's entry fact contains its spawn-ancestors;
//! * `[I-SIBLING]` — entry facts also contain the eligible siblings (those
//!   not ordered by happens-before, Definition 2);
//! * `[I-JOIN]` — the transfer at a join site removes the threads the model
//!   proves dead ([`ThreadModel::dead_after_for`]);
//! * `[I-CALL]`/`[I-RET]`/`[I-INTRA]` — context transitions in the driver.

use std::collections::HashMap;

use fsam_ir::context::{ContextTable, CtxId};
use fsam_ir::icfg::{Icfg, NodeId, NodeKind};
use fsam_ir::{Module, StmtId, StmtKind};

use crate::flow::{run_forward, FlowState, ForwardProblem};
use crate::mhp::MhpOracle;
use crate::model::{ThreadId, ThreadModel};

/// A set of [`ThreadId`]s (a compact sorted vector; thread counts are small).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadSet {
    ids: Vec<u32>,
}

impl ThreadSet {
    /// The empty set.
    pub fn new() -> ThreadSet {
        ThreadSet::default()
    }

    /// Whether `t` is a member.
    pub fn contains(&self, t: ThreadId) -> bool {
        self.ids.binary_search(&t.0).is_ok()
    }

    /// Inserts `t`; returns `true` if new.
    pub fn insert(&mut self, t: ThreadId) -> bool {
        match self.ids.binary_search(&t.0) {
            Ok(_) => false,
            Err(i) => {
                self.ids.insert(i, t.0);
                true
            }
        }
    }

    /// Removes `t`; returns `true` if it was present.
    pub fn remove(&mut self, t: ThreadId) -> bool {
        match self.ids.binary_search(&t.0) {
            Ok(i) => {
                self.ids.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Unions `other` into `self`; returns `true` if `self` grew.
    pub fn union_in_place(&mut self, other: &ThreadSet) -> bool {
        let mut changed = false;
        for &id in &other.ids {
            changed |= self.insert(ThreadId(id));
        }
        changed
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.ids.iter().map(|&id| ThreadId(id))
    }
}

impl FromIterator<ThreadId> for ThreadSet {
    fn from_iter<I: IntoIterator<Item = ThreadId>>(iter: I) -> Self {
        let mut s = ThreadSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

struct InterleaveProblem<'a> {
    module: &'a Module,
    tm: &'a ThreadModel,
    entry_facts: Vec<ThreadSet>,
}

impl ForwardProblem for InterleaveProblem<'_> {
    type Fact = ThreadSet;

    fn entry_fact(&mut self, t: ThreadId) -> ThreadSet {
        self.entry_facts[t.index()].clone()
    }

    fn transfer(&mut self, _t: ThreadId, _c: CtxId, node: NodeId, fact: &ThreadSet) -> ThreadSet {
        let _ = node;
        fact.clone()
    }

    fn merge(&mut self, current: &mut ThreadSet, incoming: &ThreadSet) -> bool {
        current.union_in_place(incoming)
    }
}

// The real transfer needs the node kind; we specialize below by wrapping the
// generic problem (the driver calls `transfer` with the node id).
struct InterleaveTransfer<'a> {
    inner: InterleaveProblem<'a>,
    icfg: &'a Icfg,
    /// Symmetric-join kill edges: join-loop exit edges → the join sites
    /// whose symmetric entries die there (Fig. 11 semantics).
    symmetric_kills: HashMap<(NodeId, NodeId), Vec<StmtId>>,
}

impl ForwardProblem for InterleaveTransfer<'_> {
    type Fact = ThreadSet;

    fn entry_fact(&mut self, t: ThreadId) -> ThreadSet {
        self.inner.entry_fact(t)
    }

    fn transfer(&mut self, t: ThreadId, c: CtxId, node: NodeId, fact: &ThreadSet) -> ThreadSet {
        let mut out = fact.clone();
        if let NodeKind::Stmt(s) = self.icfg.kind(node) {
            match self.inner.module.stmt(s).kind {
                StmtKind::Fork { .. } => {
                    // [I-DESCENDANT]: everything spawned through this fork
                    // site (transitively) may now run in parallel with t.
                    for child in self.inner.tm.children_at(t, s) {
                        for d in self.inner.tm.subtree(child) {
                            out.insert(d);
                        }
                    }
                }
                StmtKind::Join { .. } => {
                    // [I-JOIN]: joined threads (closed under full joins) die.
                    // Symmetric (multi-forked) entries are excluded here:
                    // inside the join loop other runtime instances are still
                    // alive; they die on the loop-exit edges instead.
                    let tm = self.inner.tm;
                    let seed = tm
                        .joins_at(s)
                        .iter()
                        .filter(|e| e.spawner == t && !e.symmetric)
                        .map(|e| e.thread);
                    for dead in tm.close_under_full_joins(seed) {
                        out.remove(dead);
                    }
                }
                _ => {}
            }
        }
        let _ = c;
        out
    }

    fn merge(&mut self, current: &mut ThreadSet, incoming: &ThreadSet) -> bool {
        self.inner.merge(current, incoming)
    }

    fn edge_transfer(
        &mut self,
        t: ThreadId,
        _ctx: CtxId,
        from: NodeId,
        to: NodeId,
        mut fact: ThreadSet,
    ) -> ThreadSet {
        if let Some(join_sites) = self.symmetric_kills.get(&(from, to)) {
            let tm = self.inner.tm;
            for &jn in join_sites {
                let seed = tm
                    .joins_at(jn)
                    .iter()
                    .filter(|e| e.spawner == t && e.symmetric)
                    .map(|e| e.thread);
                for dead in tm.close_under_full_joins(seed) {
                    fact.remove(dead);
                }
            }
        }
        fact
    }
}

/// The result of the interleaving analysis.
#[derive(Debug)]
pub struct Interleaving {
    /// IN facts per `(thread, context, node)`.
    state: FlowState<ThreadSet>,
    /// Context instances per `(thread, statement)`.
    instances: HashMap<(ThreadId, StmtId), Vec<CtxId>>,
    /// Union over contexts of `I(t, ·, s)` per `(thread, statement)`.
    alive: HashMap<(ThreadId, StmtId), ThreadSet>,
    /// Threads executing each statement's function.
    executors: HashMap<StmtId, Vec<ThreadId>>,
    multi: Vec<bool>,
}

impl Interleaving {
    /// Runs the interleaving analysis. `ctxs` is the shared, pre-populated
    /// context table (see [`crate::flow::precompute_contexts`]); the lock
    /// analysis must use the same one so instance ids align. Taking it
    /// read-only lets both analyses run concurrently.
    pub fn compute(
        module: &Module,
        icfg: &Icfg,
        pre: &fsam_andersen::PreAnalysis,
        tm: &ThreadModel,
        ctxs: &ContextTable,
    ) -> Interleaving {
        // Entry facts: ancestors + unordered siblings.
        let mut entry_facts = Vec::with_capacity(tm.len());
        for ti in tm.threads() {
            let mut set = ThreadSet::new();
            // Spawn-ancestors ([I-DESCENDANT] conclusion at the spawnee).
            let mut anc = ti.spawner;
            while let Some(a) = anc {
                set.insert(a);
                anc = tm.info(a).spawner;
            }
            // Siblings not ordered by happens-before ([I-SIBLING]).
            for other in tm.threads() {
                if tm.are_siblings(ti.id, other.id)
                    && !tm.happens_before(icfg, ti.id, other.id)
                    && !tm.happens_before(icfg, other.id, ti.id)
                {
                    set.insert(other.id);
                }
            }
            entry_facts.push(set);
        }

        // Symmetric-join kill edges: the exit edges of each symmetric join's
        // loop (Fig. 11: all runtime instances are joined once the loop is
        // done).
        let mut symmetric_kills: HashMap<(NodeId, NodeId), Vec<StmtId>> = HashMap::new();
        let node_block = |n: NodeId| match icfg.kind(n) {
            NodeKind::Stmt(s) | NodeKind::CallRet(s) => {
                let st = module.stmt(s);
                Some((st.func, st.block))
            }
            NodeKind::Skip(f, b) => Some((f, b)),
            _ => None,
        };
        for (jn, stmt) in module.stmts() {
            if !matches!(stmt.kind, StmtKind::Join { .. }) {
                continue;
            }
            if !tm.joins_at(jn).iter().any(|e| e.symmetric) {
                continue;
            }
            let func = module.func(stmt.func);
            let dom = fsam_ir::dom::DomTree::compute(func);
            let li = fsam_ir::loops::LoopInfo::compute(func, &dom);
            let Some(lj) = li.innermost_loop(stmt.block) else {
                continue;
            };
            let loop_blocks = &li.loops()[lj as usize].blocks;
            for n1 in icfg.node_ids() {
                let Some((f1, b1)) = node_block(n1) else {
                    continue;
                };
                if f1 != stmt.func || !loop_blocks.contains(&b1) {
                    continue;
                }
                for &(n2, _) in icfg.succs(n1) {
                    match node_block(n2) {
                        Some((f2, b2)) if f2 == stmt.func && !loop_blocks.contains(&b2) => {
                            symmetric_kills.entry((n1, n2)).or_default().push(jn);
                        }
                        None if matches!(icfg.kind(n2), NodeKind::Exit(f) if f == stmt.func) => {
                            // Leaving the function is also leaving the loop.
                            symmetric_kills.entry((n1, n2)).or_default().push(jn);
                        }
                        _ => {}
                    }
                }
            }
        }

        let mut problem = InterleaveTransfer {
            inner: InterleaveProblem {
                module,
                tm,
                entry_facts,
            },
            icfg,
            symmetric_kills,
        };
        let state = run_forward(module, icfg, pre.call_graph(), tm, ctxs, &mut problem);

        // Summaries.
        let mut instances: HashMap<(ThreadId, StmtId), Vec<CtxId>> = HashMap::new();
        let mut alive: HashMap<(ThreadId, StmtId), ThreadSet> = HashMap::new();
        for (&(t, c, node), fact) in &state {
            if let NodeKind::Stmt(s) = icfg.kind(node) {
                instances.entry((t, s)).or_default().push(c);
                alive.entry((t, s)).or_default().union_in_place(fact);
            }
        }
        for ctxs_of in instances.values_mut() {
            ctxs_of.sort();
            ctxs_of.dedup();
        }
        let mut executors: HashMap<StmtId, Vec<ThreadId>> = HashMap::new();
        for (sid, stmt) in module.stmts() {
            let ts = tm.threads_executing(stmt.func);
            if !ts.is_empty() {
                executors.insert(sid, ts);
            }
        }
        let multi = tm.threads().iter().map(|ti| ti.multi_forked).collect();

        Interleaving {
            state,
            instances,
            alive,
            executors,
            multi,
        }
    }

    /// `I(t, c, s)`: threads that may run in parallel when `t` executes `s`
    /// under context `c` (`None` if the instance is unreachable).
    pub fn alive_at(&self, icfg: &Icfg, t: ThreadId, c: CtxId, s: StmtId) -> Option<&ThreadSet> {
        self.state.get(&(t, c, icfg.stmt_node(s)))
    }

    /// Union of `I(t, ·, s)` over all contexts.
    pub fn alive_any(&self, t: ThreadId, s: StmtId) -> Option<&ThreadSet> {
        self.alive.get(&(t, s))
    }

    /// Number of `(thread, context, node)` states (for statistics).
    pub fn state_count(&self) -> usize {
        self.state.len()
    }

    /// Threads executing each statement's function (the statement-level MHP
    /// inputs, exported by [`crate::facts`]).
    pub fn executors_map(&self) -> &HashMap<StmtId, Vec<ThreadId>> {
        &self.executors
    }

    /// Per-thread multi-forked flags, indexed by [`ThreadId::index`].
    pub fn multi_flags(&self) -> &[bool] {
        &self.multi
    }

    /// Union-over-contexts alive sets per `(thread, statement)`.
    pub fn alive_map(&self) -> &HashMap<(ThreadId, StmtId), ThreadSet> {
        &self.alive
    }
}

impl MhpOracle for Interleaving {
    fn instances(&self, s: StmtId) -> Vec<(ThreadId, CtxId)> {
        let mut out = Vec::new();
        for &t in self.executors.get(&s).map_or(&[][..], Vec::as_slice) {
            if let Some(ctxs) = self.instances.get(&(t, s)) {
                out.extend(ctxs.iter().map(|&c| (t, c)));
            }
        }
        out
    }

    fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        let (Some(e1), Some(e2)) = (self.executors.get(&s1), self.executors.get(&s2)) else {
            return false;
        };
        for &t1 in e1 {
            for &t2 in e2 {
                if t1 == t2 {
                    if self.multi[t1.index()] {
                        return true;
                    }
                    continue;
                }
                let fwd = self.alive.get(&(t1, s1)).is_some_and(|a| a.contains(t2));
                let bwd = self.alive.get(&(t2, s2)).is_some_and(|a| a.contains(t1));
                if fwd && bwd {
                    return true;
                }
            }
        }
        false
    }

    fn mhp_instances(
        &self,
        icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
    ) -> bool {
        let (t1, c1, s1) = i1;
        let (t2, c2, s2) = i2;
        if t1 == t2 {
            return self.multi[t1.index()];
        }
        let fwd = self
            .state
            .get(&(t1, c1, icfg.stmt_node(s1)))
            .is_some_and(|a| a.contains(t2));
        let bwd = self
            .state
            .get(&(t2, c2, icfg.stmt_node(s2)))
            .is_some_and(|a| a.contains(t1));
        fwd && bwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_andersen::PreAnalysis;
    use fsam_ir::parse::parse_module;

    pub(crate) fn analyze(src: &str) -> (Module, Icfg, ThreadModel, Interleaving) {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(&m, &icfg, &pre, &tm, &ctxs);
        (m, icfg, tm, inter)
    }

    fn nth_stmt(m: &Module, f: &str, pred: impl Fn(&StmtKind) -> bool, n: usize) -> StmtId {
        let fid = m.func_by_name(f).unwrap();
        m.stmts()
            .filter(|(_, s)| s.func == fid && pred(&s.kind))
            .nth(n)
            .unwrap_or_else(|| panic!("no stmt #{n} in {f}"))
            .0
    }

    /// The paper's Figure 8, faithfully: main runs s1; forks t1; s2; joins
    /// t1; calls bar at cs4... — we encode the original shape.
    const FIG8: &str = r#"
        global g
        func bar() {
        entry:
          s5 = &g        // stands for statement s5
          ret
        }
        func foo2() {
        entry:
          call bar()     // cs4
          s3x = &g
          ret
        }
        func foo1() {
        entry:
          t3 = fork bar()   // fk3
          join t3           // jn3
          ret
        }
        func main() {
        entry:
          s1 = &g
          t1 = fork foo1()  // fk1
          s2 = &g           // s2: while t1 (and t3) alive
          join t1           // jn1
          t2 = fork foo2()  // fk2
          s3 = &g           // s3: while t2 alive
          join t2           // jn2
          ret
        }
    "#;

    #[test]
    fn figure8_interleaving_facts() {
        let (m, icfg, tm, inter) = analyze(FIG8);
        let by_routine = |name: &str| {
            let f = m.func_by_name(name).unwrap();
            tm.threads().iter().find(|t| t.routine == f).unwrap().id
        };
        let (t1, t2, t3) = (by_routine("foo1"), by_routine("foo2"), by_routine("bar"));
        let t0 = ThreadId::MAIN;
        let _ = icfg;

        // I(t0, s1) = {} — nothing forked yet.
        let s1 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 0);
        assert!(inter.alive_any(t0, s1).unwrap().is_empty());

        // I(t0, s2) = {t1, t3}.
        let s2 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 1);
        let alive_s2 = inter.alive_any(t0, s2).unwrap();
        assert!(alive_s2.contains(t1) && alive_s2.contains(t3));
        assert!(!alive_s2.contains(t2));

        // I(t0, s3) = {t2} — t1/t3 joined at jn1.
        let s3 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 2);
        let alive_s3 = inter.alive_any(t0, s3).unwrap();
        assert!(alive_s3.contains(t2));
        assert!(!alive_s3.contains(t1) && !alive_s3.contains(t3));

        // I(t3, s5) = {t0, t1} — not t2 (t3 > t2).
        let s5 = nth_stmt(&m, "bar", |k| matches!(k, StmtKind::Addr { .. }), 0);
        let alive_s5_t3 = inter.alive_any(t3, s5).unwrap();
        assert!(alive_s5_t3.contains(t0) && alive_s5_t3.contains(t1));
        assert!(!alive_s5_t3.contains(t2));

        // I(t2, s5 via cs4) = {t0}.
        let alive_s5_t2 = inter.alive_any(t2, s5).unwrap();
        assert!(alive_s5_t2.contains(t0));
        assert_eq!(alive_s5_t2.len(), 1);
    }

    #[test]
    fn figure8_mhp_pairs() {
        let (m, icfg, _, inter) = analyze(FIG8);
        let s2 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 1);
        let s3 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 2);
        let s5 = nth_stmt(&m, "bar", |k| matches!(k, StmtKind::Addr { .. }), 0);
        // Paper Fig 8(d): s2 ∥ s5 (under t3), s3 ∥ s5 (under t2).
        assert!(inter.mhp_stmt(s2, s5));
        assert!(inter.mhp_stmt(s3, s5));
        assert!(inter.mhp_stmt(s5, s2), "MHP is symmetric");
        // s1 happens before any fork: not parallel with anything.
        let s1 = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 0);
        assert!(!inter.mhp_stmt(s1, s5));

        // Context-sensitivity: s5's instance under t2 ([cs4]) is parallel
        // with s3 but not with s2 — check at instance granularity.
        let inst5 = inter.instances(s5);
        assert!(inst5.len() >= 2, "s5 has an instance per executing thread");
        for &(t, c) in &inst5 {
            let i5 = (t, c, s5);
            let mhp_s2 = inter
                .instances(s2)
                .iter()
                .any(|&(t2, c2)| inter.mhp_instances(&icfg, i5, (t2, c2, s2)));
            let mhp_s3 = inter
                .instances(s3)
                .iter()
                .any(|&(t3, c3)| inter.mhp_instances(&icfg, i5, (t3, c3, s3)));
            // Each instance is parallel with exactly one of s2/s3.
            assert!(mhp_s2 ^ mhp_s3, "instance {i5:?}: s2={mhp_s2} s3={mhp_s3}");
        }
    }

    #[test]
    fn statements_after_full_join_are_sequential() {
        let (m, _, _, inter) = analyze(
            r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              after = &g
              ret
            }
        "#,
        );
        let w = nth_stmt(&m, "worker", |k| matches!(k, StmtKind::Addr { .. }), 0);
        let after = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 0);
        assert!(!inter.mhp_stmt(w, after), "master-slave join precision");
    }

    #[test]
    fn multi_forked_thread_is_self_parallel() {
        let (m, _, _, inter) = analyze(
            r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              br h
            h:
              br ?, b, x
            b:
              t = fork worker()
              br h
            x:
              ret
            }
        "#,
        );
        let w = nth_stmt(&m, "worker", |k| matches!(k, StmtKind::Addr { .. }), 0);
        assert!(
            inter.mhp_stmt(w, w),
            "two instances of a multi-forked thread"
        );
    }

    #[test]
    fn partial_join_keeps_mhp() {
        let (m, _, _, inter) = analyze(
            r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              t = fork worker()
              br ?, dojoin, skip
            dojoin:
              join t
              br out
            skip:
              br out
            out:
              after = &g
              ret
            }
        "#,
        );
        let w = nth_stmt(&m, "worker", |k| matches!(k, StmtKind::Addr { .. }), 0);
        let after = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 0);
        assert!(inter.mhp_stmt(w, after), "join on one path only: still MHP");
    }

    #[test]
    fn symmetric_join_gives_master_slave_precision() {
        // The word_count pattern: after the join loop, slaves are dead.
        let (m, _, _, inter) = analyze(
            r#"
            global array tids
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              ta = &tids
              br fh
            fh:
              br ?, fbody, jh
            fbody:
              t = fork worker()
              store ta, t
              br fh
            jh:
              br ?, jbody, post
            jbody:
              h = load ta
              join h
              br jh
            post:
              after = &g
              ret
            }
        "#,
        );
        let w = nth_stmt(&m, "worker", |k| matches!(k, StmtKind::Addr { .. }), 0);
        // main's Addr #0 is `ta = &tids`; the post-join marker is Addr #1.
        let after = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Addr { .. }), 1);
        assert!(
            !inter.mhp_stmt(w, after),
            "slave statements do not run in parallel with post-join master code (Fig 11)"
        );
        assert!(
            inter.mhp_stmt(w, w),
            "slaves run in parallel with each other"
        );
    }
}

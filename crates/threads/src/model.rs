//! The static thread model (paper §3.1).
//!
//! An *abstract thread* is a fork site executed by a spawner thread
//! (`pthread_create` resolved through the pre-analysis). The model
//! enumerates abstract threads from `main`, classifies *multi-forked*
//! threads (Definition 1: fork in a loop, in recursion, reachable more than
//! once, or spawned by a multi-forked thread), resolves join sites through
//! the thread-handle points-to sets ([T-JOIN]), recognizes the symmetric
//! fork/join loop pattern of Figure 11 (the paper uses LLVM's SCEV for this;
//! we use a structural loop-correlation check), distinguishes full from
//! partial joins, and derives the happens-before relation for sibling
//! threads (Definition 2).

use std::collections::{HashMap, HashSet};

use fsam_andersen::PreAnalysis;
use fsam_ir::icfg::{Icfg, NodeId};
use fsam_ir::loops::LoopInfo;
use fsam_ir::{dom::DomTree, FuncId, Module, StmtId, StmtKind};

/// Identifies an abstract thread. `ThreadId::MAIN` is the main thread.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main (root) thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Metadata of one abstract thread.
#[derive(Clone, Debug)]
pub struct ThreadInfo {
    /// This thread's id.
    pub id: ThreadId,
    /// The thread that forked this one (`None` for main).
    pub spawner: Option<ThreadId>,
    /// The fork statement (`None` for main).
    pub fork_site: Option<StmtId>,
    /// The start routine (for main: `main` itself).
    pub routine: FuncId,
    /// Whether this abstract thread may represent more than one runtime
    /// thread (Definition 1).
    pub multi_forked: bool,
}

/// One resolved join: at some join site, `spawner` joins `thread`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinEntry {
    /// The thread executing the join site.
    pub spawner: ThreadId,
    /// The spawnee being joined.
    pub thread: ThreadId,
    /// Whether the join is *full*: it is executed on every path from the
    /// fork site to the spawner routine's exit ([T-JOIN] transitivity needs
    /// this), including the symmetric multi-fork pattern of Figure 11.
    pub full: bool,
    /// Whether this join was recognized through the symmetric fork/join
    /// loop pattern (Figure 11). Symmetric joins kill the (multi-forked)
    /// thread only once the join *loop* exits, not at the join statement —
    /// inside the loop, other runtime instances are still alive.
    pub symmetric: bool,
}

/// The static thread model.
#[derive(Debug)]
pub struct ThreadModel {
    threads: Vec<ThreadInfo>,
    /// Functions reachable (via call edges) from each thread's routine.
    reach: Vec<Vec<FuncId>>,
    /// Valid joins per join statement.
    joins: HashMap<StmtId, Vec<JoinEntry>>,
    /// Per join site: the set of threads certainly dead after it executes
    /// (the joined threads closed under full joins).
    dead_after: HashMap<StmtId, Vec<ThreadId>>,
    /// Transitive spawn descendants per thread (excluding self).
    descendants: Vec<HashSet<ThreadId>>,
    /// `t -> threads t fully joins somewhere` (for per-spawner closures).
    fully_joins: HashMap<ThreadId, Vec<ThreadId>>,
}

impl ThreadModel {
    /// Builds the model. Requires the pre-analysis (for fork targets and
    /// handle points-to sets) and the ICFG (for path-sensitive join checks).
    pub fn build(module: &Module, pre: &PreAnalysis, icfg: &Icfg) -> ThreadModel {
        Builder { module, pre, icfg }.run()
    }

    /// All abstract threads; index 0 is main.
    pub fn threads(&self) -> &[ThreadInfo] {
        &self.threads
    }

    /// Number of abstract threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether only the main thread exists (a sequential program).
    pub fn is_empty(&self) -> bool {
        self.threads.len() <= 1
    }

    /// A thread's metadata.
    pub fn info(&self, t: ThreadId) -> &ThreadInfo {
        &self.threads[t.index()]
    }

    /// Functions that `t` may execute (call-edge reachability from its
    /// routine).
    pub fn funcs_of(&self, t: ThreadId) -> &[FuncId] {
        &self.reach[t.index()]
    }

    /// Threads that may execute statements of `f`.
    pub fn threads_executing(&self, f: FuncId) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|ti| self.reach[ti.id.index()].binary_search(&f).is_ok())
            .map(|ti| ti.id)
            .collect()
    }

    /// Whether `a` is a spawn-ancestor of `b` (strict).
    pub fn is_ancestor(&self, a: ThreadId, b: ThreadId) -> bool {
        self.descendants[a.index()].contains(&b)
    }

    /// Whether `a` and `b` are siblings ([T-SIBLING]): distinct and neither
    /// is an ancestor of the other.
    pub fn are_siblings(&self, a: ThreadId, b: ThreadId) -> bool {
        a != b && !self.is_ancestor(a, b) && !self.is_ancestor(b, a)
    }

    /// The valid joins resolved at join statement `jn`.
    pub fn joins_at(&self, jn: StmtId) -> &[JoinEntry] {
        self.joins.get(&jn).map_or(&[], Vec::as_slice)
    }

    /// Threads certainly dead once the join at `jn` has executed
    /// (joined threads closed under full joins).
    pub fn dead_after(&self, jn: StmtId) -> &[ThreadId] {
        self.dead_after.get(&jn).map_or(&[], Vec::as_slice)
    }

    /// Threads certainly dead after the join at `jn` *when executed by
    /// `spawner`*: the spawner's own joined threads, closed under full joins
    /// (the [I-JOIN] kill set of the interleaving analysis).
    pub fn dead_after_for(&self, jn: StmtId, spawner: ThreadId) -> Vec<ThreadId> {
        let mut dead: HashSet<ThreadId> = HashSet::new();
        let mut work: Vec<ThreadId> = self
            .joins_at(jn)
            .iter()
            .filter(|e| e.spawner == spawner)
            .map(|e| e.thread)
            .collect();
        while let Some(t) = work.pop() {
            if dead.insert(t) {
                if let Some(children) = self.fully_joins.get(&t) {
                    work.extend(children.iter().copied());
                }
            }
        }
        let mut dead: Vec<ThreadId> = dead.into_iter().collect();
        dead.sort();
        dead
    }

    /// Closes a seed set of threads under "is fully joined by": if `t` is in
    /// the set and `t` fully joins `t'` somewhere, `t'` is added
    /// ([T-JOIN] transitivity).
    pub fn close_under_full_joins(
        &self,
        seed: impl IntoIterator<Item = ThreadId>,
    ) -> Vec<ThreadId> {
        let mut dead: HashSet<ThreadId> = HashSet::new();
        let mut work: Vec<ThreadId> = seed.into_iter().collect();
        while let Some(t) = work.pop() {
            if dead.insert(t) {
                if let Some(children) = self.fully_joins.get(&t) {
                    work.extend(children.iter().copied());
                }
            }
        }
        let mut dead: Vec<ThreadId> = dead.into_iter().collect();
        dead.sort();
        dead
    }

    /// `t` together with all its spawn-descendants (the threads created
    /// through `t`'s fork subtree).
    pub fn subtree(&self, t: ThreadId) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self.descendants[t.index()].iter().copied().collect();
        out.push(t);
        out.sort();
        out
    }

    /// The threads `spawner` creates at fork site `fork` (one per resolved
    /// start routine).
    pub fn children_at(&self, spawner: ThreadId, fork: StmtId) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|ti| ti.spawner == Some(spawner) && ti.fork_site == Some(fork))
            .map(|ti| ti.id)
            .collect()
    }

    /// All join sites that (directly or transitively) kill `t`.
    pub fn join_sites_killing(&self, t: ThreadId) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self
            .dead_after
            .iter()
            .filter(|(_, dead)| dead.contains(&t))
            .map(|(&jn, _)| jn)
            .collect();
        out.sort();
        out
    }

    /// The happens-before relation for sibling threads (Definition 2):
    /// `a > b` iff every path (in their common ancestor's region) to `b`'s
    /// fork chain passes a join that kills `a`.
    ///
    /// `icfg` must be the same graph the model was built from.
    pub fn happens_before(&self, icfg: &Icfg, a: ThreadId, b: ThreadId) -> bool {
        if a == b || !self.are_siblings(a, b) {
            return false;
        }
        // Find the lowest common spawn-ancestor `anc` and the child of `anc`
        // on each side's chain.
        let chain = |mut t: ThreadId| {
            let mut c = vec![t];
            while let Some(s) = self.threads[t.index()].spawner {
                c.push(s);
                t = s;
            }
            c.reverse();
            c // root-first
        };
        let ca = chain(a);
        let cb = chain(b);
        let mut common = 0;
        while common < ca.len() && common < cb.len() && ca[common] == cb[common] {
            common += 1;
        }
        debug_assert!(common > 0, "all chains share main");
        let anc = ca[common - 1];
        let _child_a = ca[common]; // subtree containing a
        let child_b = cb[common]; // subtree containing b
        let fork_b = self.threads[child_b.index()]
            .fork_site
            .expect("non-root child");

        // `a` must be certainly dead: every path from anc's routine entry to
        // fork(child_b) passes a join site killing `a`. (`a` itself must be
        // transitively covered, which `dead_after` encodes.)
        let kill_nodes: HashSet<NodeId> = self
            .join_sites_killing(a)
            .into_iter()
            .filter(|jn| {
                // Only joins executed by `anc` count on paths inside anc.
                self.joins_at(*jn).iter().any(|e| e.spawner == anc)
            })
            .map(|jn| icfg.stmt_node(jn))
            .collect();
        if kill_nodes.is_empty() {
            return false;
        }
        // Also `child_a`'s own lifetime: if a == child_a this is the direct
        // case; if a is deeper, dead_after's closure already required full
        // joins down the chain.
        let entry = icfg.entry(self.threads[anc.index()].routine);
        let target = icfg.stmt_node(fork_b);
        !reaches_avoiding(icfg, entry, target, &kill_nodes)
    }
}

/// Forward reachability over intra+call+ret edges, refusing to pass through
/// `avoid` nodes.
fn reaches_avoiding(icfg: &Icfg, from: NodeId, to: NodeId, avoid: &HashSet<NodeId>) -> bool {
    if avoid.contains(&from) {
        return false;
    }
    let mut seen = vec![false; icfg.node_count()];
    let mut work = vec![from];
    seen[from.index()] = true;
    while let Some(n) = work.pop() {
        if n == to {
            return true;
        }
        for &(succ, _) in icfg.succs(n) {
            if !seen[succ.index()] && !avoid.contains(&succ) {
                seen[succ.index()] = true;
                work.push(succ);
            }
        }
    }
    false
}

struct Builder<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    icfg: &'a Icfg,
}

/// Safety cap on abstract-thread enumeration.
const MAX_THREADS: usize = 4096;

impl Builder<'_> {
    fn run(self) -> ThreadModel {
        let cg = self.pre.call_graph();
        let Some(main) = self.module.entry() else {
            // No entry: treat the module as a single (empty) main thread over
            // the first function, or an empty model.
            return ThreadModel {
                threads: Vec::new(),
                reach: Vec::new(),
                joins: HashMap::new(),
                dead_after: HashMap::new(),
                descendants: Vec::new(),
                fully_joins: HashMap::new(),
            };
        };

        // Per-function loop info and "multi-instance" call analysis.
        let mut loop_info: HashMap<FuncId, LoopInfo> = HashMap::new();
        for func in self.module.funcs() {
            if !func.is_external {
                let dom = DomTree::compute(func);
                loop_info.insert(func.id, LoopInfo::compute(func, &dom));
            }
        }
        let in_loop = |s: StmtId| -> bool {
            let stmt = self.module.stmt(s);
            loop_info
                .get(&stmt.func)
                .is_some_and(|li| li.in_loop(stmt.block))
        };

        // Enumerate threads breadth-first.
        let mut threads = vec![ThreadInfo {
            id: ThreadId::MAIN,
            spawner: None,
            fork_site: None,
            routine: main,
            multi_forked: false,
        }];
        let mut reach: Vec<Vec<FuncId>> = vec![cg.reachable(&[main], false)];
        let mut queue = vec![ThreadId::MAIN];
        let mut seen: HashSet<(ThreadId, StmtId, FuncId)> = HashSet::new();

        while let Some(t) = queue.pop() {
            let funcs = reach[t.index()].clone();
            // A function executes multiple times within `t` if it is reached
            // through a loop callsite, through recursion, or via several
            // callsites. Fork sites in such functions are multi-forked.
            let multi_inst = self.multi_instance_funcs(&funcs, &loop_info);
            for &f in &funcs {
                for s in self.module.func_stmts(f) {
                    if !matches!(self.module.stmt(s).kind, StmtKind::Fork { .. }) {
                        continue;
                    }
                    for routine in cg.targets(s) {
                        if threads.len() >= MAX_THREADS {
                            continue;
                        }
                        if !seen.insert((t, s, routine)) {
                            continue;
                        }
                        let id = ThreadId(u32::try_from(threads.len()).expect("thread count"));
                        let multi_forked = threads[t.index()].multi_forked
                            || in_loop(s)
                            || cg.in_cycle(f)
                            || multi_inst.contains(&f);
                        threads.push(ThreadInfo {
                            id,
                            spawner: Some(t),
                            fork_site: Some(s),
                            routine,
                            multi_forked,
                        });
                        reach.push(cg.reachable(&[routine], false));
                        queue.push(id);
                    }
                }
            }
        }

        // Spawn-descendant closure.
        let mut descendants: Vec<HashSet<ThreadId>> = vec![HashSet::new(); threads.len()];
        for ti in threads.iter().skip(1) {
            let mut anc = ti.spawner;
            while let Some(a) = anc {
                descendants[a.index()].insert(ti.id);
                anc = threads[a.index()].spawner;
            }
        }

        // Resolve joins.
        let mut joins: HashMap<StmtId, Vec<JoinEntry>> = HashMap::new();
        for (jn, stmt) in self.module.stmts() {
            let StmtKind::Join { handle } = stmt.kind else {
                continue;
            };
            let fork_sites = self.pre.thread_handles_of(handle);
            if fork_sites.is_empty() {
                continue;
            }
            // Which threads execute this join?
            for spawner in threads
                .iter()
                .filter(|ti| reach[ti.id.index()].binary_search(&stmt.func).is_ok())
                .map(|ti| ti.id)
                .collect::<Vec<_>>()
            {
                for spawnee in threads
                    .iter()
                    .filter(|ti| {
                        ti.spawner == Some(spawner)
                            && ti.fork_site.is_some_and(|fs| fork_sites.contains(&fs))
                    })
                    .map(|ti| ti.id)
                    .collect::<Vec<_>>()
                {
                    let fork_site = threads[spawnee.index()]
                        .fork_site
                        .expect("spawnee has fork site");
                    let symmetric = self.is_symmetric_pair(fork_site, jn, &loop_info, handle);
                    if threads[spawnee.index()].multi_forked && !symmetric {
                        // The handle may denote many runtime threads
                        // ([T-JOIN] requires t' ∉ M); ignore this join.
                        continue;
                    }
                    // Symmetric pairs are full by construction: the join loop
                    // iterates once per forked handle (the paper establishes
                    // this with SCEV; our recognizer requires the same
                    // structure). Otherwise check path coverage in the ICFG.
                    let full = symmetric
                        || self.is_full_join(
                            fork_site,
                            jn,
                            threads[spawner.index()].routine,
                            &fork_sites,
                            handle,
                        );
                    joins.entry(jn).or_default().push(JoinEntry {
                        spawner,
                        thread: spawnee,
                        full,
                        symmetric,
                    });
                }
            }
        }

        // Close `dead_after` under full joins: a join killing t also kills
        // every thread t fully joins somewhere.
        let fully_joins: HashMap<ThreadId, Vec<ThreadId>> = {
            let mut m: HashMap<ThreadId, Vec<ThreadId>> = HashMap::new();
            for entries in joins.values() {
                for e in entries {
                    if e.full {
                        m.entry(e.spawner).or_default().push(e.thread);
                    }
                }
            }
            m
        };
        let mut dead_after: HashMap<StmtId, Vec<ThreadId>> = HashMap::new();
        for (&jn, entries) in &joins {
            let mut dead: HashSet<ThreadId> = HashSet::new();
            let mut work: Vec<ThreadId> = entries.iter().map(|e| e.thread).collect();
            while let Some(t) = work.pop() {
                if dead.insert(t) {
                    if let Some(children) = fully_joins.get(&t) {
                        work.extend(children.iter().copied());
                    }
                }
            }
            let mut dead: Vec<ThreadId> = dead.into_iter().collect();
            dead.sort();
            dead_after.insert(jn, dead);
        }

        ThreadModel {
            threads,
            reach,
            joins,
            dead_after,
            descendants,
            fully_joins,
        }
    }

    /// Functions of the thread-reachable set that may execute more than once
    /// per thread activation: reached through a loop callsite, recursion, or
    /// more than one callsite (conservative).
    fn multi_instance_funcs(
        &self,
        funcs: &[FuncId],
        loop_info: &HashMap<FuncId, LoopInfo>,
    ) -> HashSet<FuncId> {
        let cg = self.pre.call_graph();
        let in_set: HashSet<FuncId> = funcs.iter().copied().collect();
        // Count call sites per callee within the thread's region; remember
        // whether any callsite sits in a loop.
        let mut call_count: HashMap<FuncId, usize> = HashMap::new();
        let mut loop_called: HashSet<FuncId> = HashSet::new();
        for &f in funcs {
            let li = loop_info.get(&f);
            for s in self.module.func_stmts(f) {
                if !matches!(self.module.stmt(s).kind, StmtKind::Call { .. }) {
                    continue;
                }
                let block = self.module.stmt(s).block;
                for callee in cg.targets(s) {
                    if !in_set.contains(&callee) {
                        continue;
                    }
                    *call_count.entry(callee).or_insert(0) += 1;
                    if li.is_some_and(|li| li.in_loop(block)) {
                        loop_called.insert(callee);
                    }
                }
            }
        }
        // Fixpoint: multi if recursion, loop-called, >1 callsite, or caller multi.
        let mut multi: HashSet<FuncId> = funcs
            .iter()
            .copied()
            .filter(|&f| {
                cg.in_cycle(f)
                    || loop_called.contains(&f)
                    || call_count.get(&f).copied().unwrap_or(0) > 1
            })
            .collect();
        loop {
            let mut changed = false;
            for &f in funcs {
                if multi.contains(&f) {
                    continue;
                }
                // f is multi if any of its in-region callers is multi.
                let caller_multi = funcs
                    .iter()
                    .any(|&g| multi.contains(&g) && cg.callees_of(g).any(|c| c == f));
                if caller_multi {
                    multi.insert(f);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        multi
    }

    /// Figure 11: a fork in one loop and a join in a later, disjoint loop of
    /// the same function, correlated through the thread-handle points-to
    /// set. The paper uses LLVM's SCEV to correlate the fork/join pair; we
    /// check the same structure syntactically.
    fn is_symmetric_pair(
        &self,
        fork: StmtId,
        join: StmtId,
        loop_info: &HashMap<FuncId, LoopInfo>,
        handle: fsam_ir::VarId,
    ) -> bool {
        let fs = self.module.stmt(fork);
        let js = self.module.stmt(join);
        if fs.func != js.func {
            return false;
        }
        let Some(li) = loop_info.get(&fs.func) else {
            return false;
        };
        let (Some(lf), Some(lj)) = (li.innermost_loop(fs.block), li.innermost_loop(js.block))
        else {
            return false;
        };
        if lf == lj {
            return false; // fork and join in the same loop: not symmetric
        }
        // The fork loop must strictly precede the join loop.
        let fork_node = self.icfg.stmt_node(fork);
        let join_node = self.icfg.stmt_node(join);
        if !self.icfg.intra_reaches(fork_node, join_node)
            || self.icfg.intra_reaches(join_node, fork_node)
        {
            return false;
        }
        // The join handle must be correlated with this fork only: every
        // handle object it may hold stems from fork sites in the fork loop.
        self.pre.thread_handles_of(handle).iter().all(|&site| {
            let s = self.module.stmt(site);
            s.func == fs.func && li.innermost_loop(s.block) == Some(lf)
        })
    }

    /// Whether the join at `jn` covers every path from `fork` to the exit of
    /// the spawner's routine: unreachable(exit, avoiding all join sites of
    /// the same handle group).
    fn is_full_join(
        &self,
        fork: StmtId,
        jn: StmtId,
        spawner_routine: FuncId,
        fork_sites: &[StmtId],
        handle: fsam_ir::VarId,
    ) -> bool {
        let _ = (jn, handle);
        // Avoid set: all join statements that join this fork site (same
        // handle flow). Conservatively: join statements whose handle may
        // point to `fork`'s handle object.
        let mut avoid: HashSet<NodeId> = HashSet::new();
        for (s, stmt) in self.module.stmts() {
            if let StmtKind::Join { handle: h } = stmt.kind {
                let sites = self.pre.thread_handles_of(h);
                if sites.contains(&fork) {
                    avoid.insert(self.icfg.stmt_node(s));
                }
            }
        }
        let _ = fork_sites;
        let from = self.icfg.stmt_node(fork);
        let exit = self.icfg.exit(spawner_routine);
        !reaches_avoiding(self.icfg, from, exit, &avoid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    fn build(src: &str) -> (Module, PreAnalysis, Icfg, ThreadModel) {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        (m, pre, icfg, tm)
    }

    /// The paper's Figure 8 program.
    const FIG8: &str = r#"
        func bar() {
        s5:
          ret
        }
        func foo2() {
        entry:
          call bar()    // cs4
          ret
        }
        func foo1() {
        fk3:
          t3 = fork bar()
          join t3       // jn3
          ret
        }
        func main() {
        s1:
          t1 = fork foo1()   // fk1
          join t1            // jn1 (after s2 in the paper; order simplified)
          t2 = fork foo2()   // fk2
          join t2            // jn2
          ret
        }
    "#;

    #[test]
    fn fig8_thread_enumeration() {
        let (_, _, _, tm) = build(FIG8);
        // t0 = main, plus t1 (foo1), t2 (foo2), t3 (bar).
        assert_eq!(tm.len(), 4);
        let routines: Vec<&str> = tm
            .threads()
            .iter()
            .map(|t| match t.id {
                ThreadId::MAIN => "main",
                _ => "spawned",
            })
            .collect();
        assert_eq!(routines[0], "main");
        assert!(tm.threads().iter().all(|t| !t.multi_forked));
    }

    #[test]
    fn fig8_spawn_relations() {
        let (m, _, _, tm) = build(FIG8);
        let by_routine = |name: &str| -> ThreadId {
            let f = m.func_by_name(name).unwrap();
            tm.threads()
                .iter()
                .find(|t| t.routine == f && t.id != ThreadId::MAIN)
                .unwrap()
                .id
        };
        let (t1, t2, t3) = (by_routine("foo1"), by_routine("foo2"), by_routine("bar"));
        assert!(tm.is_ancestor(ThreadId::MAIN, t1));
        assert!(tm.is_ancestor(ThreadId::MAIN, t3)); // transitive
        assert!(tm.is_ancestor(t1, t3));
        assert!(!tm.is_ancestor(t2, t3));
        assert!(tm.are_siblings(t1, t2));
        assert!(tm.are_siblings(t3, t2)); // share ancestor main
        assert!(!tm.are_siblings(t1, t3));
    }

    #[test]
    fn fig8_joins_and_happens_before() {
        let (m, _, icfg, tm) = build(FIG8);
        let by_routine = |name: &str| -> ThreadId {
            let f = m.func_by_name(name).unwrap();
            tm.threads()
                .iter()
                .find(|t| t.routine == f && t.id != ThreadId::MAIN)
                .unwrap()
                .id
        };
        let (t1, t2, t3) = (by_routine("foo1"), by_routine("foo2"), by_routine("bar"));
        // jn1 (main's first join) kills t1 and, transitively, t3.
        let jn1 = m
            .stmts()
            .find(|(_, s)| s.func == m.entry().unwrap() && matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        let dead = tm.dead_after(jn1);
        assert!(dead.contains(&t1), "{dead:?}");
        assert!(dead.contains(&t3), "t3 joined indirectly: {dead:?}");
        // Paper Fig 8(b): t1 > t2 and t3 > t2.
        assert!(tm.happens_before(&icfg, t1, t2));
        assert!(tm.happens_before(&icfg, t3, t2));
        assert!(!tm.happens_before(&icfg, t2, t1));
        assert!(!tm.happens_before(&icfg, t2, t3));
    }

    #[test]
    fn fork_in_loop_is_multi_forked() {
        let (_, _, _, tm) = build(
            r#"
            func worker() {
            entry:
              ret
            }
            func main() {
            entry:
              br header
            header:
              br ?, body, exit
            body:
              t = fork worker()
              br header
            exit:
              ret
            }
        "#,
        );
        assert_eq!(tm.len(), 2);
        assert!(tm.threads()[1].multi_forked);
    }

    #[test]
    fn multi_forked_join_without_symmetry_is_ignored() {
        let (m, _, _, tm) = build(
            r#"
            func worker() {
            entry:
              ret
            }
            func main() {
            entry:
              br header
            header:
              br ?, body, exit
            body:
              t = fork worker()
              join t      // same loop: unsound to treat as full join
              br header
            exit:
              ret
            }
        "#,
        );
        let jn = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        assert!(tm.joins_at(jn).is_empty());
    }

    #[test]
    fn symmetric_fork_join_loops_are_recognized() {
        // The word_count pattern (paper Fig 11): fork loop, then join loop
        // over the same handle array.
        let (m, _, _, tm) = build(
            r#"
            global array tids
            func worker() {
            entry:
              ret
            }
            func main() {
            entry:
              ta = &tids
              br fh
            fh:
              br ?, fbody, jh
            fbody:
              t = fork worker()
              store ta, t
              br fh
            jh:
              br ?, jbody, exit
            jbody:
              h = load ta
              join h
              br jh
            exit:
              ret
            }
        "#,
        );
        assert_eq!(tm.len(), 2);
        assert!(tm.threads()[1].multi_forked);
        let jn = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        let entries = tm.joins_at(jn);
        assert_eq!(entries.len(), 1, "symmetric join recognized");
        assert!(entries[0].full);
        assert_eq!(entries[0].thread, tm.threads()[1].id);
    }

    #[test]
    fn partial_join_detected() {
        let (m, _, _, tm) = build(
            r#"
            func worker() {
            entry:
              ret
            }
            func main() {
            entry:
              t = fork worker()
              br ?, dojoin, skip
            dojoin:
              join t
              br out
            skip:
              br out
            out:
              ret
            }
        "#,
        );
        let jn = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        let entries = tm.joins_at(jn);
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].full, "join on only one path is partial");
    }

    #[test]
    fn threads_executing_shared_function() {
        let (m, _, _, tm) = build(
            r#"
            func shared() {
            entry:
              ret
            }
            func worker() {
            entry:
              call shared()
              ret
            }
            func main() {
            entry:
              t = fork worker()
              call shared()
              join t
              ret
            }
        "#,
        );
        let shared = m.func_by_name("shared").unwrap();
        let ts = tm.threads_executing(shared);
        assert_eq!(ts.len(), 2, "both main and worker execute shared()");
    }

    #[test]
    fn sequential_program_has_main_only() {
        let (_, _, _, tm) = build(
            r#"
            func main() {
            entry:
              ret
            }
        "#,
        );
        assert!(tm.is_empty());
        assert_eq!(tm.len(), 1);
        assert_eq!(tm.info(ThreadId::MAIN).spawner, None);
    }
}

//! The lock analysis — paper §3.3.3, Definitions 3–6, Figure 9.
//!
//! Two pieces, both flow- and context-sensitive:
//!
//! 1. a **must-held-locks** data-flow (over the shared
//!    [`flow`](crate::flow) driver): the set of singleton lock objects that
//!    are certainly held at each `(thread, context, node)` instance — the
//!    paper's must-alias condition `l ≡ l'` is realized by tracking only
//!    locks whose pointer has a singleton points-to set;
//! 2. **lock-release spans** (Definition 3): from each context-sensitive
//!    acquisition instance we walk forward (matching calls and returns)
//!    until the corresponding release, collecting member instances; within
//!    each span we compute the *head* accesses (Definition 4: no in-span
//!    store reaches them) and *tail* stores (Definition 5: no in-span store
//!    follows them) per object.
//!
//! A candidate thread-aware def-use edge is a *non-interference pair*
//! (Definition 6) — and is therefore filtered — when both instances hold a
//! common lock and the store is not a span tail or the access is not a span
//! head: mutual exclusion then guarantees the value is overwritten or
//! already redefined before the other span can observe it.

use std::collections::{HashMap, HashSet};

use fsam_andersen::PreAnalysis;
use fsam_ir::context::{ContextTable, CtxId};
use fsam_ir::icfg::{Icfg, NodeId, NodeKind};
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;

use crate::flow::{run_forward, succ_context, FlowState, ForwardProblem};
use crate::model::{ThreadId, ThreadModel};

/// A sorted set of singleton lock objects (small).
pub type LockSet = Vec<MemId>;

fn lockset_insert(set: &mut LockSet, l: MemId) -> bool {
    match set.binary_search(&l) {
        Ok(_) => false,
        Err(i) => {
            set.insert(i, l);
            true
        }
    }
}

fn lockset_remove(set: &mut LockSet, l: MemId) -> bool {
    match set.binary_search(&l) {
        Ok(i) => {
            set.remove(i);
            true
        }
        Err(_) => false,
    }
}

struct MustHeld<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    icfg: &'a Icfg,
}

impl ForwardProblem for MustHeld<'_> {
    type Fact = LockSet;

    fn entry_fact(&mut self, _t: ThreadId) -> LockSet {
        Vec::new()
    }

    fn transfer(&mut self, _t: ThreadId, _c: CtxId, node: NodeId, fact: &LockSet) -> LockSet {
        let mut out = fact.clone();
        if let NodeKind::Stmt(s) = self.icfg.kind(node) {
            match self.module.stmt(s).kind {
                StmtKind::Lock { lock } => {
                    if let Some(l) = self.pre.must_lock_obj(lock) {
                        lockset_insert(&mut out, l);
                    }
                    // A lock through an unresolved pointer adds nothing:
                    // must-information may only shrink.
                }
                StmtKind::Unlock { lock } => match self.pre.must_lock_obj(lock) {
                    Some(l) => {
                        lockset_remove(&mut out, l);
                    }
                    None => {
                        // Unknown release: conservatively drop everything.
                        out.clear();
                    }
                },
                _ => {}
            }
        }
        out
    }

    fn merge(&mut self, current: &mut LockSet, incoming: &LockSet) -> bool {
        // Must-analysis: intersect.
        let before = current.len();
        current.retain(|l| incoming.binary_search(l).is_ok());
        current.len() != before
    }
}

/// The may-held companion of [`MustHeld`]: same transfer on resolved
/// locks, but joins *union* and an unknown release keeps the set (the
/// release might target some other lock, so everything stays possibly
/// held). A lock in may-held but not in must-held is held on some paths
/// into the state and free on others — the path inconsistency the
/// lockset-inconsistency checker reports.
struct MayHeld<'a> {
    module: &'a Module,
    pre: &'a PreAnalysis,
    icfg: &'a Icfg,
}

impl ForwardProblem for MayHeld<'_> {
    type Fact = LockSet;

    fn entry_fact(&mut self, _t: ThreadId) -> LockSet {
        Vec::new()
    }

    fn transfer(&mut self, _t: ThreadId, _c: CtxId, node: NodeId, fact: &LockSet) -> LockSet {
        let mut out = fact.clone();
        if let NodeKind::Stmt(s) = self.icfg.kind(node) {
            match self.module.stmt(s).kind {
                StmtKind::Lock { lock } => {
                    if let Some(l) = self.pre.must_lock_obj(lock) {
                        lockset_insert(&mut out, l);
                    }
                }
                StmtKind::Unlock { lock } => {
                    if let Some(l) = self.pre.must_lock_obj(lock) {
                        lockset_remove(&mut out, l);
                    }
                    // An unknown release removes nothing from *may*
                    // information: every lock stays possibly held.
                }
                _ => {}
            }
        }
        out
    }

    fn merge(&mut self, current: &mut LockSet, incoming: &LockSet) -> bool {
        // May-analysis: union.
        let before = current.len();
        for &l in incoming {
            lockset_insert(current, l);
        }
        current.len() != before
    }
}

/// One lock-release span (Definition 3).
#[derive(Debug)]
struct Span {
    /// The singleton lock object protecting the span.
    lock: MemId,
    /// Head accesses per object (Definition 4), as `(ctx, stmt)` instances.
    hd: HashMap<MemId, HashSet<(CtxId, StmtId)>>,
    /// Tail stores per object (Definition 5).
    tl: HashMap<MemId, HashSet<(CtxId, StmtId)>>,
}

/// The combined lock analysis result.
#[derive(Debug)]
pub struct LockAnalysis {
    held: FlowState<LockSet>,
    may_held: FlowState<LockSet>,
    spans: Vec<Span>,
    /// `(thread, ctx, stmt)` → indices of spans containing the instance.
    membership: HashMap<(ThreadId, CtxId, StmtId), Vec<u32>>,
    /// Statistics: number of spans discovered.
    pub span_count: usize,
}

/// Cap on the number of member states explored per span (degenerate spans
/// are dropped — never filtering is always sound).
const MAX_SPAN_STATES: usize = 100_000;

impl LockAnalysis {
    /// Runs the lock analysis. `ctxs` must be the same shared, pre-populated
    /// context table (see [`crate::flow::precompute_contexts`]) used by the
    /// interleaving analysis so instance ids agree. Taking it read-only lets
    /// both analyses run concurrently.
    pub fn compute(
        module: &Module,
        icfg: &Icfg,
        pre: &PreAnalysis,
        tm: &ThreadModel,
        ctxs: &ContextTable,
    ) -> LockAnalysis {
        let mut problem = MustHeld { module, pre, icfg };
        let held = run_forward(module, icfg, pre.call_graph(), tm, ctxs, &mut problem);
        let mut may_problem = MayHeld { module, pre, icfg };
        let may_held = run_forward(module, icfg, pre.call_graph(), tm, ctxs, &mut may_problem);

        let mut analysis = LockAnalysis {
            held,
            may_held,
            spans: Vec::new(),
            membership: HashMap::new(),
            span_count: 0,
        };
        analysis.enumerate_spans(module, icfg, pre, ctxs);
        analysis.span_count = analysis.spans.len();
        analysis
    }

    /// The singleton locks certainly held when instance `(t, c, s)` executes.
    pub fn held_at(&self, icfg: &Icfg, t: ThreadId, c: CtxId, s: StmtId) -> &[MemId] {
        self.held
            .get(&(t, c, icfg.stmt_node(s)))
            .map_or(&[], Vec::as_slice)
    }

    /// The singleton locks *possibly* held when instance `(t, c, s)`
    /// executes (may-analysis: union at joins). A lock in here but not in
    /// [`held_at`](Self::held_at) is held on some incoming path only.
    pub fn may_held_at(&self, icfg: &Icfg, t: ThreadId, c: CtxId, s: StmtId) -> &[MemId] {
        self.may_held
            .get(&(t, c, icfg.stmt_node(s)))
            .map_or(&[], Vec::as_slice)
    }

    /// [`held_at`](Self::held_at) keyed by raw ICFG node — needed at
    /// entry/exit nodes, which have no statement id.
    pub fn held_at_node(&self, t: ThreadId, c: CtxId, n: NodeId) -> &[MemId] {
        self.held.get(&(t, c, n)).map_or(&[], Vec::as_slice)
    }

    /// [`may_held_at`](Self::may_held_at) keyed by raw ICFG node.
    pub fn may_held_at_node(&self, t: ThreadId, c: CtxId, n: NodeId) -> &[MemId] {
        self.may_held.get(&(t, c, n)).map_or(&[], Vec::as_slice)
    }

    /// Iterates every `(thread, ctx, node)` instance that has a computed
    /// may-held set, with that set. Order is unspecified (hash map);
    /// clients that render diagnostics must sort.
    pub fn may_states(&self) -> impl Iterator<Item = ((ThreadId, CtxId, NodeId), &[MemId])> {
        self.may_held.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// The locks held on *some* but not *all* paths into `(t, c, n)` —
    /// `may_held \ must_held`, the inconsistency the FL0004 checker
    /// reports at function exits.
    pub fn inconsistent_at_node(&self, t: ThreadId, c: CtxId, n: NodeId) -> Vec<MemId> {
        let must = self.held_at_node(t, c, n);
        self.may_held_at_node(t, c, n)
            .iter()
            .copied()
            .filter(|l| must.binary_search(l).is_err())
            .collect()
    }

    /// Whether both instances certainly hold at least one common lock
    /// (lockset discipline; used by the race-detection client).
    pub fn commonly_protected(
        &self,
        icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
    ) -> bool {
        let h1 = self.held_at(icfg, i1.0, i1.1, i1.2);
        let h2 = self.held_at(icfg, i2.0, i2.1, i2.2);
        h1.iter().any(|l| h2.binary_search(l).is_ok())
    }

    /// Definition 6: whether the MHP pair `(store i1, access i2)` on object
    /// `o` is a *non-interference* pair — both instances protected by a
    /// common lock, and the store is not a span tail or the access is not a
    /// span head. Such pairs need no thread-aware def-use edge.
    pub fn non_interference(
        &self,
        icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
        o: MemId,
    ) -> bool {
        let (t1, c1, s1) = i1;
        let (t2, c2, s2) = i2;
        let held1 = self.held_at(icfg, t1, c1, s1);
        let held2 = self.held_at(icfg, t2, c2, s2);
        let spans1 = self.membership.get(&(t1, c1, s1));
        let spans2 = self.membership.get(&(t2, c2, s2));
        let (Some(spans1), Some(spans2)) = (spans1, spans2) else {
            return false;
        };
        for &sp1 in spans1 {
            let span1 = &self.spans[sp1 as usize];
            let l = span1.lock;
            if held1.binary_search(&l).is_err() {
                continue; // membership without must-protection: ignore
            }
            for &sp2 in spans2 {
                let span2 = &self.spans[sp2 as usize];
                if span2.lock != l || held2.binary_search(&l).is_err() {
                    continue;
                }
                let s1_is_tail = span1.tl.get(&o).is_some_and(|set| set.contains(&(c1, s1)));
                let s2_is_head = span2.hd.get(&o).is_some_and(|set| set.contains(&(c2, s2)));
                if !s1_is_tail || !s2_is_head {
                    return true;
                }
            }
        }
        false
    }

    /// Walks every context-sensitive acquisition instance and builds spans.
    fn enumerate_spans(
        &mut self,
        module: &Module,
        icfg: &Icfg,
        pre: &PreAnalysis,
        ctxs: &ContextTable,
    ) {
        let cg = pre.call_graph();
        // Acquisition instances: states at Lock statements with a singleton
        // lock object.
        let acquisitions: Vec<(ThreadId, CtxId, NodeId, MemId)> = self
            .held
            .keys()
            .filter_map(|&(t, c, n)| {
                if let NodeKind::Stmt(s) = icfg.kind(n) {
                    if let StmtKind::Lock { lock } = module.stmt(s).kind {
                        return pre.must_lock_obj(lock).map(|l| (t, c, n, l));
                    }
                }
                None
            })
            .collect();

        for (t, ctx, lock_node, l) in acquisitions {
            let Some(span) = self.walk_span(module, icfg, pre, ctxs, cg, t, ctx, lock_node, l)
            else {
                continue;
            };
            let idx = u32::try_from(self.spans.len()).expect("span count");
            for &(c, s) in &span.member_stmts {
                self.membership.entry((t, c, s)).or_default().push(idx);
            }
            self.spans.push(Span {
                lock: l,
                hd: span.hd,
                tl: span.tl,
            });
        }
    }

    /// DFS from the acquisition until releases of the same lock; computes
    /// members and per-object head/tail sets.
    #[allow(clippy::too_many_arguments)]
    fn walk_span(
        &self,
        module: &Module,
        icfg: &Icfg,
        pre: &PreAnalysis,
        ctxs: &ContextTable,
        cg: &fsam_ir::callgraph::CallGraph,
        _t: ThreadId,
        lock_ctx: CtxId,
        lock_node: NodeId,
        l: MemId,
    ) -> Option<SpanWalk> {
        // Collect the span subgraph: states reachable from the acquisition
        // without passing a release of `l`.
        let mut members: HashSet<(CtxId, NodeId)> = HashSet::new();
        let mut work: Vec<(CtxId, NodeId)> = vec![(lock_ctx, lock_node)];
        let mut seen: HashSet<(CtxId, NodeId)> = HashSet::new();
        seen.insert((lock_ctx, lock_node));
        while let Some((c, n)) = work.pop() {
            if seen.len() > MAX_SPAN_STATES {
                return None; // degenerate span: drop (sound)
            }
            let is_release = match icfg.kind(n) {
                NodeKind::Stmt(s) => match module.stmt(s).kind {
                    StmtKind::Unlock { lock } => pre.must_lock_obj(lock) == Some(l),
                    _ => false,
                },
                _ => false,
            };
            if n != lock_node {
                members.insert((c, n));
            }
            if is_release {
                continue; // the span ends here
            }
            for &(succ, kind) in icfg.succs(n) {
                if let Some(sc) = succ_context(icfg, cg, ctxs, c, n, succ, kind) {
                    if seen.insert((sc, succ)) {
                        work.push((sc, succ));
                    }
                }
            }
        }

        // Member statements and the per-object access sets. Only *must*
        // writes (singleton points-to set, singleton object) can kill a
        // value within a span: a may-aliased later store might dynamically
        // write a different object, leaving the earlier value live at the
        // release — treating it as a killer would unsoundly filter the
        // interference edge (caught by the dynamic-validation oracle).
        let mut member_stmts: Vec<(CtxId, StmtId)> = Vec::new();
        let mut stores: HashMap<MemId, Vec<(CtxId, StmtId, NodeId)>> = HashMap::new();
        let mut must_stores: HashMap<MemId, Vec<(CtxId, StmtId, NodeId)>> = HashMap::new();
        let mut accesses: HashMap<MemId, Vec<(CtxId, StmtId, NodeId)>> = HashMap::new();
        for &(c, n) in &members {
            let NodeKind::Stmt(s) = icfg.kind(n) else {
                continue;
            };
            member_stmts.push((c, s));
            match module.stmt(s).kind {
                StmtKind::Store { ptr, .. } => {
                    let pts = pre.pt_var(ptr);
                    let must = pts
                        .as_singleton()
                        .is_some_and(|o| pre.objects().is_singleton(o));
                    for o in pts.iter() {
                        stores.entry(o).or_default().push((c, s, n));
                        if must {
                            must_stores.entry(o).or_default().push((c, s, n));
                        }
                        accesses.entry(o).or_default().push((c, s, n));
                    }
                }
                StmtKind::Load { ptr, .. } => {
                    for o in pre.pt_var(ptr).iter() {
                        accesses.entry(o).or_default().push((c, s, n));
                    }
                }
                _ => {}
            }
        }

        // Head/tail sets per object. Forward reachability within the span:
        // an access *reached by* a must-store is not a head; a store that
        // *reaches* a must-store occurrence (other than the same occurrence
        // with no cycle) is not a tail.
        let mut hd: HashMap<MemId, HashSet<(CtxId, StmtId)>> = HashMap::new();
        let mut tl: HashMap<MemId, HashSet<(CtxId, StmtId)>> = HashMap::new();
        let no_musts: Vec<(CtxId, StmtId, NodeId)> = Vec::new();
        let span_reach = |from_c: CtxId, from_n: NodeId, ctxs: &ContextTable| {
            let mut reach: HashSet<(CtxId, NodeId)> = HashSet::new();
            let mut work = vec![(from_c, from_n)];
            while let Some((c, n)) = work.pop() {
                for &(succ, kind) in icfg.succs(n) {
                    if let Some(nc) = succ_context(icfg, cg, ctxs, c, n, succ, kind) {
                        if members.contains(&(nc, succ)) && reach.insert((nc, succ)) {
                            work.push((nc, succ));
                        }
                    }
                }
            }
            reach
        };
        for (&o, obj_stores) in &stores {
            let obj_accesses = accesses.get(&o).expect("stores are accesses");
            let obj_must = must_stores.get(&o).unwrap_or(&no_musts);
            // Forward reach of all must-stores (kills heads downstream).
            let mut reached_by_must: HashSet<(CtxId, NodeId)> = HashSet::new();
            for &(sc, _ss, sn) in obj_must {
                reached_by_must.extend(span_reach(sc, sn, ctxs));
            }
            let must_nodes: HashSet<(CtxId, NodeId)> =
                obj_must.iter().map(|&(c, _, n)| (c, n)).collect();
            let heads: HashSet<(CtxId, StmtId)> = obj_accesses
                .iter()
                .filter(|&&(c, _, n)| !reached_by_must.contains(&(c, n)))
                .map(|&(c, s, _)| (c, s))
                .collect();
            // A store is a tail unless some must-store occurrence lies
            // strictly ahead of it within the span.
            let tails: HashSet<(CtxId, StmtId)> = obj_stores
                .iter()
                .filter(|&&(c, _, n)| {
                    let reach = span_reach(c, n, ctxs);
                    !must_nodes.iter().any(|mn| reach.contains(mn))
                })
                .map(|&(c, s, _)| (c, s))
                .collect();
            hd.insert(o, heads);
            tl.insert(o, tails);
        }
        // Objects accessed but never stored in the span: all accesses are
        // heads (nothing redefines them in-span).
        for (&o, obj_accesses) in &accesses {
            hd.entry(o)
                .or_insert_with(|| obj_accesses.iter().map(|&(c, s, _)| (c, s)).collect());
        }

        Some(SpanWalk {
            member_stmts,
            hd,
            tl,
        })
    }
}

struct SpanWalk {
    member_stmts: Vec<(CtxId, StmtId)>,
    hd: HashMap<MemId, HashSet<(CtxId, StmtId)>>,
    tl: HashMap<MemId, HashSet<(CtxId, StmtId)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Interleaving;
    use crate::mhp::MhpOracle;
    use fsam_ir::parse::parse_module;

    fn analyze(src: &str) -> (Module, Icfg, ThreadModel, Interleaving, LockAnalysis) {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(&m, &icfg, &pre, &tm, &ctxs);
        let lock = LockAnalysis::compute(&m, &icfg, &pre, &tm, &ctxs);
        (m, icfg, tm, inter, lock)
    }

    fn nth_stmt(m: &Module, f: &str, pred: impl Fn(&StmtKind) -> bool, n: usize) -> StmtId {
        let fid = m.func_by_name(f).unwrap();
        m.stmts()
            .filter(|(_, s)| s.func == fid && pred(&s.kind))
            .nth(n)
            .unwrap_or_else(|| panic!("no stmt #{n} in {f}"))
            .0
    }

    /// The paper's Figure 9 (structure): two threads, two lock-release
    /// spans over the same lock; s2 (an intermediate store) must not leak
    /// to s4 (the head access of the other span), but s3 (the tail) must.
    const FIG9: &str = r#"
        global o
        global lk
        func bar() {
        entry:
          q = &o
          s4 = load q        // s4: ... = *q
          ret
        }
        func foo1() {
        entry:
          p = &o
          l1 = &lk
          store p, p         // s1 (outside the span)
          lock l1
          store p, p         // s2 (intermediate: killed by s3 in-span)
          store p, p         // s3 (tail of the span)
          unlock l1
          ret
        }
        func foo2() {
        entry:
          l2 = &lk
          lock l2
          call bar()         // cs4: s4 runs inside the span
          unlock l2
          ret
        }
        func main() {
        entry:
          t1 = fork foo1()
          t2 = fork foo2()
          join t1
          join t2
          ret
        }
    "#;

    #[test]
    fn figure9_spans_and_heads_tails() {
        let (m, icfg, _, inter, lock) = analyze(FIG9);
        assert_eq!(lock.span_count, 2);

        let s2 = nth_stmt(&m, "foo1", |k| matches!(k, StmtKind::Store { .. }), 1);
        let s3 = nth_stmt(&m, "foo1", |k| matches!(k, StmtKind::Store { .. }), 2);
        let s4 = nth_stmt(&m, "bar", |k| matches!(k, StmtKind::Load { .. }), 0);

        // All three MHP (threads are siblings without HB).
        assert!(inter.mhp_stmt(s2, s4));
        assert!(inter.mhp_stmt(s3, s4));

        // Instance-level filtering per Definition 6.
        let o = {
            let pre = fsam_andersen::PreAnalysis::run(&m);
            pre.objects().base(m.global_by_name("o").unwrap())
        };
        let i2 = inter.instances(s2);
        let i3 = inter.instances(s3);
        let i4 = inter.instances(s4);
        // s2 -> s4 is non-interference (s2 is not the span tail).
        let filtered_s2 = i2.iter().all(|&(t1, c1)| {
            i4.iter().all(|&(t2, c2)| {
                !inter.mhp_instances(&icfg, (t1, c1, s2), (t2, c2, s4))
                    || lock.non_interference(&icfg, (t1, c1, s2), (t2, c2, s4), o)
            })
        });
        assert!(filtered_s2, "spurious s2 -> s4 edge is filtered (Fig 9)");
        // s3 -> s4 interferes (tail to head).
        let kept_s3 = i3.iter().any(|&(t1, c1)| {
            i4.iter().any(|&(t2, c2)| {
                inter.mhp_instances(&icfg, (t1, c1, s3), (t2, c2, s4))
                    && !lock.non_interference(&icfg, (t1, c1, s3), (t2, c2, s4), o)
            })
        });
        assert!(kept_s3, "tail-to-head edge s3 -> s4 must remain");
    }

    #[test]
    fn unprotected_access_is_never_filtered() {
        let (m, icfg, _, inter, lock) = analyze(
            r#"
            global o
            global lk
            func a() {
            entry:
              p = &o
              l = &lk
              lock l
              store p, p     // protected store
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              c = load q     // unprotected load
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              ret
            }
        "#,
        );
        let store = nth_stmt(&m, "a", |k| matches!(k, StmtKind::Store { .. }), 0);
        let load = nth_stmt(&m, "b", |k| matches!(k, StmtKind::Load { .. }), 0);
        let pre = fsam_andersen::PreAnalysis::run(&m);
        let o = pre.objects().base(m.global_by_name("o").unwrap());
        assert!(inter.mhp_stmt(store, load));
        for &(t1, c1) in &inter.instances(store) {
            for &(t2, c2) in &inter.instances(load) {
                assert!(
                    !lock.non_interference(&icfg, (t1, c1, store), (t2, c2, load), o),
                    "no common lock: the edge must not be filtered"
                );
            }
        }
    }

    #[test]
    fn different_locks_do_not_filter() {
        let (m, icfg, _, inter, lock) = analyze(
            r#"
            global o
            global lk1
            global lk2
            func a() {
            entry:
              p = &o
              l = &lk1
              lock l
              store p, p
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              l = &lk2
              lock l
              c = load q
              unlock l
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              ret
            }
        "#,
        );
        assert_eq!(lock.span_count, 2);
        let store = nth_stmt(&m, "a", |k| matches!(k, StmtKind::Store { .. }), 0);
        let load = nth_stmt(&m, "b", |k| matches!(k, StmtKind::Load { .. }), 0);
        let pre = fsam_andersen::PreAnalysis::run(&m);
        let o = pre.objects().base(m.global_by_name("o").unwrap());
        for &(t1, c1) in &inter.instances(store) {
            for &(t2, c2) in &inter.instances(load) {
                assert!(!lock.non_interference(&icfg, (t1, c1, store), (t2, c2, load), o));
            }
        }
    }

    #[test]
    fn must_held_is_flow_sensitive() {
        let (m, icfg, _, inter, lock) = analyze(
            r#"
            global o
            global lk
            func main() {
            entry:
              p = &o
              l = &lk
              before = load p
              lock l
              during = load p
              unlock l
              after = load p
              ret
            }
        "#,
        );
        let _ = inter;
        let before = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let during = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 1);
        let after = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 2);
        let t = ThreadId::MAIN;
        let c = CtxId::EMPTY;
        assert!(lock.held_at(&icfg, t, c, before).is_empty());
        assert_eq!(lock.held_at(&icfg, t, c, during).len(), 1);
        assert!(lock.held_at(&icfg, t, c, after).is_empty());
    }

    /// Trylock-style conditional acquire: one branch arm locks, the other
    /// does not. At the merge the lock is in the may-set (union) but not
    /// the must-set (intersection) — the path inconsistency surfaced by
    /// `inconsistent_at_node`.
    #[test]
    fn conditional_acquire_splits_must_and_may() {
        let (m, icfg, _, _inter, lock) = analyze(
            r#"
            global o
            global lk
            func main() {
            entry:
              p = &o
              l = &lk
              br ?, yes, no
            yes:
              lock l
              br merge
            no:
              br merge
            merge:
              c = load p
              unlock l
              ret
            }
        "#,
        );
        let c_load = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let t = ThreadId::MAIN;
        let cx = CtxId::EMPTY;
        assert!(lock.held_at(&icfg, t, cx, c_load).is_empty());
        assert_eq!(lock.may_held_at(&icfg, t, cx, c_load).len(), 1);
        let n = icfg.stmt_node(c_load);
        assert_eq!(lock.inconsistent_at_node(t, cx, n).len(), 1);
    }

    /// Nested reacquire of the same lock: locksets are *sets* and locks are
    /// non-reentrant, so the second `lock l` is a no-op and a single
    /// `unlock l` releases the lock completely.
    #[test]
    fn nested_same_lock_reacquire_is_idempotent() {
        let (m, icfg, _, _inter, lock) = analyze(
            r#"
            global o
            global lk
            func main() {
            entry:
              p = &o
              l = &lk
              lock l
              lock l
              inner = load p
              unlock l
              after = load p
              ret
            }
        "#,
        );
        let inner = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let after = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 1);
        let t = ThreadId::MAIN;
        let cx = CtxId::EMPTY;
        assert_eq!(lock.held_at(&icfg, t, cx, inner).len(), 1);
        assert!(lock.held_at(&icfg, t, cx, after).is_empty());
        assert!(lock.may_held_at(&icfg, t, cx, after).is_empty());
    }

    /// An unlock with no matching lock is a no-op: both locksets stay
    /// empty and the analysis does not fault.
    #[test]
    fn unlock_without_lock_is_a_noop() {
        let (m, icfg, _, _inter, lock) = analyze(
            r#"
            global o
            global lk
            func main() {
            entry:
              p = &o
              l = &lk
              unlock l
              c = load p
              ret
            }
        "#,
        );
        let c_load = nth_stmt(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let t = ThreadId::MAIN;
        let cx = CtxId::EMPTY;
        assert!(lock.held_at(&icfg, t, cx, c_load).is_empty());
        assert!(lock.may_held_at(&icfg, t, cx, c_load).is_empty());
        assert_eq!(lock.span_count, 0);
    }
}

//! The MHP oracle abstraction and the PCG-style procedure-level baseline.
//!
//! The value-flow and lock phases query may-happen-in-parallel facts through
//! [`MhpOracle`] so the pipeline can swap the paper's flow- and
//! context-sensitive interleaving analysis (§3.3.1) for the coarser
//! procedure-level analysis of Joisha et al. (PCG \[14\]) — that swap is the
//! *No-Interleaving* configuration of the Figure 12 ablation, and the MHP
//! source for the NonSparse baseline (§4.3).

use std::collections::HashMap;
use std::sync::Arc;

use fsam_ir::context::CtxId;
use fsam_ir::icfg::Icfg;
use fsam_ir::{Module, StmtId};

use crate::interleave::Interleaving;
use crate::model::{ThreadId, ThreadModel};

/// May-happen-in-parallel queries at statement and instance granularity.
pub trait MhpOracle {
    /// The context-sensitive instances `(t, c)` under which `s` executes.
    fn instances(&self, s: StmtId) -> Vec<(ThreadId, CtxId)>;

    /// Whether `s1` and `s2` may happen in parallel under *some* pair of
    /// instances.
    fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool;

    /// Whether two specific instances may happen in parallel.
    fn mhp_instances(
        &self,
        icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
    ) -> bool;
}

/// The MHP oracle a pipeline configuration selected: the paper's flow- and
/// context-sensitive interleaving analysis (§3.3.1), or the PCG-style
/// procedure-level baseline used by the *No-Interleaving* ablation.
///
/// Exactly one backend always exists — this replaces the
/// `(Option<Interleaving>, Option<ProcMhp>)` pair whose `(None, None)` arm
/// was unreachable by construction. The analyses sit behind `Arc` so a
/// staged pipeline can hand the same computed oracle to several
/// configuration runs (and clients) without recomputing or cloning it.
#[derive(Clone, Debug)]
pub enum MhpBackend {
    /// The interleaving analysis (every configuration but *No-Interleaving*).
    Interleaving(Arc<Interleaving>),
    /// The procedure-level fallback (*No-Interleaving* and NonSparse).
    Pcg(Arc<ProcMhp>),
}

impl MhpBackend {
    /// The interleaving analysis, when this backend carries one.
    pub fn interleaving(&self) -> Option<&Interleaving> {
        match self {
            MhpBackend::Interleaving(i) => Some(i),
            MhpBackend::Pcg(_) => None,
        }
    }

    /// The PCG baseline, when this backend carries one.
    pub fn pcg(&self) -> Option<&ProcMhp> {
        match self {
            MhpBackend::Interleaving(_) => None,
            MhpBackend::Pcg(p) => Some(p),
        }
    }

    /// The backend as a plain oracle trait object.
    pub fn oracle(&self) -> &dyn MhpOracle {
        match self {
            MhpBackend::Interleaving(i) => i.as_ref(),
            MhpBackend::Pcg(p) => p.as_ref(),
        }
    }
}

impl MhpOracle for MhpBackend {
    fn instances(&self, s: StmtId) -> Vec<(ThreadId, CtxId)> {
        self.oracle().instances(s)
    }

    fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        self.oracle().mhp_stmt(s1, s2)
    }

    fn mhp_instances(
        &self,
        icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
    ) -> bool {
        self.oracle().mhp_instances(icfg, i1, i2)
    }
}

/// Procedure-level MHP (the PCG baseline): two statements may happen in
/// parallel iff some pair of distinct threads executing their functions is
/// not ordered by happens-before — with no statement-level join or fork
/// positioning (a statement *after* a join in the master is still considered
/// parallel with the slaves, which is precisely the imprecision the paper's
/// interleaving phase removes, §4.4).
#[derive(Debug)]
pub struct ProcMhp {
    executors: HashMap<StmtId, Vec<ThreadId>>,
    /// `concurrent[a][b]` for thread pair (a, b).
    concurrent: Vec<Vec<bool>>,
    multi: Vec<bool>,
}

impl ProcMhp {
    /// Builds the procedure-level MHP relation.
    pub fn build(module: &Module, icfg: &Icfg, tm: &ThreadModel) -> ProcMhp {
        let n = tm.len();
        let mut concurrent = vec![vec![false; n]; n];
        for a in tm.threads() {
            for b in tm.threads() {
                if a.id == b.id {
                    continue;
                }
                let ordered = tm.are_siblings(a.id, b.id)
                    && (tm.happens_before(icfg, a.id, b.id) || tm.happens_before(icfg, b.id, a.id));
                concurrent[a.id.index()][b.id.index()] = !ordered;
            }
        }
        let mut executors = HashMap::new();
        for (sid, stmt) in module.stmts() {
            let ts = tm.threads_executing(stmt.func);
            if !ts.is_empty() {
                executors.insert(sid, ts);
            }
        }
        let multi = tm.threads().iter().map(|t| t.multi_forked).collect();
        ProcMhp {
            executors,
            concurrent,
            multi,
        }
    }

    fn threads_of(&self, s: StmtId) -> &[ThreadId] {
        self.executors.get(&s).map_or(&[], Vec::as_slice)
    }

    /// Threads executing each statement's function (the statement-level MHP
    /// inputs, exported by [`crate::facts`]).
    pub fn executors_map(&self) -> &HashMap<StmtId, Vec<ThreadId>> {
        &self.executors
    }

    /// Per-thread multi-forked flags, indexed by [`ThreadId::index`].
    pub fn multi_flags(&self) -> &[bool] {
        &self.multi
    }

    /// The symmetric thread-concurrency matrix.
    pub fn concurrent_matrix(&self) -> &[Vec<bool>] {
        &self.concurrent
    }
}

impl MhpOracle for ProcMhp {
    fn instances(&self, s: StmtId) -> Vec<(ThreadId, CtxId)> {
        self.threads_of(s)
            .iter()
            .map(|&t| (t, CtxId::EMPTY))
            .collect()
    }

    fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        for &t1 in self.threads_of(s1) {
            for &t2 in self.threads_of(s2) {
                if t1 == t2 {
                    if self.multi[t1.index()] {
                        return true;
                    }
                } else if self.concurrent[t1.index()][t2.index()] {
                    return true;
                }
            }
        }
        false
    }

    fn mhp_instances(
        &self,
        _icfg: &Icfg,
        i1: (ThreadId, CtxId, StmtId),
        i2: (ThreadId, CtxId, StmtId),
    ) -> bool {
        let (t1, _, _) = i1;
        let (t2, _, _) = i2;
        if t1 == t2 {
            self.multi[t1.index()]
        } else {
            self.concurrent[t1.index()][t2.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_andersen::PreAnalysis;
    use fsam_ir::parse::parse_module;
    use fsam_ir::StmtKind;

    #[test]
    fn proc_level_is_coarser_than_interleaving() {
        // Master-slave: statement after the join. The interleaving analysis
        // proves it sequential (see interleave::tests); PCG cannot.
        let src = r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              after = &g
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let pcg = ProcMhp::build(&m, &icfg, &tm);
        let worker = m.func_by_name("worker").unwrap();
        let w = m
            .stmts()
            .find(|(_, s)| s.func == worker && matches!(s.kind, StmtKind::Addr { .. }))
            .unwrap()
            .0;
        let after = m
            .stmts()
            .filter(|(_, s)| {
                s.func == m.entry().unwrap() && matches!(s.kind, StmtKind::Addr { .. })
            })
            .last()
            .unwrap()
            .0;
        assert!(
            pcg.mhp_stmt(w, after),
            "PCG has no statement-level join precision"
        );
        assert!(
            !pcg.mhp_stmt(w, w),
            "single-forked thread not self-parallel"
        );
    }

    #[test]
    fn backend_delegates_to_its_oracle() {
        let src = r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              after = &g
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let backend = MhpBackend::Pcg(Arc::new(ProcMhp::build(&m, &icfg, &tm)));
        assert!(backend.pcg().is_some());
        assert!(backend.interleaving().is_none());
        let w = m
            .stmts()
            .find(|(_, s)| s.func == m.func_by_name("worker").unwrap())
            .unwrap()
            .0;
        let after = m
            .stmts()
            .filter(|(_, s)| s.func == m.entry().unwrap())
            .last()
            .unwrap()
            .0;
        // The enum answers exactly like the oracle it wraps.
        assert_eq!(
            backend.mhp_stmt(w, after),
            backend.oracle().mhp_stmt(w, after)
        );
        assert_eq!(backend.instances(w), backend.oracle().instances(w));
    }

    #[test]
    fn hb_ordered_siblings_are_sequential_even_for_pcg() {
        let src = r#"
            global g
            func a() {
            entry:
              sa = &g
              ret
            }
            func b() {
            entry:
              sb = &g
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              join t1
              t2 = fork b()
              join t2
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let pcg = ProcMhp::build(&m, &icfg, &tm);
        let sa = m
            .stmts()
            .find(|(_, s)| s.func == m.func_by_name("a").unwrap())
            .unwrap()
            .0;
        let sb = m
            .stmts()
            .find(|(_, s)| s.func == m.func_by_name("b").unwrap())
            .unwrap()
            .0;
        assert!(!pcg.mhp_stmt(sa, sb), "t1 > t2 orders the siblings");
    }
}

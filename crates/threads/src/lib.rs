//! # fsam-threads — thread model and interference analyses
//!
//! The paper's §3.1 and §3.3: the static thread model (abstract threads,
//! fork/join relations, multi-forked threads, happens-before), the flow- and
//! context-sensitive interleaving (MHP) analysis of Figure 7, the
//! `[THREAD-VF]` value-flow analysis producing thread-aware def-use edges,
//! and the lock analysis (Definitions 3–6) that filters non-interference
//! pairs. [`ProcMhp`] is the coarse PCG-style baseline used by the
//! *No-Interleaving* ablation and the NonSparse comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facts;
pub mod flow;
pub mod hb;
pub mod interleave;
pub mod lock;
pub mod mhp;
pub mod model;
pub mod relation;
pub mod shared;
pub mod valueflow;

pub use facts::{FactsError, MhpFacts};
pub use hb::{HbError, HbFacts, VecClock};
pub use interleave::{Interleaving, ThreadSet};
pub use lock::LockAnalysis;
pub use mhp::{MhpBackend, MhpOracle, ProcMhp};
pub use model::{JoinEntry, ThreadId, ThreadInfo, ThreadModel};
pub use relation::MhpRelation;
pub use shared::SharedObjects;
pub use valueflow::{ObjectFlow, ThreadValueFlow, ValueFlowPlan, ValueFlowStats};

//! Serializable statement-level MHP facts.
//!
//! The query subsystem persists a solved analysis to disk and answers
//! `mhp(s1, s2)` without the live [`Interleaving`] or [`ProcMhp`] structures.
//! [`MhpFacts`] is the closed, flat representation both backends export: the
//! per-statement executor lists, the multi-forked flags, and the
//! backend-specific parallelism relation (the per-`(thread, statement)`
//! alive sets of the interleaving analysis, or the PCG thread-concurrency
//! matrix). `MhpFacts::mhp_stmt` reproduces the originating backend's
//! statement-level answer exactly — the snapshot tests pin that equivalence
//! pair by pair.
//!
//! Construction from untrusted (deserialized) parts is validated: thread
//! ids out of range or a ragged concurrency matrix surface as
//! [`FactsError`], never a panic.

use std::collections::HashMap;

use fsam_ir::StmtId;

use crate::interleave::Interleaving;
use crate::mhp::{MhpBackend, ProcMhp};
use crate::model::ThreadId;

/// Why deserialized parts do not form valid [`MhpFacts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactsError {
    /// A thread id ≥ the declared thread count appeared in an executor list
    /// or alive set.
    ThreadOutOfRange {
        /// The offending raw thread id.
        thread: u32,
        /// The declared thread count.
        count: usize,
    },
    /// The PCG concurrency matrix is not `count × count`.
    RaggedMatrix,
}

impl std::fmt::Display for FactsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactsError::ThreadOutOfRange { thread, count } => {
                write!(f, "thread id {thread} out of range (count {count})")
            }
            FactsError::RaggedMatrix => write!(f, "concurrency matrix is not square"),
        }
    }
}

impl std::error::Error for FactsError {}

/// The backend-specific half of the facts.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Relation {
    /// Interleaving analysis: union-over-contexts alive sets per
    /// `(thread, statement)`, as sorted raw thread ids.
    Interleaving(HashMap<(ThreadId, StmtId), Vec<u32>>),
    /// PCG baseline: the symmetric thread-concurrency matrix.
    Pcg(Vec<Vec<bool>>),
}

/// Flat, serializable statement-level MHP facts (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MhpFacts {
    /// Threads executing each statement's function (statements of dead
    /// functions are absent).
    executors: HashMap<StmtId, Vec<ThreadId>>,
    /// Per-thread multi-forked flags, indexed by [`ThreadId::index`].
    multi: Vec<bool>,
    relation: Relation,
}

impl MhpFacts {
    fn check_threads<'a>(
        ids: impl IntoIterator<Item = &'a u32>,
        count: usize,
    ) -> Result<(), FactsError> {
        for &t in ids {
            if t as usize >= count {
                return Err(FactsError::ThreadOutOfRange { thread: t, count });
            }
        }
        Ok(())
    }

    /// Builds interleaving-backed facts from serialized parts.
    ///
    /// `executors` maps raw statement ids to raw thread ids; `alive` holds
    /// `(thread, statement, alive thread ids)` triples. Ids are validated
    /// against `multi.len()`; alive sets are canonicalized (sorted, deduped).
    pub fn from_interleaving_parts(
        executors: Vec<(u32, Vec<u32>)>,
        multi: Vec<bool>,
        alive: Vec<(u32, u32, Vec<u32>)>,
    ) -> Result<MhpFacts, FactsError> {
        let count = multi.len();
        let mut exec = HashMap::with_capacity(executors.len());
        for (s, ts) in executors {
            Self::check_threads(&ts, count)?;
            exec.insert(StmtId::new(s), ts.into_iter().map(ThreadId).collect());
        }
        let mut rel = HashMap::with_capacity(alive.len());
        for (t, s, mut ids) in alive {
            Self::check_threads(std::iter::once(&t).chain(&ids), count)?;
            ids.sort_unstable();
            ids.dedup();
            rel.insert((ThreadId(t), StmtId::new(s)), ids);
        }
        Ok(MhpFacts {
            executors: exec,
            multi,
            relation: Relation::Interleaving(rel),
        })
    }

    /// Builds PCG-backed facts from serialized parts. The matrix must be
    /// `multi.len()` × `multi.len()`.
    pub fn from_pcg_parts(
        executors: Vec<(u32, Vec<u32>)>,
        multi: Vec<bool>,
        concurrent: Vec<Vec<bool>>,
    ) -> Result<MhpFacts, FactsError> {
        let count = multi.len();
        if concurrent.len() != count || concurrent.iter().any(|row| row.len() != count) {
            return Err(FactsError::RaggedMatrix);
        }
        let mut exec = HashMap::with_capacity(executors.len());
        for (s, ts) in executors {
            Self::check_threads(&ts, count)?;
            exec.insert(StmtId::new(s), ts.into_iter().map(ThreadId).collect());
        }
        Ok(MhpFacts {
            executors: exec,
            multi,
            relation: Relation::Pcg(concurrent),
        })
    }

    /// Whether `s1` and `s2` may happen in parallel — the same answer the
    /// originating backend's `mhp_stmt` gives.
    pub fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        let (Some(e1), Some(e2)) = (self.executors.get(&s1), self.executors.get(&s2)) else {
            return false;
        };
        for &t1 in e1 {
            for &t2 in e2 {
                if t1 == t2 {
                    if self.multi[t1.index()] {
                        return true;
                    }
                    continue;
                }
                let parallel = match &self.relation {
                    Relation::Interleaving(alive) => {
                        let fwd = alive
                            .get(&(t1, s1))
                            .is_some_and(|a| a.binary_search(&t2.0).is_ok());
                        let bwd = alive
                            .get(&(t2, s2))
                            .is_some_and(|a| a.binary_search(&t1.0).is_ok());
                        fwd && bwd
                    }
                    Relation::Pcg(concurrent) => concurrent[t1.index()][t2.index()],
                };
                if parallel {
                    return true;
                }
            }
        }
        false
    }

    /// Iterates the statement-level MHP pairs `(s1, s2)` with `s1 ≤ s2`,
    /// ascending — the pair view the snapshot tests compare against the live
    /// backend. Only statements with executors participate (others are never
    /// parallel with anything).
    pub fn mhp_pairs(&self) -> impl Iterator<Item = (StmtId, StmtId)> + '_ {
        let mut stmts: Vec<StmtId> = self.executors.keys().copied().collect();
        stmts.sort_unstable();
        stmts
            .clone()
            .into_iter()
            .flat_map(move |s1| {
                stmts
                    .iter()
                    .copied()
                    .filter(move |&s2| s1 <= s2)
                    .map(move |s2| (s1, s2))
                    .collect::<Vec<_>>()
            })
            .filter(|&(s1, s2)| self.mhp_stmt(s1, s2))
    }

    /// Executor entries as raw ids, sorted by statement (the serialization
    /// order).
    pub fn executor_entries(&self) -> Vec<(u32, Vec<u32>)> {
        let mut out: Vec<(u32, Vec<u32>)> = self
            .executors
            .iter()
            .map(|(s, ts)| (s.raw(), ts.iter().map(|t| t.0).collect()))
            .collect();
        out.sort_unstable();
        out
    }

    /// The per-thread multi-forked flags.
    pub fn multi_flags(&self) -> &[bool] {
        &self.multi
    }

    /// Interleaving alive entries as raw ids, sorted — `None` for
    /// PCG-backed facts.
    pub fn alive_entries(&self) -> Option<Vec<(u32, u32, Vec<u32>)>> {
        match &self.relation {
            Relation::Interleaving(alive) => {
                let mut out: Vec<(u32, u32, Vec<u32>)> = alive
                    .iter()
                    .map(|(&(t, s), ids)| (t.0, s.raw(), ids.clone()))
                    .collect();
                out.sort_unstable();
                Some(out)
            }
            Relation::Pcg(_) => None,
        }
    }

    /// The PCG concurrency matrix — `None` for interleaving-backed facts.
    pub fn concurrent_matrix(&self) -> Option<&Vec<Vec<bool>>> {
        match &self.relation {
            Relation::Interleaving(_) => None,
            Relation::Pcg(m) => Some(m),
        }
    }

    /// Zero-copy view of the executor map, for [`crate::relation`].
    pub(crate) fn executors_internal(&self) -> &HashMap<StmtId, Vec<ThreadId>> {
        &self.executors
    }

    /// Zero-copy view of the interleaving alive map, for [`crate::relation`]
    /// — `None` for PCG-backed facts.
    pub(crate) fn alive_map_internal(&self) -> Option<&HashMap<(ThreadId, StmtId), Vec<u32>>> {
        match &self.relation {
            Relation::Interleaving(alive) => Some(alive),
            Relation::Pcg(_) => None,
        }
    }
}

impl Interleaving {
    /// Exports this analysis's statement-level facts for persistence.
    pub fn export_facts(&self) -> MhpFacts {
        MhpFacts {
            executors: self.executors_map().clone(),
            multi: self.multi_flags().to_vec(),
            relation: Relation::Interleaving(
                self.alive_map()
                    .iter()
                    .map(|(&k, set)| (k, set.iter().map(|t| t.0).collect()))
                    .collect(),
            ),
        }
    }
}

impl ProcMhp {
    /// Exports this baseline's statement-level facts for persistence.
    pub fn export_facts(&self) -> MhpFacts {
        MhpFacts {
            executors: self.executors_map().clone(),
            multi: self.multi_flags().to_vec(),
            relation: Relation::Pcg(self.concurrent_matrix().to_vec()),
        }
    }
}

impl MhpBackend {
    /// Exports the backend's statement-level facts for persistence.
    pub fn export_facts(&self) -> MhpFacts {
        match self {
            MhpBackend::Interleaving(i) => i.export_facts(),
            MhpBackend::Pcg(p) => p.export_facts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ThreadModel;
    use fsam_andersen::PreAnalysis;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;
    use fsam_ir::Module;

    const SRC: &str = r#"
        global g
        func worker() {
        entry:
          w = &g
          ret
        }
        func other() {
        entry:
          o = &g
          ret
        }
        func main() {
        entry:
          t1 = fork worker()
          t2 = fork other()
          mid = &g
          join t1
          join t2
          after = &g
          ret
        }
    "#;

    fn backends(m: &Module) -> (MhpBackend, MhpBackend) {
        let pre = PreAnalysis::run(m);
        let icfg = Icfg::build(m, pre.call_graph());
        let tm = ThreadModel::build(m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(m, &icfg, &pre, &tm, &ctxs);
        let pcg = ProcMhp::build(m, &icfg, &tm);
        (
            MhpBackend::Interleaving(std::sync::Arc::new(inter)),
            MhpBackend::Pcg(std::sync::Arc::new(pcg)),
        )
    }

    #[test]
    fn facts_match_backend_on_every_pair() {
        use crate::mhp::MhpOracle;
        let m = parse_module(SRC).unwrap();
        for backend in {
            let (a, b) = backends(&m);
            [a, b]
        } {
            let facts = backend.export_facts();
            for (s1, _) in m.stmts() {
                for (s2, _) in m.stmts() {
                    assert_eq!(
                        facts.mhp_stmt(s1, s2),
                        backend.mhp_stmt(s1, s2),
                        "{s1:?} vs {s2:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_iteration_matches_stmt_queries() {
        use crate::mhp::MhpOracle;
        let m = parse_module(SRC).unwrap();
        let (inter, _) = backends(&m);
        let facts = inter.export_facts();
        let pairs: Vec<_> = facts.mhp_pairs().collect();
        assert!(!pairs.is_empty(), "fork/join program has parallel pairs");
        for &(s1, s2) in &pairs {
            assert!(s1 <= s2);
            assert!(inter.mhp_stmt(s1, s2));
        }
        // Completeness: every MHP pair of statements with executors shows up.
        for (s1, _) in m.stmts() {
            for (s2, _) in m.stmts() {
                if s1 <= s2 && inter.mhp_stmt(s1, s2) {
                    assert!(pairs.contains(&(s1, s2)), "missing {s1:?} ∥ {s2:?}");
                }
            }
        }
    }

    #[test]
    fn parts_roundtrip_and_validate() {
        let m = parse_module(SRC).unwrap();
        let (inter, pcg) = backends(&m);
        for backend in [inter, pcg] {
            let facts = backend.export_facts();
            let rebuilt = match facts.concurrent_matrix() {
                Some(matrix) => MhpFacts::from_pcg_parts(
                    facts.executor_entries(),
                    facts.multi_flags().to_vec(),
                    matrix.clone(),
                ),
                None => MhpFacts::from_interleaving_parts(
                    facts.executor_entries(),
                    facts.multi_flags().to_vec(),
                    facts.alive_entries().unwrap(),
                ),
            }
            .unwrap();
            assert_eq!(rebuilt, facts);
        }
        // Validation: out-of-range thread ids and ragged matrices are typed
        // errors.
        let bad = MhpFacts::from_interleaving_parts(vec![(0, vec![9])], vec![false], vec![]);
        assert_eq!(
            bad.unwrap_err(),
            FactsError::ThreadOutOfRange {
                thread: 9,
                count: 1
            }
        );
        let bad = MhpFacts::from_pcg_parts(vec![], vec![false, false], vec![vec![false; 2]]);
        assert_eq!(bad.unwrap_err(), FactsError::RaggedMatrix);
    }
}

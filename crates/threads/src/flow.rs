//! A generic, context-sensitive forward data-flow driver over per-thread
//! ICFGs.
//!
//! Both the interleaving analysis (paper Figure 7) and the lock analyses
//! (§3.3.3) are forward data-flow problems solved per thread, with calls and
//! returns matched context-sensitively ([I-CALL]/[I-RET]) and call sites in
//! call-graph cycles analyzed context-insensitively (§3.1). This module
//! factors the shared machinery: state keyed by `(thread, context, node)`,
//! the worklist, and the context transitions on call/return edges — so each
//! analysis only supplies its lattice and transfer function.

use std::collections::{HashMap, HashSet};

use fsam_ir::callgraph::CallGraph;
use fsam_ir::context::{ContextTable, CtxId};
use fsam_ir::icfg::{EdgeKind, Icfg, NodeId, NodeKind};
use fsam_ir::Module;

use crate::model::{ThreadId, ThreadModel};

/// A forward data-flow problem over per-thread ICFGs.
pub trait ForwardProblem {
    /// The data-flow fact attached to each `(thread, context, node)` state.
    type Fact: Clone;

    /// The fact at a thread's entry node.
    fn entry_fact(&mut self, t: ThreadId) -> Self::Fact;

    /// OUT = transfer(IN) at `node` (contexts are available for analyses
    /// that need instance identity).
    fn transfer(&mut self, t: ThreadId, ctx: CtxId, node: NodeId, fact: &Self::Fact) -> Self::Fact;

    /// Merges `incoming` into `current`; returns `true` if `current` grew
    /// (union for may-analyses, intersection via `Option` tops for
    /// must-analyses).
    fn merge(&mut self, current: &mut Self::Fact, incoming: &Self::Fact) -> bool;

    /// Transforms the OUT fact as it flows along a specific edge. The
    /// default is the identity; the interleaving analysis overrides this to
    /// kill symmetrically-joined threads on join-loop exit edges (Fig. 11).
    fn edge_transfer(
        &mut self,
        t: ThreadId,
        ctx: CtxId,
        from: NodeId,
        to: NodeId,
        fact: Self::Fact,
    ) -> Self::Fact {
        let _ = (t, ctx, from, to);
        fact
    }
}

/// The computed IN facts: `(thread, context, node) -> fact`.
pub type FlowState<F> = HashMap<(ThreadId, CtxId, NodeId), F>;

/// The context in which `succ` executes when control flows from `node`
/// (context `ctx`) along an edge of kind `kind` ([I-CALL]/[I-RET]/[I-INTRA],
/// paper Figure 7). Returns `None` for infeasible call/return pairings.
///
/// `ctxs` must already contain every context reachable from the thread
/// entries — build it once with [`precompute_contexts`]. Keeping this
/// function read-only lets independent analyses share one frozen table and
/// run concurrently.
pub fn succ_context(
    icfg: &Icfg,
    cg: &CallGraph,
    ctxs: &ContextTable,
    ctx: CtxId,
    node: NodeId,
    succ: NodeId,
    kind: EdgeKind,
) -> Option<CtxId> {
    match kind {
        EdgeKind::Intra => Some(ctx),
        EdgeKind::Call(site) => {
            let caller = icfg.func_of(node);
            let callee = icfg.func_of(succ);
            if cg.push_context(caller, callee) {
                Some(ctxs.resolve(ctx, site))
            } else {
                Some(ctx)
            }
        }
        EdgeKind::Ret(site) => {
            let callee = icfg.func_of(node);
            let caller = icfg.func_of(succ);
            if ctxs.peek(ctx) == Some(site) {
                Some(ctxs.pop(ctx).expect("peeked frame").0)
            } else if !cg.push_context(caller, callee)
                || ctxs.contains(ctx, site)
                || ctxs.depth(ctx) >= ctxs.max_depth()
            {
                // The call was analyzed context-insensitively (cycle,
                // recursion collapse, or depth cap): return with the
                // context unchanged.
                Some(ctx)
            } else {
                // Context mismatch: infeasible call/return pairing.
                None
            }
        }
    }
}

/// Interns every calling context reachable from any thread's entry.
///
/// Context reachability depends only on the ICFG and the call graph — not on
/// any analysis's data-flow facts — so one pass over the `(context, node)`
/// state graph discovers exactly the contexts every [`run_forward`] client
/// will visit. The resulting table is then shared read-only (ids stay
/// consistent across analyses, and analyses can run in parallel).
pub fn precompute_contexts(icfg: &Icfg, cg: &CallGraph, tm: &ThreadModel) -> ContextTable {
    let mut ctxs = ContextTable::new();
    let mut seen: HashSet<(CtxId, NodeId)> = HashSet::new();
    let mut work: Vec<(CtxId, NodeId)> = Vec::new();
    for ti in tm.threads() {
        let entry = icfg.entry(ti.routine);
        if seen.insert((CtxId::EMPTY, entry)) {
            work.push((CtxId::EMPTY, entry));
        }
    }
    while let Some((ctx, node)) = work.pop() {
        for &(succ, kind) in icfg.succs(node) {
            // Call edges are the only place contexts grow; everything else
            // shares `succ_context`'s read-only logic.
            let sc = if let EdgeKind::Call(site) = kind {
                let caller = icfg.func_of(node);
                let callee = icfg.func_of(succ);
                if cg.push_context(caller, callee) {
                    ctxs.push(ctx, site)
                } else {
                    ctx
                }
            } else {
                match succ_context(icfg, cg, &ctxs, ctx, node, succ, kind) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if seen.insert((sc, succ)) {
                work.push((sc, succ));
            }
        }
    }
    ctxs
}

/// Runs `problem` to a fixpoint over every thread's ICFG.
///
/// The shared, pre-populated `ctxs` table (see [`precompute_contexts`])
/// keeps context ids consistent across analyses run on the same module.
pub fn run_forward<P: ForwardProblem>(
    module: &Module,
    icfg: &Icfg,
    cg: &CallGraph,
    tm: &ThreadModel,
    ctxs: &ContextTable,
    problem: &mut P,
) -> FlowState<P::Fact> {
    let mut state: FlowState<P::Fact> = HashMap::new();
    let mut work: Vec<(ThreadId, CtxId, NodeId)> = Vec::new();

    for ti in tm.threads() {
        let entry = icfg.entry(ti.routine);
        let fact = problem.entry_fact(ti.id);
        state.insert((ti.id, CtxId::EMPTY, entry), fact);
        work.push((ti.id, CtxId::EMPTY, entry));
    }

    while let Some((t, ctx, node)) = work.pop() {
        let in_fact = state
            .get(&(t, ctx, node))
            .expect("queued state exists")
            .clone();
        let out = problem.transfer(t, ctx, node, &in_fact);

        for &(succ, kind) in icfg.succs(node) {
            let Some(succ_ctx) = succ_context(icfg, cg, ctxs, ctx, node, succ, kind) else {
                continue;
            };
            let _ = module;
            let edge_out = problem.edge_transfer(t, ctx, node, succ, out.clone());
            let key = (t, succ_ctx, succ);
            match state.get_mut(&key) {
                Some(cur) => {
                    if problem.merge(cur, &edge_out) {
                        work.push(key);
                    }
                }
                None => {
                    state.insert(key, edge_out);
                    work.push(key);
                }
            }
        }
        // Exit nodes of thread routines have no successors; nothing to do.
        let _ = NodeKind::Exit(icfg.func_of(node));
    }

    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_andersen::PreAnalysis;
    use fsam_ir::parse::parse_module;
    use fsam_ir::StmtKind;

    /// A trivial reaching-"mark" analysis: the fact is a counter of how many
    /// lock statements were passed; used to exercise call/return matching.
    struct LockCounter;

    impl ForwardProblem for LockCounter {
        type Fact = u32;

        fn entry_fact(&mut self, _t: ThreadId) -> u32 {
            0
        }

        fn transfer(&mut self, _t: ThreadId, _c: CtxId, node: NodeId, fact: &u32) -> u32 {
            let _ = node;
            *fact
        }

        fn merge(&mut self, current: &mut u32, incoming: &u32) -> bool {
            if *incoming > *current {
                *current = *incoming;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn reaches_all_nodes_of_all_threads() {
        let m = parse_module(
            r#"
            func helper() {
            entry:
              ret
            }
            func worker() {
            entry:
              call helper()
              ret
            }
            func main() {
            entry:
              t = fork worker()
              call helper()
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = precompute_contexts(&icfg, pre.call_graph(), &tm);
        let state = run_forward(&m, &icfg, pre.call_graph(), &tm, &ctxs, &mut LockCounter);

        // helper's entry is visited under two different contexts for main
        // (its callsite) and one for worker.
        let helper = m.func_by_name("helper").unwrap();
        let entries: Vec<_> = state
            .keys()
            .filter(|(_, _, n)| *n == icfg.entry(helper))
            .collect();
        assert!(
            entries.len() >= 2,
            "helper entry visited by both threads: {entries:?}"
        );
        // The join statement is reached in the main thread.
        let join = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        assert!(state
            .keys()
            .any(|&(t, _, n)| t == ThreadId::MAIN && n == icfg.stmt_node(join)));
    }

    #[test]
    fn contexts_distinguish_callsites() {
        let m = parse_module(
            r#"
            func leaf() {
            entry:
              ret
            }
            func main() {
            entry:
              call leaf()
              call leaf()
              ret
            }
        "#,
        )
        .unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = precompute_contexts(&icfg, pre.call_graph(), &tm);
        let state = run_forward(&m, &icfg, pre.call_graph(), &tm, &ctxs, &mut LockCounter);
        let leaf = m.func_by_name("leaf").unwrap();
        let leaf_ctxs: Vec<CtxId> = state
            .keys()
            .filter(|(_, _, n)| *n == icfg.entry(leaf))
            .map(|&(_, c, _)| c)
            .collect();
        assert_eq!(leaf_ctxs.len(), 2, "one context per callsite");
        // Both calls return: main's exit is reached under the empty context.
        let main = m.entry().unwrap();
        assert!(state.contains_key(&(ThreadId::MAIN, CtxId::EMPTY, icfg.exit(main))));
    }

    #[test]
    fn recursion_is_context_insensitive_but_terminates() {
        let m = parse_module(
            r#"
            func rec() {
            entry:
              br ?, again, out
            again:
              call rec()
              br out
            out:
              ret
            }
            func main() {
            entry:
              call rec()
              ret
            }
        "#,
        )
        .unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = precompute_contexts(&icfg, pre.call_graph(), &tm);
        let state = run_forward(&m, &icfg, pre.call_graph(), &tm, &ctxs, &mut LockCounter);
        // Terminates, and rec's entry has at most two contexts (from main's
        // callsite; the recursive call is collapsed).
        let rec = m.func_by_name("rec").unwrap();
        let n = state
            .keys()
            .filter(|(_, _, n)| *n == icfg.entry(rec))
            .count();
        assert!(n <= 2, "recursive contexts collapsed, got {n}");
        let main = m.entry().unwrap();
        assert!(state.contains_key(&(ThreadId::MAIN, CtxId::EMPTY, icfg.exit(main))));
    }
}

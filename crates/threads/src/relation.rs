//! Factored statement-level MHP: a region×region bitmatrix.
//!
//! `mhp_stmt(s1, s2)` on both backends depends only on a small per-statement
//! key — the executor list plus, for the interleaving analysis, the alive
//! set of each executor *at that statement* (for PCG, nothing else: the
//! thread-concurrency matrix is statement-independent). Statements sharing a
//! key are therefore MHP-indistinguishable: they form a *region*, and the
//! whole quadratic statement×statement relation factors into
//!
//! 1. a statement → region map (one small integer per statement), and
//! 2. a region×region bitmatrix (one bit per region pair).
//!
//! Regions track function boundaries and fork/join frontiers, so their count
//! stays near the function count while statements grow with program size —
//! the matrix is effectively constant-size. Consumers that used to enumerate
//! or memoize per-statement pairs (the value-flow pair loop, the lint
//! reducer's batched MHP slab, `QueryEngine::mhp`) instead do two map
//! lookups and one bit test, without ever materializing a pair set.
//!
//! [`MhpRelation::mhp_stmt`] is pinned bit-for-bit against
//! [`MhpFacts::mhp_stmt`] (and through it against the live backends) by the
//! tests here and the suite-wide property test.

use std::collections::HashMap;

use fsam_ir::StmtId;

use crate::facts::MhpFacts;
use crate::mhp::MhpBackend;

/// The MHP-equivalence key of one statement. Two statements with equal keys
/// answer every `mhp_stmt` query identically (the pair formula below reads
/// nothing else), so they share a region.
#[derive(Clone, Hash, PartialEq, Eq)]
struct RegionKey {
    /// Raw ids of the threads executing the statement's function, in
    /// executor-list order.
    execs: Vec<u32>,
    /// For interleaving-backed facts: the sorted alive set of each executor
    /// at this statement, aligned with `execs`. Empty for PCG (its relation
    /// is statement-independent).
    alive: Vec<Vec<u32>>,
}

/// Statement-level MHP factored as regions over a bitmatrix (module docs).
#[derive(Clone, Debug)]
pub struct MhpRelation {
    /// Region of each statement that has executors; statements of dead
    /// functions are absent (never parallel with anything).
    region_of: HashMap<StmtId, u32>,
    regions: usize,
    /// `u64` words per bitmatrix row.
    words: usize,
    /// Row-major `regions × regions` symmetric bitmatrix.
    bits: Vec<u64>,
}

impl MhpRelation {
    /// Factors `facts` into region form. The result answers `mhp_stmt`
    /// exactly like `facts.mhp_stmt`.
    pub fn from_facts(facts: &MhpFacts) -> MhpRelation {
        let executors = facts.executors_internal();
        let multi = facts.multi_flags();
        let alive = facts.alive_map_internal();
        let pcg = facts.concurrent_matrix();

        // Deterministic region numbering: first appearance in statement
        // order.
        let mut stmts: Vec<StmtId> = executors.keys().copied().collect();
        stmts.sort_unstable();

        let mut intern: HashMap<RegionKey, u32> = HashMap::new();
        let mut keys: Vec<RegionKey> = Vec::new();
        let mut region_of = HashMap::with_capacity(stmts.len());
        for &s in &stmts {
            let execs = &executors[&s];
            let key = RegionKey {
                execs: execs.iter().map(|t| t.0).collect(),
                alive: match alive {
                    Some(map) => execs
                        .iter()
                        .map(|&t| map.get(&(t, s)).cloned().unwrap_or_default())
                        .collect(),
                    None => Vec::new(),
                },
            };
            let id = *intern.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                (keys.len() - 1) as u32
            });
            region_of.insert(s, id);
        }

        let regions = keys.len();
        let words = regions.div_ceil(64);
        let mut bits = vec![0u64; regions * words];
        for r1 in 0..regions {
            // The pair formula is symmetric (see `keys_parallel`), so the
            // upper triangle suffices; mirror as we go.
            for r2 in r1..regions {
                if keys_parallel(&keys[r1], &keys[r2], multi, pcg) {
                    bits[r1 * words + r2 / 64] |= 1 << (r2 % 64);
                    bits[r2 * words + r1 / 64] |= 1 << (r1 % 64);
                }
            }
        }
        MhpRelation {
            region_of,
            regions,
            words,
            bits,
        }
    }

    /// The region of `s`, or `None` when `s` has no executors (and is thus
    /// never parallel with anything).
    pub fn region_of(&self, s: StmtId) -> Option<u32> {
        self.region_of.get(&s).copied()
    }

    /// One bit test: whether the two regions may happen in parallel.
    pub fn parallel_regions(&self, r1: u32, r2: u32) -> bool {
        debug_assert!((r1 as usize) < self.regions && (r2 as usize) < self.regions);
        self.bits[r1 as usize * self.words + r2 as usize / 64] & (1 << (r2 % 64)) != 0
    }

    /// Whether `s1` and `s2` may happen in parallel — two region lookups and
    /// a bit test, identical to the originating backend's `mhp_stmt`.
    pub fn mhp_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        match (self.region_of(s1), self.region_of(s2)) {
            (Some(r1), Some(r2)) => self.parallel_regions(r1, r2),
            _ => false,
        }
    }

    /// [`mhp_stmt`](MhpRelation::mhp_stmt) refined by happens-before: a
    /// pair may race only if it can interleave *and* no synchronization
    /// chain must-orders it. With empty `hb` facts (no sync intrinsics, or
    /// the *No-HB* ablation) this is bit-identical to the raw relation.
    pub fn mhp_stmt_refined(&self, s1: StmtId, s2: StmtId, hb: &crate::hb::HbFacts) -> bool {
        self.mhp_stmt(s1, s2) && !hb.ordered_stmt(s1, s2)
    }

    /// Number of regions (distinct MHP-equivalence keys).
    pub fn region_count(&self) -> usize {
        self.regions
    }

    /// Number of statements mapped to a region.
    pub fn stmt_count(&self) -> usize {
        self.region_of.len()
    }

    /// Number of set (parallel) bits in the full `regions²` matrix.
    pub fn parallel_bits(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total bit capacity of the matrix (`regions²`).
    pub fn matrix_bits(&self) -> usize {
        self.regions * self.regions
    }

    /// Exports the factored-form counters onto `span` under the `mhp.`
    /// namespace: how many regions the statement space collapsed into, and
    /// how small the resulting matrix is — the evidence that no
    /// statement×statement pair set was materialized.
    pub fn export_trace(&self, span: &fsam_trace::Span<'_>) {
        span.counter("mhp.regions", self.regions as u64);
        span.counter("mhp.region_stmts", self.stmt_count() as u64);
        span.counter("mhp.matrix_bits", self.matrix_bits() as u64);
        span.counter("mhp.parallel_bits", self.parallel_bits() as u64);
    }

    /// Approximate owned heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bits.capacity() * size_of::<u64>()
            + self.region_of.capacity()
                * (size_of::<StmtId>() + size_of::<u32>() + size_of::<u64>())
    }
}

/// The backend-agnostic pair formula over two region keys — the body of
/// `MhpFacts::mhp_stmt` with the per-statement state already folded into the
/// keys. Symmetric: swapping `k1`/`k2` swaps the fwd/bwd alive probes (and
/// the PCG matrix is symmetric by construction).
fn keys_parallel(
    k1: &RegionKey,
    k2: &RegionKey,
    multi: &[bool],
    pcg: Option<&Vec<Vec<bool>>>,
) -> bool {
    for (i1, &t1) in k1.execs.iter().enumerate() {
        for (i2, &t2) in k2.execs.iter().enumerate() {
            if t1 == t2 {
                if multi[t1 as usize] {
                    return true;
                }
                continue;
            }
            let parallel = match pcg {
                Some(m) => m[t1 as usize][t2 as usize],
                None => {
                    k1.alive[i1].binary_search(&t2).is_ok()
                        && k2.alive[i2].binary_search(&t1).is_ok()
                }
            };
            if parallel {
                return true;
            }
        }
    }
    false
}

impl MhpFacts {
    /// Factors these facts into the region×region bitmatrix form.
    pub fn relation(&self) -> MhpRelation {
        MhpRelation::from_facts(self)
    }
}

impl MhpBackend {
    /// Exports the backend's facts and factors them into region form.
    pub fn relation(&self) -> MhpRelation {
        self.export_facts().relation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Interleaving;
    use crate::mhp::{MhpOracle, ProcMhp};
    use crate::model::ThreadModel;
    use fsam_andersen::PreAnalysis;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;
    use fsam_ir::Module;

    const SRC: &str = r#"
        global g
        func worker() {
        entry:
          w = &g
          ret
        }
        func other() {
        entry:
          o = &g
          ret
        }
        func main() {
        entry:
          t1 = fork worker()
          t2 = fork other()
          mid = &g
          join t1
          join t2
          after = &g
          ret
        }
    "#;

    fn backends(m: &Module) -> (MhpBackend, MhpBackend) {
        let pre = PreAnalysis::run(m);
        let icfg = Icfg::build(m, pre.call_graph());
        let tm = ThreadModel::build(m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(m, &icfg, &pre, &tm, &ctxs);
        let pcg = ProcMhp::build(m, &icfg, &tm);
        (
            MhpBackend::Interleaving(std::sync::Arc::new(inter)),
            MhpBackend::Pcg(std::sync::Arc::new(pcg)),
        )
    }

    #[test]
    fn relation_matches_facts_and_backend_on_every_pair() {
        let m = parse_module(SRC).unwrap();
        for backend in {
            let (a, b) = backends(&m);
            [a, b]
        } {
            let facts = backend.export_facts();
            let rel = facts.relation();
            for (s1, _) in m.stmts() {
                for (s2, _) in m.stmts() {
                    assert_eq!(
                        rel.mhp_stmt(s1, s2),
                        facts.mhp_stmt(s1, s2),
                        "{s1:?} {s2:?}"
                    );
                    assert_eq!(rel.mhp_stmt(s1, s2), backend.mhp_stmt(s1, s2));
                }
            }
        }
    }

    #[test]
    fn regions_factor_below_statement_count() {
        let m = parse_module(SRC).unwrap();
        let (inter, _) = backends(&m);
        let rel = inter.relation();
        assert!(rel.region_count() >= 1);
        assert!(
            rel.region_count() < rel.stmt_count(),
            "the fork/join program has MHP-equivalent statements: {} regions / {} stmts",
            rel.region_count(),
            rel.stmt_count()
        );
        assert_eq!(rel.matrix_bits(), rel.region_count() * rel.region_count());
        assert!(rel.parallel_bits() > 0, "forked threads are parallel");
        assert!(rel.parallel_bits() <= rel.matrix_bits());
        assert!(rel.heap_bytes() > 0);
    }

    #[test]
    fn statements_without_executors_have_no_region() {
        let m = parse_module(
            r#"
            global g
            func dead() {
            entry:
              d = &g
              ret
            }
            func main() {
            entry:
              p = &g
              ret
            }
        "#,
        )
        .unwrap();
        let (inter, _) = backends(&m);
        let rel = inter.relation();
        let dead = m.func_by_name("dead").unwrap();
        let d = m.stmts().find(|(_, s)| s.func == dead).unwrap().0;
        assert_eq!(rel.region_of(d), None);
        assert!(!rel.mhp_stmt(d, d));
    }
}

//! The value-flow analysis — paper §3.3.2, rule `[THREAD-VF]`.
//!
//! For every MHP store-load and store-store pair whose pointers share a
//! pointed-to object (`o ∈ AS(*p, *q)` from the pre-analysis), a
//! thread-aware def-use edge is produced; the lock analysis (Definition 6)
//! filters the pairs whose every MHP instance pair is a non-interference
//! pair. The surviving edges are appended to the SVFG by the pipeline.
//!
//! The *No-Value-Flow* ablation of Figure 12 disregards the aliasing
//! condition (`blind` mode): every MHP store/access pair gets edges for all
//! of the store's target objects, flooding the sparse solver with
//! unnecessary value flows — exactly the behaviour whose cost §4.4
//! quantifies.

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::icfg::Icfg;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;

use crate::lock::LockAnalysis;
use crate::mhp::MhpOracle;
use crate::relation::MhpRelation;
use crate::shared::SharedObjects;

/// Statistics of the value-flow phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValueFlowStats {
    /// Objects with accesses from more than one thread.
    pub shared_objects: usize,
    /// Store/access pairs with a common object (candidate `aliased pairs`).
    pub aliased_pairs: usize,
    /// Candidates that may happen in parallel.
    pub mhp_pairs: usize,
    /// Pairs removed by the lock analysis (Definition 6).
    pub lock_filtered: usize,
    /// Thread-aware def-use edges produced.
    pub edges: usize,
}

impl ValueFlowStats {
    /// Exports the phase counters onto `span` under the `vf.` namespace
    /// (the Figure 10/11 columns: candidate aliased pairs, MHP-surviving
    /// pairs, lock-filtered pairs, edges produced).
    pub fn export_trace(&self, span: &fsam_trace::Span<'_>) {
        span.counter("vf.shared_objects", self.shared_objects as u64);
        span.counter("vf.aliased_pairs", self.aliased_pairs as u64);
        span.counter("vf.mhp_pairs", self.mhp_pairs as u64);
        span.counter("vf.lock_filtered", self.lock_filtered as u64);
        span.counter("vf.edges", self.edges as u64);
    }
}

/// The thread-aware def-use edges to append to the SVFG.
#[derive(Debug, Default)]
pub struct ThreadValueFlow {
    /// `(store, access, object)` triples.
    pub edges: Vec<(StmtId, StmtId, MemId)>,
    /// Phase statistics.
    pub stats: ValueFlowStats,
}

/// The value-flow analysis decomposed into independent per-object units.
///
/// Each shared object's store/access pair loop reads only immutable inputs
/// ([`ValueFlowPlan::object_flow`] takes `&self`), so the objects can be
/// evaluated in any order — or concurrently on a worker pool, which is how
/// the pipeline runs this phase when configured with more than one thread.
/// [`ValueFlowPlan::merge`] folds the per-object results back **in object
/// order**, reproducing the sequential [`compute`] bit for bit: the edge
/// list, ordered by ascending object, is exactly what the sequential loop
/// emits, and the statistics are sums of per-object counts.
pub struct ValueFlowPlan<'a> {
    icfg: &'a Icfg,
    oracle: &'a (dyn MhpOracle + Sync),
    rel: &'a MhpRelation,
    lock: Option<&'a LockAnalysis>,
    stores_of: HashMap<MemId, Vec<StmtId>>,
    accesses_of: HashMap<MemId, Vec<StmtId>>,
    /// The shared, multiply-accessed objects, ascending — one work unit each.
    objects: Vec<MemId>,
}

/// One object's contribution to the value flow: its edges plus the pair
/// counts its loop accumulated.
#[derive(Debug, Default)]
pub struct ObjectFlow {
    edges: Vec<(StmtId, StmtId, MemId)>,
    aliased_pairs: usize,
    mhp_pairs: usize,
    lock_filtered: usize,
}

impl<'a> ValueFlowPlan<'a> {
    /// Builds the plan: indexes stores/accesses per object and selects the
    /// objects that can produce edges (accessed at least twice, and shared
    /// across threads).
    pub fn new(
        module: &'a Module,
        icfg: &'a Icfg,
        pre: &'a PreAnalysis,
        oracle: &'a (dyn MhpOracle + Sync),
        rel: &'a MhpRelation,
        lock: Option<&'a LockAnalysis>,
    ) -> ValueFlowPlan<'a> {
        // The sharedness half of the value-flow analysis: objects that never
        // escape their creating frame cannot interfere across threads (§4.4:
        // "non-shared memory locations").
        let shared = SharedObjects::compute(module, pre);
        let (stores_of, accesses_of) = index_accesses(module, pre);
        let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
        objects.sort();
        objects
            .retain(|&o| accesses_of.get(&o).map_or(0, Vec::len) >= 2 && shared.is_shared(pre, o));
        ValueFlowPlan {
            icfg,
            oracle,
            rel,
            lock,
            stores_of,
            accesses_of,
            objects,
        }
    }

    /// The work units: shared objects in ascending order.
    pub fn objects(&self) -> &[MemId] {
        &self.objects
    }

    /// Evaluates work unit `i` (the `i`-th object's store × access loop).
    /// Pure with respect to the plan — safe to run concurrently.
    pub fn object_flow(&self, i: usize) -> ObjectFlow {
        let o = self.objects[i];
        let stores = &self.stores_of[&o];
        let accesses = self.accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        let mut out = ObjectFlow::default();
        // One region lookup per statement; each pair costs one bit test.
        let store_regions: Vec<Option<u32>> =
            stores.iter().map(|&s| self.rel.region_of(s)).collect();
        let access_regions: Vec<Option<u32>> =
            accesses.iter().map(|&a| self.rel.region_of(a)).collect();
        for (si, &s) in stores.iter().enumerate() {
            for (ai, &a) in accesses.iter().enumerate() {
                let par = match (store_regions[si], access_regions[ai]) {
                    (Some(r1), Some(r2)) => self.rel.parallel_regions(r1, r2),
                    _ => false,
                };
                if s == a {
                    // A store can interfere with another runtime instance of
                    // itself only in a multi-forked thread — exactly the
                    // region self-bit.
                    if !par {
                        continue;
                    }
                } else {
                    out.aliased_pairs += 1;
                }
                if !par {
                    continue;
                }
                out.mhp_pairs += 1;
                if let Some(lock) = self.lock {
                    if all_instances_non_interfering(self.icfg, self.oracle, lock, s, a, o) {
                        out.lock_filtered += 1;
                        continue;
                    }
                }
                out.edges.push((s, a, o));
            }
        }
        out
    }

    /// Folds per-object results — **in object order** — into the final
    /// value flow. Deterministic for any evaluation schedule: the caller
    /// passes `flows[i] = object_flow(i)`.
    pub fn merge(&self, flows: impl IntoIterator<Item = ObjectFlow>) -> ThreadValueFlow {
        let mut out = ThreadValueFlow::default();
        out.stats.shared_objects = self.objects.len();
        for flow in flows {
            out.stats.aliased_pairs += flow.aliased_pairs;
            out.stats.mhp_pairs += flow.mhp_pairs;
            out.stats.lock_filtered += flow.lock_filtered;
            out.stats.edges += flow.edges.len();
            out.edges.extend(flow.edges);
        }
        out
    }
}

/// Per object: the stores that may write it and the loads/stores that may
/// access it. Only store/load statements participate in [THREAD-VF].
fn index_accesses(
    module: &Module,
    pre: &PreAnalysis,
) -> (HashMap<MemId, Vec<StmtId>>, HashMap<MemId, Vec<StmtId>>) {
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        match stmt.kind {
            StmtKind::Store { ptr, .. } => {
                for o in pre.pt_var(ptr).iter() {
                    stores_of.entry(o).or_default().push(sid);
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            StmtKind::Load { ptr, .. } => {
                for o in pre.pt_var(ptr).iter() {
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            _ => {}
        }
    }
    (stores_of, accesses_of)
}

/// Computes the thread-aware def-use edges.
///
/// * `oracle` supplies instance-level MHP facts for the lock filter (the
///   interleaving analysis, or the PCG baseline in the *No-Interleaving*
///   configuration);
/// * `rel` is the same backend factored into region form — every
///   statement-level MHP test here is one region lookup plus a bit test,
///   never a per-pair oracle probe;
/// * `lock` enables Definition 6 filtering (`None` in the *No-Lock*
///   configuration);
/// * `blind` disregards the aliasing condition (*No-Value-Flow*).
pub fn compute(
    module: &Module,
    icfg: &Icfg,
    pre: &PreAnalysis,
    oracle: &(dyn MhpOracle + Sync),
    rel: &MhpRelation,
    lock: Option<&LockAnalysis>,
    blind: bool,
) -> ThreadValueFlow {
    if blind {
        // Sharedness and aliasing are both disregarded in blind mode, so
        // the per-object plan does not apply; this ablation path stays
        // sequential (it exists to be measured, not to be fast).
        return compute_blind(module, pre, rel);
    }
    let plan = ValueFlowPlan::new(module, icfg, pre, oracle, rel, lock);
    let flows: Vec<ObjectFlow> = (0..plan.objects().len())
        .map(|i| plan.object_flow(i))
        .collect();
    plan.merge(flows)
}

/// The *No-Value-Flow* ablation: every MHP store/access pair gets edges
/// for all of the store's target objects, no aliasing or sharedness test.
fn compute_blind(module: &Module, pre: &PreAnalysis, rel: &MhpRelation) -> ThreadValueFlow {
    let mut out = ThreadValueFlow::default();
    let (stores_of, accesses_of) = index_accesses(module, pre);
    // No-Value-Flow: pair every store with every MHP access, no
    // aliasing requirement — the edge still needs an object label to
    // exist in the graph; we use all of the store's targets.
    let all_accesses: Vec<StmtId> = {
        let mut v: Vec<StmtId> = accesses_of.values().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    };
    let all_stores: Vec<StmtId> = {
        let mut v: Vec<StmtId> = stores_of.values().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    };
    let store_regions: Vec<Option<u32>> = all_stores.iter().map(|&s| rel.region_of(s)).collect();
    let access_regions: Vec<Option<u32>> = all_accesses.iter().map(|&a| rel.region_of(a)).collect();
    for (si, &s) in all_stores.iter().enumerate() {
        for (ai, &a) in all_accesses.iter().enumerate() {
            let par = match (store_regions[si], access_regions[ai]) {
                (Some(r1), Some(r2)) => rel.parallel_regions(r1, r2),
                _ => false,
            };
            if s == a || !par {
                continue;
            }
            out.stats.mhp_pairs += 1;
            if let StmtKind::Store { ptr, .. } = module.stmt(s).kind {
                for o in pre.pt_var(ptr).iter() {
                    out.edges.push((s, a, o));
                    out.stats.edges += 1;
                }
            }
        }
    }
    out
}

/// Whether *every* MHP instance pair of `(store, access)` is a
/// non-interference pair (Definition 6) — only then may the edge be dropped.
fn all_instances_non_interfering(
    icfg: &Icfg,
    oracle: &dyn MhpOracle,
    lock: &LockAnalysis,
    store: StmtId,
    access: StmtId,
    o: MemId,
) -> bool {
    let is1 = oracle.instances(store);
    let is2 = oracle.instances(access);
    for &(t1, c1) in &is1 {
        for &(t2, c2) in &is2 {
            let i1 = (t1, c1, store);
            let i2 = (t2, c2, access);
            if !oracle.mhp_instances(icfg, i1, i2) {
                continue;
            }
            if !lock.non_interference(icfg, i1, i2, o) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Interleaving;
    use crate::lock::LockAnalysis;
    use crate::model::ThreadModel;
    use fsam_ir::parse::parse_module;

    struct World {
        m: Module,
        icfg: Icfg,
        pre: PreAnalysis,
        inter: Interleaving,
        rel: MhpRelation,
        lock: LockAnalysis,
    }

    fn analyze(src: &str) -> World {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(&m, &icfg, &pre, &tm, &ctxs);
        let rel = inter.export_facts().relation();
        let lock = LockAnalysis::compute(&m, &icfg, &pre, &tm, &ctxs);
        World {
            m,
            icfg,
            pre,
            inter,
            rel,
            lock,
        }
    }

    fn nth_stmt(m: &Module, f: &str, pred: impl Fn(&StmtKind) -> bool, n: usize) -> StmtId {
        let fid = m.func_by_name(f).unwrap();
        m.stmts()
            .filter(|(_, s)| s.func == fid && pred(&s.kind))
            .nth(n)
            .unwrap()
            .0
    }

    /// Paper Figure 1(d): *x = r and c = *p don't alias — no edge.
    #[test]
    fn non_aliased_mhp_pair_gets_no_edge() {
        let w = analyze(
            r#"
            global xobj
            global pobj
            func foo() {
            entry:
              p2 = &pobj
              x = &xobj
              store p2, p2     // *p = q
              store x, x       // *x = r — different object
              ret
            }
            func main() {
            entry:
              p = &pobj
              t = fork foo()
              c = load p       // c = *p
              join t
              ret
            }
        "#,
        );
        let vf = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let store_x = nth_stmt(&w.m, "foo", |k| matches!(k, StmtKind::Store { .. }), 1);
        let load = nth_stmt(&w.m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(
            !vf.edges.iter().any(|&(s, a, _)| s == store_x && a == load),
            "*x and *p don't alias: no thread-aware edge (Fig 1(d))"
        );
        let store_p = nth_stmt(&w.m, "foo", |k| matches!(k, StmtKind::Store { .. }), 0);
        assert!(
            vf.edges.iter().any(|&(s, a, _)| s == store_p && a == load),
            "*p in foo does interfere with c = *p"
        );
    }

    #[test]
    fn blind_mode_floods_edges() {
        let w = analyze(
            r#"
            global xobj
            global pobj
            func foo() {
            entry:
              x = &xobj
              store x, x
              ret
            }
            func main() {
            entry:
              p = &pobj
              t = fork foo()
              c = load p
              join t
              ret
            }
        "#,
        );
        let precise = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let blind = compute(&w.m, &w.icfg, &w.pre, &w.inter, &w.rel, Some(&w.lock), true);
        assert!(
            blind.stats.edges > precise.stats.edges,
            "blind mode adds spurious edges"
        );
    }

    #[test]
    fn sequential_program_has_no_thread_edges() {
        let w = analyze(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
        "#,
        );
        let vf = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        assert!(vf.edges.is_empty());
        assert_eq!(vf.stats.mhp_pairs, 0);
    }

    /// The per-object plan must reproduce the sequential `compute` exactly
    /// — edges in the same order, identical stats — no matter in which
    /// order the object flows are *evaluated* (merge reorders by object).
    #[test]
    fn plan_merge_matches_sequential_compute_for_any_evaluation_order() {
        let w = analyze(
            r#"
            global a
            global b
            global lk
            func worker() {
            entry:
              p = &a
              q = &b
              l = &lk
              store p, q
              lock l
              store q, p
              unlock l
              c = load p
              d = load q
              ret
            }
            func main() {
            entry:
              t1 = fork worker()
              t2 = fork worker()
              p0 = &a
              e = load p0
              join t1
              join t2
              ret
            }
        "#,
        );
        let seq = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let plan = ValueFlowPlan::new(&w.m, &w.icfg, &w.pre, &w.inter, &w.rel, Some(&w.lock));
        assert!(
            plan.objects().len() >= 2,
            "test program must exercise more than one work unit"
        );
        // Evaluate in reverse order (a worker pool evaluates in *any*
        // order), then merge in object order.
        let mut flows: Vec<ObjectFlow> = (0..plan.objects().len())
            .rev()
            .map(|i| plan.object_flow(i))
            .collect();
        flows.reverse();
        let merged = plan.merge(flows);
        assert_eq!(merged.stats, seq.stats);
        assert_eq!(
            merged.edges, seq.edges,
            "edge order is part of the contract"
        );
    }

    /// Paper Figure 1(e)/Figure 9: lock correlation removes spurious edges.
    #[test]
    fn lock_filter_reduces_edges() {
        let src = r#"
            global o
            global lk
            func a() {
            entry:
              p = &o
              l = &lk
              lock l
              store p, p     // intermediate
              store p, p     // tail
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              l = &lk
              lock l
              c = load q
              unlock l
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              ret
            }
        "#;
        let w = analyze(src);
        let with_lock = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let without = compute(&w.m, &w.icfg, &w.pre, &w.inter, &w.rel, None, false);
        assert!(with_lock.stats.lock_filtered >= 1, "{:?}", with_lock.stats);
        assert!(with_lock.stats.edges < without.stats.edges);
        // The tail store -> head load edge must survive.
        let tail = nth_stmt(&w.m, "a", |k| matches!(k, StmtKind::Store { .. }), 1);
        let head = nth_stmt(&w.m, "b", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(with_lock
            .edges
            .iter()
            .any(|&(s, a, _)| s == tail && a == head));
        // The intermediate store -> head edge is filtered.
        let mid = nth_stmt(&w.m, "a", |k| matches!(k, StmtKind::Store { .. }), 0);
        assert!(!with_lock
            .edges
            .iter()
            .any(|&(s, a, _)| s == mid && a == head));
    }
}

//! The value-flow analysis — paper §3.3.2, rule `[THREAD-VF]`.
//!
//! For every MHP store-load and store-store pair whose pointers share a
//! pointed-to object (`o ∈ AS(*p, *q)` from the pre-analysis), a
//! thread-aware def-use edge is produced; the lock analysis (Definition 6)
//! filters the pairs whose every MHP instance pair is a non-interference
//! pair. The surviving edges are appended to the SVFG by the pipeline.
//!
//! The *No-Value-Flow* ablation of Figure 12 disregards the aliasing
//! condition (`blind` mode): every MHP store/access pair gets edges for all
//! of the store's target objects, flooding the sparse solver with
//! unnecessary value flows — exactly the behaviour whose cost §4.4
//! quantifies.

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::icfg::Icfg;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::MemId;

use crate::lock::LockAnalysis;
use crate::mhp::MhpOracle;
use crate::relation::MhpRelation;
use crate::shared::SharedObjects;

/// Statistics of the value-flow phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValueFlowStats {
    /// Objects with accesses from more than one thread.
    pub shared_objects: usize,
    /// Store/access pairs with a common object (candidate `aliased pairs`).
    pub aliased_pairs: usize,
    /// Candidates that may happen in parallel.
    pub mhp_pairs: usize,
    /// Pairs removed by the lock analysis (Definition 6).
    pub lock_filtered: usize,
    /// Thread-aware def-use edges produced.
    pub edges: usize,
}

impl ValueFlowStats {
    /// Exports the phase counters onto `span` under the `vf.` namespace
    /// (the Figure 10/11 columns: candidate aliased pairs, MHP-surviving
    /// pairs, lock-filtered pairs, edges produced).
    pub fn export_trace(&self, span: &fsam_trace::Span<'_>) {
        span.counter("vf.shared_objects", self.shared_objects as u64);
        span.counter("vf.aliased_pairs", self.aliased_pairs as u64);
        span.counter("vf.mhp_pairs", self.mhp_pairs as u64);
        span.counter("vf.lock_filtered", self.lock_filtered as u64);
        span.counter("vf.edges", self.edges as u64);
    }
}

/// The thread-aware def-use edges to append to the SVFG.
#[derive(Debug, Default)]
pub struct ThreadValueFlow {
    /// `(store, access, object)` triples.
    pub edges: Vec<(StmtId, StmtId, MemId)>,
    /// Phase statistics.
    pub stats: ValueFlowStats,
}

/// Computes the thread-aware def-use edges.
///
/// * `oracle` supplies instance-level MHP facts for the lock filter (the
///   interleaving analysis, or the PCG baseline in the *No-Interleaving*
///   configuration);
/// * `rel` is the same backend factored into region form — every
///   statement-level MHP test here is one region lookup plus a bit test,
///   never a per-pair oracle probe;
/// * `lock` enables Definition 6 filtering (`None` in the *No-Lock*
///   configuration);
/// * `blind` disregards the aliasing condition (*No-Value-Flow*).
pub fn compute(
    module: &Module,
    icfg: &Icfg,
    pre: &PreAnalysis,
    oracle: &dyn MhpOracle,
    rel: &MhpRelation,
    lock: Option<&LockAnalysis>,
    blind: bool,
) -> ThreadValueFlow {
    let mut out = ThreadValueFlow::default();

    // The sharedness half of the value-flow analysis: objects that never
    // escape their creating frame cannot interfere across threads (§4.4:
    // "non-shared memory locations"). Disregarded in blind mode, like the
    // aliasing condition.
    let shared = SharedObjects::compute(module, pre);

    // Per object: the stores that may write it and the loads/stores that may
    // access it. Only store/load statements participate in [THREAD-VF].
    let mut stores_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    let mut accesses_of: HashMap<MemId, Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        match stmt.kind {
            StmtKind::Store { ptr, .. } => {
                for o in pre.pt_var(ptr).iter() {
                    stores_of.entry(o).or_default().push(sid);
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            StmtKind::Load { ptr, .. } => {
                for o in pre.pt_var(ptr).iter() {
                    accesses_of.entry(o).or_default().push(sid);
                }
            }
            _ => {}
        }
    }

    if blind {
        // No-Value-Flow: pair every store with every MHP access, no
        // aliasing requirement — the edge still needs an object label to
        // exist in the graph; we use all of the store's targets.
        let all_accesses: Vec<StmtId> = {
            let mut v: Vec<StmtId> = accesses_of.values().flatten().copied().collect();
            v.sort();
            v.dedup();
            v
        };
        let all_stores: Vec<StmtId> = {
            let mut v: Vec<StmtId> = stores_of.values().flatten().copied().collect();
            v.sort();
            v.dedup();
            v
        };
        let store_regions: Vec<Option<u32>> =
            all_stores.iter().map(|&s| rel.region_of(s)).collect();
        let access_regions: Vec<Option<u32>> =
            all_accesses.iter().map(|&a| rel.region_of(a)).collect();
        for (si, &s) in all_stores.iter().enumerate() {
            for (ai, &a) in all_accesses.iter().enumerate() {
                let par = match (store_regions[si], access_regions[ai]) {
                    (Some(r1), Some(r2)) => rel.parallel_regions(r1, r2),
                    _ => false,
                };
                if s == a || !par {
                    continue;
                }
                out.stats.mhp_pairs += 1;
                if let StmtKind::Store { ptr, .. } = module.stmt(s).kind {
                    for o in pre.pt_var(ptr).iter() {
                        out.edges.push((s, a, o));
                        out.stats.edges += 1;
                    }
                }
            }
        }
        return out;
    }

    let mut objects: Vec<MemId> = stores_of.keys().copied().collect();
    objects.sort();
    for o in objects {
        let stores = &stores_of[&o];
        let accesses = accesses_of.get(&o).map_or(&[][..], Vec::as_slice);
        if accesses.len() < 2 {
            continue;
        }
        // Sharedness prefilter: thread-private objects produce no
        // thread-aware edges.
        if !shared.is_shared(pre, o) {
            continue;
        }
        out.stats.shared_objects += 1;
        // One region lookup per statement; each pair costs one bit test.
        let store_regions: Vec<Option<u32>> = stores.iter().map(|&s| rel.region_of(s)).collect();
        let access_regions: Vec<Option<u32>> = accesses.iter().map(|&a| rel.region_of(a)).collect();
        for (si, &s) in stores.iter().enumerate() {
            for (ai, &a) in accesses.iter().enumerate() {
                let par = match (store_regions[si], access_regions[ai]) {
                    (Some(r1), Some(r2)) => rel.parallel_regions(r1, r2),
                    _ => false,
                };
                if s == a {
                    // A store can interfere with another runtime instance of
                    // itself only in a multi-forked thread — exactly the
                    // region self-bit.
                    if !par {
                        continue;
                    }
                } else {
                    out.stats.aliased_pairs += 1;
                }
                if !par {
                    continue;
                }
                out.stats.mhp_pairs += 1;
                if let Some(lock) = lock {
                    if all_instances_non_interfering(icfg, oracle, lock, s, a, o) {
                        out.stats.lock_filtered += 1;
                        continue;
                    }
                }
                out.edges.push((s, a, o));
                out.stats.edges += 1;
            }
        }
    }
    out
}

/// Whether *every* MHP instance pair of `(store, access)` is a
/// non-interference pair (Definition 6) — only then may the edge be dropped.
fn all_instances_non_interfering(
    icfg: &Icfg,
    oracle: &dyn MhpOracle,
    lock: &LockAnalysis,
    store: StmtId,
    access: StmtId,
    o: MemId,
) -> bool {
    let is1 = oracle.instances(store);
    let is2 = oracle.instances(access);
    for &(t1, c1) in &is1 {
        for &(t2, c2) in &is2 {
            let i1 = (t1, c1, store);
            let i2 = (t2, c2, access);
            if !oracle.mhp_instances(icfg, i1, i2) {
                continue;
            }
            if !lock.non_interference(icfg, i1, i2, o) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Interleaving;
    use crate::lock::LockAnalysis;
    use crate::model::ThreadModel;
    use fsam_ir::parse::parse_module;

    struct World {
        m: Module,
        icfg: Icfg,
        pre: PreAnalysis,
        inter: Interleaving,
        rel: MhpRelation,
        lock: LockAnalysis,
    }

    fn analyze(src: &str) -> World {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let ctxs = crate::flow::precompute_contexts(&icfg, pre.call_graph(), &tm);
        let inter = Interleaving::compute(&m, &icfg, &pre, &tm, &ctxs);
        let rel = inter.export_facts().relation();
        let lock = LockAnalysis::compute(&m, &icfg, &pre, &tm, &ctxs);
        World {
            m,
            icfg,
            pre,
            inter,
            rel,
            lock,
        }
    }

    fn nth_stmt(m: &Module, f: &str, pred: impl Fn(&StmtKind) -> bool, n: usize) -> StmtId {
        let fid = m.func_by_name(f).unwrap();
        m.stmts()
            .filter(|(_, s)| s.func == fid && pred(&s.kind))
            .nth(n)
            .unwrap()
            .0
    }

    /// Paper Figure 1(d): *x = r and c = *p don't alias — no edge.
    #[test]
    fn non_aliased_mhp_pair_gets_no_edge() {
        let w = analyze(
            r#"
            global xobj
            global pobj
            func foo() {
            entry:
              p2 = &pobj
              x = &xobj
              store p2, p2     // *p = q
              store x, x       // *x = r — different object
              ret
            }
            func main() {
            entry:
              p = &pobj
              t = fork foo()
              c = load p       // c = *p
              join t
              ret
            }
        "#,
        );
        let vf = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let store_x = nth_stmt(&w.m, "foo", |k| matches!(k, StmtKind::Store { .. }), 1);
        let load = nth_stmt(&w.m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(
            !vf.edges.iter().any(|&(s, a, _)| s == store_x && a == load),
            "*x and *p don't alias: no thread-aware edge (Fig 1(d))"
        );
        let store_p = nth_stmt(&w.m, "foo", |k| matches!(k, StmtKind::Store { .. }), 0);
        assert!(
            vf.edges.iter().any(|&(s, a, _)| s == store_p && a == load),
            "*p in foo does interfere with c = *p"
        );
    }

    #[test]
    fn blind_mode_floods_edges() {
        let w = analyze(
            r#"
            global xobj
            global pobj
            func foo() {
            entry:
              x = &xobj
              store x, x
              ret
            }
            func main() {
            entry:
              p = &pobj
              t = fork foo()
              c = load p
              join t
              ret
            }
        "#,
        );
        let precise = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let blind = compute(&w.m, &w.icfg, &w.pre, &w.inter, &w.rel, Some(&w.lock), true);
        assert!(
            blind.stats.edges > precise.stats.edges,
            "blind mode adds spurious edges"
        );
    }

    #[test]
    fn sequential_program_has_no_thread_edges() {
        let w = analyze(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
        "#,
        );
        let vf = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        assert!(vf.edges.is_empty());
        assert_eq!(vf.stats.mhp_pairs, 0);
    }

    /// Paper Figure 1(e)/Figure 9: lock correlation removes spurious edges.
    #[test]
    fn lock_filter_reduces_edges() {
        let src = r#"
            global o
            global lk
            func a() {
            entry:
              p = &o
              l = &lk
              lock l
              store p, p     // intermediate
              store p, p     // tail
              unlock l
              ret
            }
            func b() {
            entry:
              q = &o
              l = &lk
              lock l
              c = load q
              unlock l
              ret
            }
            func main() {
            entry:
              t1 = fork a()
              t2 = fork b()
              join t1
              join t2
              ret
            }
        "#;
        let w = analyze(src);
        let with_lock = compute(
            &w.m,
            &w.icfg,
            &w.pre,
            &w.inter,
            &w.rel,
            Some(&w.lock),
            false,
        );
        let without = compute(&w.m, &w.icfg, &w.pre, &w.inter, &w.rel, None, false);
        assert!(with_lock.stats.lock_filtered >= 1, "{:?}", with_lock.stats);
        assert!(with_lock.stats.edges < without.stats.edges);
        // The tail store -> head load edge must survive.
        let tail = nth_stmt(&w.m, "a", |k| matches!(k, StmtKind::Store { .. }), 1);
        let head = nth_stmt(&w.m, "b", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(with_lock
            .edges
            .iter()
            .any(|&(s, a, _)| s == tail && a == head));
        // The intermediate store -> head edge is filtered.
        let mid = nth_stmt(&w.m, "a", |k| matches!(k, StmtKind::Store { .. }), 0);
        assert!(!with_lock
            .edges
            .iter()
            .any(|&(s, a, _)| s == mid && a == head));
    }
}

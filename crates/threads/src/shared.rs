//! Thread-escape analysis: which abstract objects can be *shared memory*.
//!
//! The value-flow analysis (§3.3.2) exists to keep the sparse solver from
//! "propagating blindly a lot of points-to information for **non-shared
//! memory locations**" (§4.4, ferret/automount/mt_daapd discussion). A stack
//! or heap object whose address never escapes the creating frame cannot be
//! accessed by another runtime thread — even when our abstraction conflates
//! all runtime instances of a multi-forked thread's locals into one abstract
//! object, cross-instance def-use edges on such objects are spurious.
//!
//! An object *escapes* iff it is reachable, through the pre-analysis
//! points-to relation, from
//!
//! * a global variable (any thread can name a global), or
//! * a fork argument (state explicitly handed to a thread).
//!
//! Escape is tracked at root-object granularity (field objects share their
//! root's memory).

use fsam_andersen::PreAnalysis;
use fsam_ir::{Module, ObjKind, StmtKind};
use fsam_pts::{MemId, PtsSet};

/// The set of objects that may be shared between runtime threads.
#[derive(Debug)]
pub struct SharedObjects {
    escaped_roots: PtsSet,
}

impl SharedObjects {
    /// Computes the escape closure for `module`.
    pub fn compute(module: &Module, pre: &PreAnalysis) -> SharedObjects {
        let om = pre.objects();
        let mut escaped_roots = PtsSet::new();
        let mut work: Vec<MemId> = Vec::new();

        let seed = |o: MemId, work: &mut Vec<MemId>, escaped: &mut PtsSet| {
            let root = om.root(o);
            if escaped.insert(root) {
                work.push(root);
            }
        };

        // Globals (including locks and arrays).
        for (oid, info) in module.objs() {
            if matches!(info.kind, ObjKind::Global) {
                seed(om.base(oid), &mut work, &mut escaped_roots);
            }
        }
        // Fork arguments.
        for (_, stmt) in module.stmts() {
            if let StmtKind::Fork { arg: Some(a), .. } = stmt.kind {
                for o in pre.pt_var(a).iter() {
                    seed(o, &mut work, &mut escaped_roots);
                }
            }
        }

        // Closure: anything an escaped object (or its fields) points to
        // escapes too.
        while let Some(root) = work.pop() {
            let mut member_objs: Vec<MemId> = vec![root];
            member_objs.extend(om.fields_of(root));
            for m in member_objs {
                for target in pre.pt_mem(m).iter() {
                    seed(target, &mut work, &mut escaped_roots);
                }
            }
        }

        SharedObjects { escaped_roots }
    }

    /// Whether `o` may be visible to more than one runtime thread.
    pub fn is_shared(&self, pre: &PreAnalysis, o: MemId) -> bool {
        self.escaped_roots.contains(pre.objects().root(o))
    }

    /// Number of escaped roots (statistics).
    pub fn escaped_count(&self) -> usize {
        self.escaped_roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    fn analyze(src: &str) -> (Module, PreAnalysis, SharedObjects) {
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let shared = SharedObjects::compute(&m, &pre);
        (m, pre, shared)
    }

    fn obj(m: &Module, pre: &PreAnalysis, name: &str) -> MemId {
        let oid = m.objs().find(|(_, o)| o.name == name).unwrap().0;
        pre.objects().base(oid)
    }

    #[test]
    fn globals_are_shared() {
        let (m, pre, sh) = analyze(
            r#"
            global g
            func main() {
            entry:
              p = &g
              ret
            }
        "#,
        );
        assert!(sh.is_shared(&pre, obj(&m, &pre, "g")));
    }

    #[test]
    fn private_locals_and_heap_do_not_escape() {
        let (m, pre, sh) = analyze(
            r#"
            func worker(a) {
            local scratch
            entry:
              p = &scratch
              h = alloc "private"
              store p, h
              ret
            }
            func main() {
            local arg_slot
            entry:
              q = &arg_slot
              t = fork worker(q)
              ret
            }
        "#,
        );
        assert!(!sh.is_shared(&pre, obj(&m, &pre, "scratch")));
        assert!(!sh.is_shared(&pre, obj(&m, &pre, "private")));
        // But the fork argument escapes.
        assert!(sh.is_shared(&pre, obj(&m, &pre, "arg_slot")));
    }

    #[test]
    fn publication_through_a_global_escapes() {
        let (m, pre, sh) = analyze(
            r#"
            global queue
            func main() {
            local item
            entry:
              q = &queue
              i = &item
              store q, i    // queue = &item: item escapes
              h = alloc "payload"
              store i, h    // item -> payload: payload escapes transitively
              ret
            }
        "#,
        );
        assert!(sh.is_shared(&pre, obj(&m, &pre, "item")));
        assert!(sh.is_shared(&pre, obj(&m, &pre, "payload")));
    }

    #[test]
    fn field_escape_is_root_granular() {
        let (m, pre, sh) = analyze(
            r#"
            global s
            func main() {
            local priv
            entry:
              p = &s
              f = gep p, 2
              h = alloc "through_field"
              store f, h   // s.f2 -> heap: escapes via the global root
              z = &priv
              ret
            }
        "#,
        );
        assert!(sh.is_shared(&pre, obj(&m, &pre, "through_field")));
        assert!(!sh.is_shared(&pre, obj(&m, &pre, "priv")));
    }
}

//! Vector-clock happens-before analysis over the abstract thread model.
//!
//! A peer of the MHP stage: where MHP answers "may these two statements run
//! concurrently", this pass answers the stronger *must* question "is one of
//! them guaranteed to complete before the other starts" — the property that
//! lets the lint funnel retire FL0001 candidates ordered by condvar,
//! barrier, or release→acquire atomic synchronization before any
//! flow-sensitive alias query runs (DESIGN §1.9).
//!
//! # Clocks and certificates
//!
//! Each abstract thread `t` gets a *must-sync chain*: the sync intrinsics of
//! its routine whose blocks dominate every reachable `ret` block and sit in
//! no CFG cycle. Such events execute exactly once per run, and — because two
//! acyclic all-exit-dominating blocks that don't dominate each other would
//! have to form a cycle — they are totally ordered by dominance. Progress of
//! `t` is measured on a half-step counter over that chain: *arrival* at
//! chain event `i` is certificate `2i−1`, *completion* is `2i`, and thread
//! exit is a virtual event with arrival `2K+1` (for a `K`-event chain).
//!
//! A [`VecClock`] maps every abstract thread to a certificate: component
//! `u = v` claims "all of `u`'s events with certificate ≤ `v` have
//! completed". The analysis computes, for each thread and chain position,
//! the clock that must hold when that event completes, by a descending
//! (greatest-fixpoint-style) iteration over the synchronization edges:
//!
//! - **fork**: the child's entry clock is the spawner's clock at the fork
//!   site (own component zeroed if the spawner is multi-forked);
//! - **join**: a join chain event receives the *meet* over the exit clocks
//!   of every thread the handle may resolve to — the join returned, so one
//!   of them finished, and the meet under-approximates whichever it was;
//! - **signal→wait**: FIR condvars are sticky events, so a returned `wait`
//!   means *some* may-aliasing `signal`/`broadcast` site executed; the wait
//!   receives the meet over all such publishers' pre-clocks;
//! - **barrier phases**: when a barrier group is statically well-formed
//!   (init count equals the participant count, every participant is a
//!   non-multi-forked thread whose waits are chain events, and all
//!   participants perform the same number of waits), the `k`-th wait of
//!   each participant receives the *join* over every participant's `k`-th
//!   arrival clock — all arrivals of a phase precede all departures;
//! - **release→acquire atomics**: the blocking `atomic_rmw` returns only
//!   once the cell is non-zero, so it receives the meet over the publish
//!   clocks of every may-aliasing `atomic_store`/`atomic_rmw` site. A
//!   release-ordered writer publishes its pre-clock; a relaxed writer
//!   publishes ⊥ (killing the edge); an `atomic_rmw` *passes through* the
//!   clock it acquired (the FIR analogue of a C11 release sequence), plus
//!   its own pre-clock when release-ordered.
//!
//! Plain `lock`/`unlock` hand-off contributes **no** must-edges: the first
//! acquisition of a mutex has no prior releaser, so the meet over
//! publishers necessarily includes ⊥. Mutual exclusion stays the lockset
//! stage's job; HB only models the ordering primitives above.
//!
//! Any solution `x ≤ F(x)` of the edge equations is sound: inducting over
//! a concrete trace in temporal order, every receive that actually returns
//! was enabled by a publisher that completed strictly earlier, whose claim
//! holds by induction — self-supporting cycles (deadlocks) never complete,
//! so their claims are vacuous. The descending iteration therefore
//! converges to the most precise sound solution reachable from ⊤.
//!
//! # Factored form
//!
//! `ordered_stmt(s1, s2)` depends only on a small per-statement key: for
//! each executor `t`, the index of the last chain event dominating the
//! statement (whose clock is the statement's *pre-clock*) and the
//! statement's completion certificate (`post`). Statements sharing a key
//! are HB-indistinguishable, so — exactly like [`MhpRelation`] (PR 6's
//! discipline) — the quadratic relation factors into a statement→region map
//! plus a region×region symmetric bitmatrix. No statement×statement pair
//! set is ever materialized.
//!
//! Modules containing no sync intrinsics gate to [`HbFacts::empty`], whose
//! `ordered_stmt` is constantly `false`: downstream consumers behave
//! bit-identically to the pre-HB pipeline on such programs.
//!
//! [`MhpRelation`]: crate::relation::MhpRelation

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::dom::DomTree;
use fsam_ir::{BlockId, FuncId, Module, StmtId, StmtKind, Terminator, VarId};

use crate::model::{ThreadId, ThreadModel};

/// A vector clock: one certificate per abstract thread. Component `u = v`
/// claims that all of thread `u`'s timeline events with certificate ≤ `v`
/// have completed (module docs). The lattice is pointwise: `join` is
/// pointwise max, `meet` pointwise min, and [`VecClock::happens_before`]
/// the induced strict order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecClock {
    c: Vec<u32>,
}

impl VecClock {
    /// The bottom clock (no knowledge) of the given width.
    pub fn bottom(width: usize) -> VecClock {
        VecClock { c: vec![0; width] }
    }

    /// Number of components — always the abstract-thread count.
    pub fn width(&self) -> usize {
        self.c.len()
    }

    /// The certificate claimed for thread index `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.c[i]
    }

    /// Overwrites the certificate for thread index `i`.
    pub fn set(&mut self, i: usize, v: u32) {
        self.c[i] = v;
    }

    /// Pointwise maximum. Widths must match.
    pub fn join(&self, other: &VecClock) -> VecClock {
        debug_assert_eq!(self.width(), other.width());
        VecClock {
            c: self
                .c
                .iter()
                .zip(&other.c)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Pointwise minimum. Widths must match.
    pub fn meet(&self, other: &VecClock) -> VecClock {
        debug_assert_eq!(self.width(), other.width());
        VecClock {
            c: self
                .c
                .iter()
                .zip(&other.c)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// Pointwise `≤`.
    pub fn leq(&self, other: &VecClock) -> bool {
        debug_assert_eq!(self.width(), other.width());
        self.c.iter().zip(&other.c).all(|(&a, &b)| a <= b)
    }

    /// The strict order induced by the pointwise lattice: `self ≤ other`
    /// and the two differ. Irreflexive, asymmetric, transitive — the
    /// property tests below pin all three.
    pub fn happens_before(&self, other: &VecClock) -> bool {
        self.leq(other) && self != other
    }
}

/// Validation failures of [`HbFacts::from_parts`], mirroring
/// [`FactsError`](crate::facts::FactsError) for the MHP facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbError {
    /// `words` is not `regions.div_ceil(64)`.
    WordsMismatch {
        /// Claimed region count.
        regions: u32,
        /// Claimed words-per-row.
        words: u32,
    },
    /// The bit vector's length is not `regions × words`.
    BitsLength {
        /// Expected word count.
        expected: usize,
        /// Actual word count.
        got: usize,
    },
    /// A statement entry names a region ≥ the region count.
    RegionOutOfRange {
        /// Raw statement id of the offending entry.
        stmt: u32,
        /// The out-of-range region.
        region: u32,
        /// Total region count.
        regions: u32,
    },
}

impl std::fmt::Display for HbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbError::WordsMismatch { regions, words } => {
                write!(
                    f,
                    "hb matrix words {words} inconsistent with {regions} regions"
                )
            }
            HbError::BitsLength { expected, got } => {
                write!(f, "hb matrix has {got} words, expected {expected}")
            }
            HbError::RegionOutOfRange {
                stmt,
                region,
                regions,
            } => write!(
                f,
                "hb entry for stmt {stmt} names region {region} of {regions}"
            ),
        }
    }
}

impl std::error::Error for HbError {}

/// Statement-level must-happens-before factored as regions over a
/// bitmatrix (module docs). `ordered_stmt(s1, s2)` means: in every
/// execution, for each pair of distinct thread instances running the two
/// statements, one statement's executions all complete before the other
/// statement runs.
#[derive(Clone, Debug, PartialEq)]
pub struct HbFacts {
    /// Region of each statement of an executed function; statements of
    /// dead functions are absent (never ordered with anything — they also
    /// never run).
    region_of: HashMap<StmtId, u32>,
    regions: usize,
    /// `u64` words per bitmatrix row.
    words: usize,
    /// Row-major `regions × regions` symmetric bitmatrix of ordered pairs.
    bits: Vec<u64>,
    /// Abstract-thread count the clocks were built over (trace counter).
    threads: u32,
    /// Total must-sync chain events across all threads (trace counter).
    chain_events: u32,
}

impl HbFacts {
    /// The no-knowledge relation: `ordered_stmt` is constantly `false`.
    /// Produced for modules without sync intrinsics and by the `--no-hb`
    /// ablation; consumers see the pre-HB pipeline bit-for-bit.
    pub fn empty() -> HbFacts {
        HbFacts {
            region_of: HashMap::new(),
            regions: 0,
            words: 0,
            bits: Vec::new(),
            threads: 0,
            chain_events: 0,
        }
    }

    /// Builds the relation for `module`. Gates to [`HbFacts::empty`] when
    /// the module has no sync intrinsics (so fork/join-only programs keep
    /// their exact pre-HB diagnostics) or fewer than two abstract threads.
    pub fn build(module: &Module, pre: &PreAnalysis, tm: &ThreadModel) -> HbFacts {
        if tm.len() < 2 || !module.stmts().any(|(_, s)| s.is_sync_intrinsic()) {
            return HbFacts::empty();
        }
        let analysis = Analysis::solve(module, pre, tm);
        analysis.factor(module, tm)
    }

    /// The region of `s`, or `None` when `s` is in a dead function.
    pub fn region_of(&self, s: StmtId) -> Option<u32> {
        self.region_of.get(&s).copied()
    }

    /// One bit test: whether the two regions are must-ordered.
    pub fn ordered_regions(&self, r1: u32, r2: u32) -> bool {
        debug_assert!((r1 as usize) < self.regions && (r2 as usize) < self.regions);
        self.bits[r1 as usize * self.words + r2 as usize / 64] & (1 << (r2 % 64)) != 0
    }

    /// Whether every cross-thread instance pair of `s1` and `s2` is
    /// ordered by synchronization — two region lookups and a bit test.
    /// Statements without a region (dead code, or an [`HbFacts::empty`]
    /// gate) answer `false`: no ordering is claimed.
    pub fn ordered_stmt(&self, s1: StmtId, s2: StmtId) -> bool {
        match (self.region_of(s1), self.region_of(s2)) {
            (Some(r1), Some(r2)) => self.ordered_regions(r1, r2),
            _ => false,
        }
    }

    /// Number of regions (distinct HB-equivalence keys).
    pub fn region_count(&self) -> usize {
        self.regions
    }

    /// Number of statements mapped to a region.
    pub fn stmt_count(&self) -> usize {
        self.region_of.len()
    }

    /// Number of set (ordered) bits in the full `regions²` matrix.
    pub fn ordered_bits(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total bit capacity of the matrix (`regions²`).
    pub fn matrix_bits(&self) -> usize {
        self.regions * self.regions
    }

    /// Abstract-thread count the clocks span.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Total must-sync chain events across all threads.
    pub fn chain_event_count(&self) -> u32 {
        self.chain_events
    }

    /// Exports the factored-form counters onto `span` under the `hb.`
    /// namespace, mirroring `mhp.*`: region/matrix sizes plus the clock
    /// dimensions, the evidence that no pair set was materialized.
    pub fn export_trace(&self, span: &fsam_trace::Span<'_>) {
        span.counter("hb.regions", self.regions as u64);
        span.counter("hb.region_stmts", self.stmt_count() as u64);
        span.counter("hb.matrix_bits", self.matrix_bits() as u64);
        span.counter("hb.ordered_bits", self.ordered_bits() as u64);
        span.counter("hb.threads", self.threads as u64);
        span.counter("hb.chain_events", self.chain_events as u64);
    }

    /// Approximate owned heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bits.capacity() * size_of::<u64>()
            + self.region_of.capacity()
                * (size_of::<StmtId>() + size_of::<u32>() + size_of::<u64>())
    }

    /// Statement→region entries sorted by raw statement id, for the
    /// snapshot codec.
    pub fn entries(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self.region_of.iter().map(|(s, &r)| (s.raw(), r)).collect();
        out.sort_unstable();
        out
    }

    /// The raw bitmatrix words, row-major.
    pub fn bit_words(&self) -> &[u64] {
        &self.bits
    }

    /// Reassembles a relation from its serialized parts, validating every
    /// internal invariant so a corrupt snapshot cannot produce
    /// out-of-bounds indexing at query time.
    pub fn from_parts(
        entries: Vec<(u32, u32)>,
        regions: u32,
        words: u32,
        bits: Vec<u64>,
        threads: u32,
        chain_events: u32,
    ) -> Result<HbFacts, HbError> {
        if words as usize != (regions as usize).div_ceil(64) {
            return Err(HbError::WordsMismatch { regions, words });
        }
        let expected = regions as usize * words as usize;
        if bits.len() != expected {
            return Err(HbError::BitsLength {
                expected,
                got: bits.len(),
            });
        }
        let mut region_of = HashMap::with_capacity(entries.len());
        for (stmt, region) in entries {
            if region >= regions {
                return Err(HbError::RegionOutOfRange {
                    stmt,
                    region,
                    regions,
                });
            }
            region_of.insert(StmtId::new(stmt), region);
        }
        Ok(HbFacts {
            region_of,
            regions: regions as usize,
            words: words as usize,
            bits,
            threads,
            chain_events,
        })
    }
}

/// The HB-equivalence key of one statement: per executor, which chain
/// clock is its pre-clock and what its completion certificate is. The pair
/// formula in [`keys_ordered`] reads nothing else.
#[derive(Clone, Hash, PartialEq, Eq)]
struct RegionKey {
    /// `(raw thread id, pre-clock chain index, post certificate)` per
    /// executor, in ascending thread order.
    execs: Vec<(u32, u32, u32)>,
}

/// The must-sync chain of one thread: chain events in dominance order,
/// positions 1-based (`events[i-1]` is position `i`).
struct Chain {
    events: Vec<StmtId>,
    /// StmtId → 1-based chain position.
    pos_of: HashMap<StmtId, usize>,
    /// `(block, in-block position)` of each event, aligned with `events`.
    locs: Vec<(BlockId, usize)>,
}

impl Chain {
    fn len(&self) -> usize {
        self.events.len()
    }
}

/// Per-routine CFG facts the chain and certificate computations need.
struct FuncCfg {
    dom: DomTree,
    /// `reach[a][b]`: a path of length ≥ 1 from block `a` to block `b`.
    reach: Vec<Vec<bool>>,
}

impl FuncCfg {
    fn compute(func: &fsam_ir::Function) -> FuncCfg {
        let dom = DomTree::compute(func);
        let n = func.blocks.len();
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|b| {
                func.blocks[BlockId::from_usize(b)]
                    .term
                    .successors()
                    .map(|s| s.index())
                    .collect()
            })
            .collect();
        let mut reach = vec![vec![false; n]; n];
        for a in 0..n {
            let mut stack: Vec<usize> = succs[a].clone();
            while let Some(b) = stack.pop() {
                if reach[a][b] {
                    continue;
                }
                reach[a][b] = true;
                stack.extend(succs[b].iter().copied());
            }
        }
        FuncCfg { dom, reach }
    }
}

/// One statically-validated barrier group (module docs): every member wait
/// is a chain event, participants are non-multi-forked, wait counts agree,
/// and the init count equals the participant count.
struct BarrierGroup {
    valid: bool,
    /// Thread index → its group waits' chain positions, in chain order
    /// (ordinal `k` ⇒ phase `k`).
    phases: HashMap<usize, Vec<usize>>,
}

/// A publisher to a sticky condvar event: `(site, cond var)`.
struct SignalSite {
    stmt: StmtId,
    cond: VarId,
    execs: Vec<ThreadId>,
}

/// A writer to an atomic cell: publish semantics depend on `release` and,
/// for RMWs, on the clock the site itself acquired (pass-through).
struct AtomicWrite {
    stmt: StmtId,
    ptr: VarId,
    release: bool,
    is_rmw: bool,
    execs: Vec<ThreadId>,
}

/// The solved clock state plus everything needed to factor it.
struct Analysis {
    chains: Vec<Chain>,
    /// `states[t][i]`: clock holding once thread `t`'s chain event `i`
    /// completes (`states[t][0]` is the entry clock).
    states: Vec<Vec<VecClock>>,
    multi: Vec<bool>,
    cfgs: HashMap<FuncId, FuncCfg>,
}

impl Analysis {
    fn solve(module: &Module, pre: &PreAnalysis, tm: &ThreadModel) -> Analysis {
        let n = tm.len();
        let multi: Vec<bool> = tm.threads().iter().map(|t| t.multi_forked).collect();

        // Per-routine CFG facts and per-thread must-sync chains.
        let mut cfgs: HashMap<FuncId, FuncCfg> = HashMap::new();
        let mut chains: Vec<Chain> = Vec::with_capacity(n);
        for info in tm.threads() {
            let func = module.func(info.routine);
            if func.is_external {
                chains.push(Chain {
                    events: Vec::new(),
                    pos_of: HashMap::new(),
                    locs: Vec::new(),
                });
                continue;
            }
            let cfg = cfgs
                .entry(info.routine)
                .or_insert_with(|| FuncCfg::compute(func));
            chains.push(build_chain(module, func, cfg));
        }

        // Publisher site tables.
        let mut signals: Vec<SignalSite> = Vec::new();
        let mut atomics: Vec<AtomicWrite> = Vec::new();
        for (sid, s) in module.stmts() {
            let (cond, ptr, release, is_rmw) = match &s.kind {
                StmtKind::Signal { cond } | StmtKind::Broadcast { cond } => {
                    (Some(*cond), None, false, false)
                }
                StmtKind::AtomicStore { ptr, order, .. } => {
                    (None, Some(*ptr), order.is_release(), false)
                }
                StmtKind::AtomicRmw { ptr, order, .. } => {
                    (None, Some(*ptr), order.is_release(), true)
                }
                _ => continue,
            };
            let execs = tm.threads_executing(s.func);
            if execs.is_empty() {
                continue; // dead publishers never fire
            }
            if let Some(cond) = cond {
                signals.push(SignalSite {
                    stmt: sid,
                    cond,
                    execs,
                });
            } else if let Some(ptr) = ptr {
                atomics.push(AtomicWrite {
                    stmt: sid,
                    ptr,
                    release,
                    is_rmw,
                    execs,
                });
            }
        }

        let groups = barrier_groups(module, pre, tm, &chains, &multi);

        // Membership: (thread, chain position) → (group, ordinal).
        let mut barrier_of: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for (g, group) in groups.iter().enumerate() {
            for (&t, positions) in &group.phases {
                for (k, &pos) in positions.iter().enumerate() {
                    barrier_of.insert((t, pos), (g, k + 1));
                }
            }
        }

        // ⊤ clock: every component at its thread's exit-arrival
        // certificate — the largest value any claim can take.
        let top = VecClock {
            c: chains.iter().map(|c| 2 * c.len() as u32 + 1).collect(),
        };

        let mut states: Vec<Vec<VecClock>> = (0..n)
            .map(|t| {
                (0..=chains[t].len())
                    .map(|i| {
                        let mut v = top.clone();
                        v.set(t, 2 * i as u32);
                        v
                    })
                    .collect()
            })
            .collect();
        // Main has no spawner: its entry clock is ⊥ from the start.
        states[0][0] = VecClock::bottom(n);

        // Acquired-clock state of every (rmw site, executor) pair, for the
        // release-sequence pass-through publish.
        let mut rmw_inc: HashMap<(StmtId, usize), VecClock> = HashMap::new();
        for w in atomics.iter().filter(|w| w.is_rmw) {
            for &u in &w.execs {
                rmw_inc.insert((w.stmt, u.index()), top.clone());
            }
        }

        // Descending chaotic iteration: every update meets the old value
        // with the recomputed equation, so values strictly descend until
        // the solution satisfies x ≤ F(x) — sound per the module docs.
        loop {
            let mut changed = false;

            let rmw_keys: Vec<(StmtId, usize)> = rmw_inc.keys().copied().collect();
            for key in rmw_keys {
                let site_ptr = atomics
                    .iter()
                    .find(|w| w.stmt == key.0)
                    .map(|w| w.ptr)
                    .expect("rmw site registered");
                let inc = atomic_incoming(
                    site_ptr, pre, &atomics, &chains, &states, &multi, &rmw_inc, n,
                );
                let old = &rmw_inc[&key];
                let new = old.meet(&inc);
                if new != *old {
                    rmw_inc.insert(key, new);
                    changed = true;
                }
            }

            for t in 0..n {
                // Entry clock: the spawner's publish at the fork site.
                if t != 0 {
                    let info = &tm.threads()[t];
                    let mut entry = match (info.spawner, info.fork_site) {
                        (Some(sp), Some(site)) => {
                            publish_pre(site, sp.index(), &chains, &states, &multi)
                        }
                        _ => VecClock::bottom(n),
                    };
                    entry.set(t, 0);
                    let new = states[t][0].meet(&entry);
                    if new != states[t][0] {
                        states[t][0] = new;
                        changed = true;
                    }
                }

                for i in 1..=chains[t].len() {
                    let event = chains[t].events[i - 1];
                    let inc = incoming(
                        module,
                        pre,
                        tm,
                        event,
                        t,
                        i,
                        &signals,
                        &groups,
                        &barrier_of,
                        &chains,
                        &states,
                        &multi,
                        &rmw_inc,
                        n,
                    );
                    let mut v = states[t][i - 1].join(&inc);
                    v.set(t, 2 * i as u32);
                    let new = states[t][i].meet(&v);
                    if new != states[t][i] {
                        states[t][i] = new;
                        changed = true;
                    }
                }
            }

            if !changed {
                break;
            }
        }

        Analysis {
            chains,
            states,
            multi,
            cfgs,
        }
    }

    /// `(pre-clock index, post certificate)` of statement `s` as executed
    /// by thread index `t` (module docs).
    fn pre_post(&self, module: &Module, tm: &ThreadModel, s: StmtId, t: usize) -> (u32, u32) {
        let chain = &self.chains[t];
        let k = chain.len();
        let exit_post = 2 * k as u32 + 1;
        let st = module.stmt(s);
        let routine = tm.threads()[t].routine;
        if st.func != routine {
            // Callee statements: only the entry clock precedes them for
            // certain, and only thread exit certifies their completion.
            return (0, exit_post);
        }
        if let Some(&j) = chain.pos_of.get(&s) {
            return ((j - 1) as u32, 2 * j as u32);
        }
        let cfg = &self.cfgs[&routine];
        if !cfg.dom.is_reachable(st.block) {
            return (0, exit_post);
        }
        let p = module.stmt_pos(s);

        // Pre-clock: the last chain event dominating `s`.
        let mut pre = 0u32;
        for j in (1..=k).rev() {
            let (bj, pj) = chain.locs[j - 1];
            if (bj == st.block && pj < p) || (bj != st.block && cfg.dom.dominates(bj, st.block)) {
                pre = j as u32;
                break;
            }
        }

        // Post certificate: the first chain event `s` dominates that
        // cannot loop back to re-execute `s` — its arrival proves every
        // execution of `s` is done. Fallback: thread exit.
        let mut post = exit_post;
        for (j, &(bj, pj)) in chain.locs.iter().enumerate() {
            let s_dominates =
                (bj == st.block && p < pj) || (bj != st.block && cfg.dom.dominates(st.block, bj));
            if s_dominates && !cfg.reach[bj.index()][st.block.index()] {
                post = 2 * (j + 1) as u32 - 1;
                break;
            }
        }
        (pre, post)
    }

    /// Factors the solved clocks into an [`HbFacts`] (module docs).
    fn factor(&self, module: &Module, tm: &ThreadModel) -> HbFacts {
        let mut execs_of: HashMap<FuncId, Vec<ThreadId>> = HashMap::new();
        let mut stmts: Vec<StmtId> = Vec::new();
        for (sid, s) in module.stmts() {
            let execs = execs_of
                .entry(s.func)
                .or_insert_with(|| tm.threads_executing(s.func));
            if !execs.is_empty() {
                stmts.push(sid);
            }
        }
        stmts.sort_unstable();

        let mut intern: HashMap<RegionKey, u32> = HashMap::new();
        let mut keys: Vec<RegionKey> = Vec::new();
        let mut region_of = HashMap::with_capacity(stmts.len());
        for &s in &stmts {
            let execs = &execs_of[&module.stmt(s).func];
            let key = RegionKey {
                execs: execs
                    .iter()
                    .map(|&t| {
                        let (pre, post) = self.pre_post(module, tm, s, t.index());
                        (t.0, pre, post)
                    })
                    .collect(),
            };
            let id = *intern.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                (keys.len() - 1) as u32
            });
            region_of.insert(s, id);
        }

        let regions = keys.len();
        let words = regions.div_ceil(64);
        let mut bits = vec![0u64; regions * words];
        for r1 in 0..regions {
            // The pair formula is symmetric; mirror the upper triangle.
            for r2 in r1..regions {
                if keys_ordered(&keys[r1], &keys[r2], &self.states, &self.multi) {
                    bits[r1 * words + r2 / 64] |= 1 << (r2 % 64);
                    bits[r2 * words + r1 / 64] |= 1 << (r1 % 64);
                }
            }
        }
        HbFacts {
            region_of,
            regions,
            words,
            bits,
            threads: tm.len() as u32,
            chain_events: self.chains.iter().map(|c| c.len() as u32).sum(),
        }
    }
}

/// The pair formula over two region keys: every cross-thread instance pair
/// must be ordered in one direction or the other; a multi-forked common
/// executor races with itself. Symmetric in `k1`/`k2`.
fn keys_ordered(k1: &RegionKey, k2: &RegionKey, states: &[Vec<VecClock>], multi: &[bool]) -> bool {
    for &(t1, pre1, post1) in &k1.execs {
        for &(t2, pre2, post2) in &k2.execs {
            if t1 == t2 {
                if multi[t1 as usize] {
                    return false;
                }
                continue;
            }
            let fwd = states[t2 as usize][pre2 as usize].get(t1 as usize) >= post1;
            let bwd = states[t1 as usize][pre1 as usize].get(t2 as usize) >= post2;
            if !(fwd || bwd) {
                return false;
            }
        }
    }
    true
}

/// Whether this statement kind anchors a must-sync chain position.
fn chain_kind(k: &StmtKind) -> bool {
    matches!(
        k,
        StmtKind::Fork { .. }
            | StmtKind::Join { .. }
            | StmtKind::Signal { .. }
            | StmtKind::Wait { .. }
            | StmtKind::Broadcast { .. }
            | StmtKind::BarrierWait { .. }
            | StmtKind::AtomicStore { .. }
            | StmtKind::AtomicRmw { .. }
    )
}

/// Collects a routine's must-sync chain: sync intrinsics in reachable,
/// acyclic blocks that dominate every reachable `ret` (module docs).
fn build_chain(module: &Module, func: &fsam_ir::Function, cfg: &FuncCfg) -> Chain {
    let rets: Vec<BlockId> = func
        .blocks()
        .filter(|(b, blk)| cfg.dom.is_reachable(*b) && matches!(blk.term, Terminator::Ret(_)))
        .map(|(b, _)| b)
        .collect();
    let mut blocks: Vec<BlockId> = Vec::new();
    if !rets.is_empty() {
        for (b, _) in func.blocks() {
            if cfg.dom.is_reachable(b)
                && !cfg.reach[b.index()][b.index()]
                && rets.iter().all(|&r| cfg.dom.dominates(b, r))
            {
                blocks.push(b);
            }
        }
    }
    // Qualifying blocks form a dominance chain (module docs); sort by it.
    blocks.sort_by(|&a, &b| {
        use std::cmp::Ordering;
        if a == b {
            Ordering::Equal
        } else if cfg.dom.dominates(a, b) {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });

    let mut events = Vec::new();
    let mut pos_of = HashMap::new();
    let mut locs = Vec::new();
    for b in blocks {
        for (p, &sid) in func.blocks[b].stmts.iter().enumerate() {
            if chain_kind(&module.stmt(sid).kind) {
                events.push(sid);
                pos_of.insert(sid, events.len());
                locs.push((b, p));
            }
        }
    }
    Chain {
        events,
        pos_of,
        locs,
    }
}

/// The clock a site publishes *on arrival*: the state after the preceding
/// chain event, own component at the arrival certificate — or the entry
/// clock with own component zeroed when the site is not a chain event
/// (still sound: the thread started before reaching it). Multi-forked
/// publishers zero their own component: one instance's progress says
/// nothing about the abstract thread's.
fn publish_pre(
    site: StmtId,
    u: usize,
    chains: &[Chain],
    states: &[Vec<VecClock>],
    multi: &[bool],
) -> VecClock {
    if let Some(&j) = chains[u].pos_of.get(&site) {
        let mut c = states[u][j - 1].clone();
        c.set(u, if multi[u] { 0 } else { 2 * j as u32 - 1 });
        c
    } else {
        let mut c = states[u][0].clone();
        c.set(u, 0);
        c
    }
}

/// The clock an atomic writer's value carries (module docs): release
/// stores publish their pre-clock, relaxed stores ⊥, and RMWs pass through
/// the clock they acquired (plus their pre-clock when release-ordered).
fn publish_atomic(
    w: &AtomicWrite,
    u: usize,
    chains: &[Chain],
    states: &[Vec<VecClock>],
    multi: &[bool],
    rmw_inc: &HashMap<(StmtId, usize), VecClock>,
    width: usize,
) -> VecClock {
    if w.is_rmw {
        let base = rmw_inc[&(w.stmt, u)].clone();
        if w.release {
            base.join(&publish_pre(w.stmt, u, chains, states, multi))
        } else {
            base
        }
    } else if w.release {
        publish_pre(w.stmt, u, chains, states, multi)
    } else {
        VecClock::bottom(width)
    }
}

/// Meet over every may-aliasing writer to an atomic cell — the clock any
/// blocking reader of that cell must have been unblocked by.
#[allow(clippy::too_many_arguments)]
fn atomic_incoming(
    ptr: VarId,
    pre: &PreAnalysis,
    atomics: &[AtomicWrite],
    chains: &[Chain],
    states: &[Vec<VecClock>],
    multi: &[bool],
    rmw_inc: &HashMap<(StmtId, usize), VecClock>,
    width: usize,
) -> VecClock {
    let mut acc: Option<VecClock> = None;
    for w in atomics {
        if !pre.may_alias(w.ptr, ptr) {
            continue;
        }
        for &u in &w.execs {
            let p = publish_atomic(w, u.index(), chains, states, multi, rmw_inc, width);
            acc = Some(match acc {
                Some(a) => a.meet(&p),
                None => p,
            });
        }
    }
    // No possible publisher: the read never unblocks; claim nothing.
    acc.unwrap_or_else(|| VecClock::bottom(width))
}

/// The clock received by chain event `i` of thread `t` (module docs).
#[allow(clippy::too_many_arguments)]
fn incoming(
    module: &Module,
    pre: &PreAnalysis,
    tm: &ThreadModel,
    event: StmtId,
    t: usize,
    i: usize,
    signals: &[SignalSite],
    groups: &[BarrierGroup],
    barrier_of: &HashMap<(usize, usize), (usize, usize)>,
    chains: &[Chain],
    states: &[Vec<VecClock>],
    multi: &[bool],
    rmw_inc: &HashMap<(StmtId, usize), VecClock>,
    width: usize,
) -> VecClock {
    match &module.stmt(event).kind {
        StmtKind::Wait { cond } => {
            let mut acc: Option<VecClock> = None;
            for site in signals {
                if !pre.may_alias(site.cond, *cond) {
                    continue;
                }
                for &u in &site.execs {
                    let p = publish_pre(site.stmt, u.index(), chains, states, multi);
                    acc = Some(match acc {
                        Some(a) => a.meet(&p),
                        None => p,
                    });
                }
            }
            acc.unwrap_or_else(|| VecClock::bottom(width))
        }
        StmtKind::AtomicRmw { .. } => rmw_inc[&(event, t)].clone(),
        StmtKind::BarrierWait { .. } => match barrier_of.get(&(t, i)) {
            Some(&(g, k)) if groups[g].valid => {
                let mut acc = VecClock::bottom(width);
                for (&v, positions) in &groups[g].phases {
                    let pos = positions[k - 1];
                    let mut arrival = states[v][pos - 1].clone();
                    arrival.set(v, 2 * pos as u32 - 1);
                    acc = acc.join(&arrival);
                }
                acc
            }
            _ => VecClock::bottom(width),
        },
        StmtKind::Join { .. } => {
            let mut acc: Option<VecClock> = None;
            for e in tm.joins_at(event) {
                if e.spawner.index() != t || e.symmetric || multi[e.thread.index()] {
                    continue;
                }
                let c = e.thread.index();
                let mut exit = states[c][chains[c].len()].clone();
                exit.set(c, 2 * chains[c].len() as u32 + 1);
                acc = Some(match acc {
                    Some(a) => a.meet(&exit),
                    None => exit,
                });
            }
            acc.unwrap_or_else(|| VecClock::bottom(width))
        }
        // Fork, Signal, Broadcast, AtomicStore: publish-only, no receive.
        _ => VecClock::bottom(width),
    }
}

/// Groups barrier-wait sites by may-alias connectivity and validates each
/// group's static phase structure (module docs).
fn barrier_groups(
    module: &Module,
    pre: &PreAnalysis,
    tm: &ThreadModel,
    chains: &[Chain],
    multi: &[bool],
) -> Vec<BarrierGroup> {
    struct WaitSite {
        stmt: StmtId,
        bar: VarId,
        execs: Vec<ThreadId>,
    }
    let mut waits: Vec<WaitSite> = Vec::new();
    let mut inits: Vec<(VarId, u32)> = Vec::new();
    for (sid, s) in module.stmts() {
        match &s.kind {
            StmtKind::BarrierWait { bar } => {
                let execs = tm.threads_executing(s.func);
                if !execs.is_empty() {
                    waits.push(WaitSite {
                        stmt: sid,
                        bar: *bar,
                        execs,
                    });
                }
            }
            StmtKind::BarrierInit { bar, count } if !tm.threads_executing(s.func).is_empty() => {
                inits.push((*bar, *count));
            }
            _ => {}
        }
    }

    // Union-find over wait sites by pairwise may-alias of their barriers.
    let mut parent: Vec<usize> = (0..waits.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for a in 0..waits.len() {
        for b in a + 1..waits.len() {
            if pre.may_alias(waits[a].bar, waits[b].bar) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
        }
    }
    let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
    for a in 0..waits.len() {
        let r = find(&mut parent, a);
        members.entry(r).or_default().push(a);
    }

    let mut groups = Vec::new();
    for (_, sites) in members {
        let mut valid = true;
        let mut phases: HashMap<usize, Vec<usize>> = HashMap::new();
        for &a in &sites {
            for &u in &waits[a].execs {
                let t = u.index();
                if multi[t] {
                    valid = false;
                }
                match chains[t].pos_of.get(&waits[a].stmt) {
                    Some(&pos) => phases.entry(t).or_default().push(pos),
                    // A wait executed outside its thread's chain (in a
                    // callee or a loop) makes phase ordinals unknowable.
                    None => valid = false,
                }
            }
        }
        for positions in phases.values_mut() {
            positions.sort_unstable();
        }
        let counts: Vec<usize> = phases.values().map(|p| p.len()).collect();
        if counts.is_empty() || counts.windows(2).any(|w| w[0] != w[1]) {
            valid = false;
        }
        // The init count must match the arrivals-per-phase exactly.
        let mut init_counts: Vec<u32> = inits
            .iter()
            .filter(|(bar, _)| sites.iter().any(|&a| pre.may_alias(waits[a].bar, *bar)))
            .map(|&(_, c)| c)
            .collect();
        init_counts.sort_unstable();
        init_counts.dedup();
        if init_counts.len() != 1 || init_counts[0] as usize != phases.len() {
            valid = false;
        }
        groups.push(BarrierGroup { valid, phases });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;
    use fsam_ir::rng::SmallRng;

    fn harness(src: &str) -> (Module, PreAnalysis, ThreadModel) {
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        (m, pre, tm)
    }

    fn facts(src: &str) -> (Module, HbFacts) {
        let (m, pre, tm) = harness(src);
        let hb = HbFacts::build(&m, &pre, &tm);
        (m, hb)
    }

    /// The statement of `func` at in-block position `pos` of its entry
    /// block chain, found by matching the printed form.
    fn stmt_matching(m: &Module, needle: &str) -> StmtId {
        let mut found = None;
        for (sid, _) in m.stmts() {
            let text = fsam_ir::print::stmt_to_string(m, sid);
            if text.trim().contains(needle) {
                assert!(found.is_none(), "ambiguous needle {needle}");
                found = Some(sid);
            }
        }
        found.unwrap_or_else(|| panic!("no statement matches {needle}"))
    }

    fn rand_clock(rng: &mut SmallRng, width: usize) -> VecClock {
        let mut c = VecClock::bottom(width);
        for i in 0..width {
            c.set(i, rng.gen_range(0u32..6));
        }
        c
    }

    // ---- satellite 1: vector-clock lattice property tests ----

    #[test]
    fn join_is_commutative_associative_idempotent() {
        let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15);
        for _ in 0..500 {
            let w = rng.gen_range(1usize..8);
            let (a, b, c) = (
                rand_clock(&mut rng, w),
                rand_clock(&mut rng, w),
                rand_clock(&mut rng, w),
            );
            assert_eq!(a.join(&b), b.join(&a));
            assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
            assert_eq!(a.join(&a), a);
            // meet mirrors join on the dual lattice
            assert_eq!(a.meet(&b), b.meet(&a));
            assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
            assert_eq!(a.meet(&a), a);
            // absorption ties the two operations together
            assert_eq!(a.join(&a.meet(&b)), a);
            assert_eq!(a.meet(&a.join(&b)), a);
        }
    }

    #[test]
    fn happens_before_is_a_strict_partial_order() {
        let mut rng = SmallRng::seed_from_u64(0xd1b54a32d192ed03);
        for _ in 0..500 {
            let w = rng.gen_range(1usize..8);
            let (a, b, c) = (
                rand_clock(&mut rng, w),
                rand_clock(&mut rng, w),
                rand_clock(&mut rng, w),
            );
            assert!(!a.happens_before(&a), "irreflexive");
            if a.happens_before(&b) {
                assert!(!b.happens_before(&a), "asymmetric");
            }
            if a.happens_before(&b) && b.happens_before(&c) {
                assert!(a.happens_before(&c), "transitive");
            }
            // join is the least upper bound w.r.t. leq
            assert!(a.leq(&a.join(&b)) && b.leq(&a.join(&b)));
            assert!(a.meet(&b).leq(&a) && a.meet(&b).leq(&b));
        }
    }

    #[test]
    fn join_preserves_width() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let w = rng.gen_range(1usize..9);
            let a = rand_clock(&mut rng, w);
            let b = rand_clock(&mut rng, w);
            assert_eq!(a.join(&b).width(), w);
            assert_eq!(a.meet(&b).width(), w);
        }
    }

    const PRODUCER_CONSUMER: &str = r#"
        global buf
        global cv
        func producer() {
        entry:
          p = &buf
          one = &buf
          store p, one
          c = &cv
          signal c
          ret
        }
        func main() {
        entry:
          t = fork producer()
          c2 = &cv
          wait c2
          q = &buf
          v = load q
          join t
          ret
        }
    "#;

    /// Clock width always equals the abstract-thread count (satellite 1).
    #[test]
    fn clock_width_is_thread_count() {
        let (m, pre, tm) = harness(PRODUCER_CONSUMER);
        let a = Analysis::solve(&m, &pre, &tm);
        assert_eq!(a.states.len(), tm.len());
        for per_thread in &a.states {
            for clock in per_thread {
                assert_eq!(clock.width(), tm.len());
            }
        }
    }

    // ---- edge-rule end-to-end tests ----

    #[test]
    fn signal_wait_orders_producer_store_before_consumer_load() {
        let (m, hb) = facts(PRODUCER_CONSUMER);
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(hb.ordered_stmt(store, load));
        assert!(hb.ordered_stmt(load, store), "relation is symmetric");
    }

    #[test]
    fn unsynchronized_racy_pair_is_not_ordered() {
        let (m, hb) = facts(
            r#"
            global buf
            global cv
            func worker() {
            entry:
              p = &buf
              one = &buf
              store p, one
              c = &cv
              signal c
              ret
            }
            func main() {
            entry:
              t = fork worker()
              q = &buf
              v = load q
              join t
              ret
            }
        "#,
        );
        // main's load happens without waiting on the condvar: racy.
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(!hb.ordered_stmt(store, load));
    }

    #[test]
    fn module_without_sync_intrinsics_gates_to_empty() {
        let (m, hb) = facts(
            r#"
            global g
            func worker() {
            entry:
              w = &g
              ret
            }
            func main() {
            entry:
              t = fork worker()
              x = &g
              join t
              ret
            }
        "#,
        );
        assert_eq!(hb.region_count(), 0);
        for (s1, _) in m.stmts() {
            for (s2, _) in m.stmts() {
                assert!(!hb.ordered_stmt(s1, s2));
            }
        }
    }

    #[test]
    fn barrier_phases_order_pre_phase_writes_before_post_phase_reads() {
        let (m, hb) = facts(
            r#"
            global data
            global bar
            func worker() {
            entry:
              p = &data
              one = &data
              store p, one
              b = &bar
              barrier_wait b
              ret
            }
            func main() {
            entry:
              b0 = &bar
              barrier_init b0, 2
              t = fork worker()
              b1 = &bar
              barrier_wait b1
              q = &data
              v = load q
              join t
              ret
            }
        "#,
        );
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(hb.ordered_stmt(store, load));
    }

    #[test]
    fn barrier_with_wrong_init_count_gives_no_ordering() {
        let (m, hb) = facts(
            r#"
            global data
            global bar
            func worker() {
            entry:
              p = &data
              one = &data
              store p, one
              b = &bar
              barrier_wait b
              ret
            }
            func main() {
            entry:
              b0 = &bar
              barrier_init b0, 3
              t = fork worker()
              b1 = &bar
              barrier_wait b1
              q = &data
              v = load q
              join t
              ret
            }
        "#,
        );
        // count 3 but only two participants: the group is invalid and the
        // phase edge must not be claimed.
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(!hb.ordered_stmt(store, load));
    }

    #[test]
    fn release_store_acquire_rmw_orders_init_before_use() {
        let (m, hb) = facts(
            r#"
            global data
            global flag
            func init() {
            entry:
              p = &data
              one = &data
              store p, one
              f = &flag
              tok = &data
              atomic_store f, tok, rel
              ret
            }
            func main() {
            entry:
              t = fork init()
              f2 = &flag
              tok2 = &data
              old = atomic_rmw f2, tok2, acq
              q = &data
              v = load q
              join t
              ret
            }
        "#,
        );
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(hb.ordered_stmt(store, load));
    }

    #[test]
    fn relaxed_store_publishes_nothing() {
        let (m, hb) = facts(
            r#"
            global data
            global flag
            func init() {
            entry:
              p = &data
              one = &data
              store p, one
              f = &flag
              tok = &data
              atomic_store f, tok
              ret
            }
            func main() {
            entry:
              t = fork init()
              f2 = &flag
              tok2 = &data
              old = atomic_rmw f2, tok2, acq
              q = &data
              v = load q
              join t
              ret
            }
        "#,
        );
        // The store is relaxed: the rmw unblocks but acquires ⊥.
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(!hb.ordered_stmt(store, load));
    }

    #[test]
    fn join_orders_child_work_before_post_join_reads() {
        let (m, hb) = facts(
            r#"
            global g
            global cv
            func worker() {
            entry:
              p = &g
              one = &g
              store p, one
              c = &cv
              signal c
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              q = &g
              v = load q
              ret
            }
        "#,
        );
        let store = stmt_matching(&m, "store p, one");
        let load = stmt_matching(&m, "v = load q");
        assert!(hb.ordered_stmt(store, load));
    }

    // ---- factored form ----

    #[test]
    fn from_parts_roundtrips() {
        let (_, hb) = facts(PRODUCER_CONSUMER);
        let rebuilt = HbFacts::from_parts(
            hb.entries(),
            hb.region_count() as u32,
            hb.region_count().div_ceil(64) as u32,
            hb.bit_words().to_vec(),
            hb.thread_count(),
            hb.chain_event_count(),
        )
        .unwrap();
        assert_eq!(hb, rebuilt);
    }

    #[test]
    fn from_parts_rejects_corruption() {
        assert!(matches!(
            HbFacts::from_parts(vec![], 65, 1, vec![0; 65], 2, 3),
            Err(HbError::WordsMismatch { .. })
        ));
        assert!(matches!(
            HbFacts::from_parts(vec![], 2, 1, vec![0; 3], 2, 3),
            Err(HbError::BitsLength { .. })
        ));
        assert!(matches!(
            HbFacts::from_parts(vec![(0, 2)], 2, 1, vec![0; 2], 2, 3),
            Err(HbError::RegionOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_facts_have_no_regions_and_order_nothing() {
        let hb = HbFacts::empty();
        assert_eq!(hb.region_count(), 0);
        assert_eq!(hb.stmt_count(), 0);
        assert_eq!(hb.matrix_bits(), 0);
        assert!(!hb.ordered_stmt(StmtId::new(0), StmtId::new(1)));
    }
}

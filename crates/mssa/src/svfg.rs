//! The sparse value-flow graph (SVFG): memory SSA renaming and def-use
//! chains.
//!
//! Following §2.2 (Figure 4) and §3.2 (Figure 6) of the paper:
//!
//! * address-taken objects are renamed into SSA with memory phis placed on
//!   iterated dominance frontiers;
//! * loads use the reaching definition of every object in their `mu` set,
//!   stores define (and weakly use) every object in their `chi` set;
//! * call sites thread definitions into callees (`FormalIn`) and back out
//!   (`FormalOut` → `ActualOut`), with the incoming version merged weakly at
//!   the `ActualOut` so side effects never kill the caller's state;
//! * **fork sites are call sites of the start routine** whose `ActualOut` is
//!   always weak — this simultaneously realizes steps 1 and 2 of §3.2 (the
//!   `Pseq` call and the fork-bypass edges of Figure 6(c));
//! * **join sites** get an `ActualOut` fed by the joined routine's
//!   `FormalOut`, realizing step 3 (the join side-effect edges of
//!   Figure 6(d)).
//!
//! Thread-*aware* edges (§3.3) are appended later by the pipeline through
//! [`Svfg::add_thread_edge`].

use std::collections::{BTreeMap, HashMap, HashSet};

use fsam_andersen::PreAnalysis;
use fsam_ir::dom::DomTree;
use fsam_ir::{BlockId, FuncId, Module, StmtId, StmtKind, Terminator, VarId};
use fsam_pts::MemId;
use fsam_threads::ThreadModel;

use crate::annotate::Annotations;
use crate::modref::ModRef;

/// Identifies an SVFG node.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw dense index (the inverse of
    /// [`NodeId::index`]; only indices below the owning graph's
    /// [`Svfg::node_count`] are meaningful).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("SVFG node index overflows u32"))
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What an SVFG node represents.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A statement (loads use, stores define).
    Stmt(StmtId),
    /// A memory phi for `obj` at the head of a block.
    MemPhi {
        /// Owning function.
        func: FuncId,
        /// Block whose head carries the phi.
        block: BlockId,
        /// The object being merged.
        obj: MemId,
    },
    /// The version of `obj` entering `func`.
    FormalIn {
        /// The callee.
        func: FuncId,
        /// The object.
        obj: MemId,
    },
    /// The version of `obj` leaving `func` (merged over all returns).
    FormalOut {
        /// The callee.
        func: FuncId,
        /// The object.
        obj: MemId,
    },
    /// The version of `obj` after a call/fork/join site.
    ActualOut {
        /// The call, fork or join statement.
        site: StmtId,
        /// The object.
        obj: MemId,
    },
    /// A merge point for thread-aware value flows on `obj`: when the
    /// interference analyses produce a complete store×access product, the
    /// flows are routed through one junction (k+m edges instead of k×m)
    /// with identical points-to results.
    ThreadJunction {
        /// The object flowing through the junction.
        obj: MemId,
    },
}

/// Construction statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SvfgStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total indirect (memory) def-use edges.
    pub edges: usize,
    /// Memory phis placed.
    pub mem_phis: usize,
    /// Thread-aware edges appended by the interference phases.
    pub thread_edges: usize,
}

/// Outcome of one [`Svfg::insert_thread_edges_grouped`] call: how the
/// requested store×access products were materialized. The tracing layer
/// exports these as per-phase counters (`svfg.thread_classes`,
/// `svfg.thread_junctions`, `svfg.thread_edges_added`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadEdgeInsertion {
    /// Complete-bipartite interference classes formed (one junction or
    /// direct product each).
    pub classes: usize,
    /// Junction nodes created for classes above the fan-in threshold.
    pub junctions: usize,
    /// Graph edges actually appended (after deduplication).
    pub edges_added: usize,
}

impl ThreadEdgeInsertion {
    fn absorb(&mut self, other: ThreadEdgeInsertion) {
        self.classes += other.classes;
        self.junctions += other.junctions;
        self.edges_added += other.edges_added;
    }
}

/// The sparse value-flow graph.
///
/// `Clone` supports the staged pipeline: the thread-*oblivious* graph is
/// built once per module and cloned per configuration before the
/// configuration-specific thread-aware edges are appended.
#[derive(Clone, Debug)]
pub struct Svfg {
    nodes: Vec<NodeKind>,
    index: HashMap<NodeKind, NodeId>,
    succs: Vec<Vec<(NodeId, MemId)>>,
    preds: Vec<Vec<(NodeId, MemId)>>,
    var_def: Vec<Option<StmtId>>,
    var_uses: Vec<Vec<StmtId>>,
    ann: Annotations,
    modref: ModRef,
    /// Edges appended by the thread-interference phases, so consumers
    /// (the trace-backed explain walk) can distinguish an intra-thread
    /// def-use step from a cross-thread one.
    thread_marks: HashSet<(NodeId, NodeId)>,
    /// Construction statistics.
    pub stats: SvfgStats,
}

impl Svfg {
    /// Builds the thread-oblivious SVFG (§3.2) for `module`.
    pub fn build(module: &Module, pre: &PreAnalysis, tm: &ThreadModel) -> Svfg {
        let modref = ModRef::compute(module, pre, tm);
        let ann = Annotations::compute(module, pre, tm, &modref);

        // Direct (top-level) def-use maps.
        let mut var_def = vec![None; module.var_count()];
        let mut var_uses: Vec<Vec<StmtId>> = vec![Vec::new(); module.var_count()];
        let mut use_buf = Vec::new();
        for (sid, stmt) in module.stmts() {
            if let Some(d) = stmt.def() {
                var_def[d.index()] = Some(sid);
            }
            use_buf.clear();
            stmt.uses_into(&mut use_buf);
            for &u in &use_buf {
                var_uses[u.index()].push(sid);
            }
        }

        let mut svfg = Svfg {
            nodes: Vec::new(),
            index: HashMap::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            var_def,
            var_uses,
            ann,
            modref,
            thread_marks: HashSet::new(),
            stats: SvfgStats::default(),
        };

        for func in module.funcs() {
            if !func.is_external {
                svfg.rename_function(module, pre, tm, func.id);
            }
        }

        svfg.stats.nodes = svfg.nodes.len();
        svfg.stats.edges = svfg.succs.iter().map(Vec::len).sum();
        svfg
    }

    // ---- queries ----------------------------------------------------------

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    /// Indirect def-use successors of `n`, with the flowing object.
    pub fn succs(&self, n: NodeId) -> &[(NodeId, MemId)] {
        &self.succs[n.index()]
    }

    /// Indirect def-use predecessors of `n`.
    pub fn preds(&self, n: NodeId) -> &[(NodeId, MemId)] {
        &self.preds[n.index()]
    }

    /// The node of a statement, if it participates in memory flow.
    pub fn stmt_node(&self, s: StmtId) -> Option<NodeId> {
        self.index.get(&NodeKind::Stmt(s)).copied()
    }

    /// Looks up a node by kind.
    pub fn lookup(&self, kind: NodeKind) -> Option<NodeId> {
        self.index.get(&kind).copied()
    }

    /// The defining statement of a top-level variable (None for parameters).
    pub fn var_def(&self, v: VarId) -> Option<StmtId> {
        self.var_def[v.index()]
    }

    /// The statements using a top-level variable.
    pub fn var_uses(&self, v: VarId) -> &[StmtId] {
        &self.var_uses[v.index()]
    }

    /// The mu/chi annotations the graph was built from.
    pub fn annotations(&self) -> &Annotations {
        &self.ann
    }

    /// The mod/ref summaries the graph was built from.
    pub fn modref(&self) -> &ModRef {
        &self.modref
    }

    /// Whether a def-use path for `obj` exists from statement `from` to
    /// statement `to` (following `obj`-labeled edges through intermediate
    /// nodes). Used by tests and the interference analyses.
    pub fn reaches(&self, from: StmtId, to: StmtId, obj: MemId) -> bool {
        let (Some(from), Some(to)) = (self.stmt_node(from), self.stmt_node(to)) else {
            return false;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![from];
        seen[from.index()] = true;
        while let Some(n) = work.pop() {
            for &(succ, o) in self.succs(n) {
                if o != obj || seen[succ.index()] {
                    continue;
                }
                if succ == to {
                    return true;
                }
                // All nodes pass the chain along: intermediate nodes merge,
                // and stores keep weakly-merged values alive.
                seen[succ.index()] = true;
                work.push(succ);
            }
        }
        false
    }

    /// Appends the thread-aware def-use edges produced by the interference
    /// phases (§3.3), grouped so complete store×access products share a
    /// junction node.
    ///
    /// Edges are bucketed per object; within an object, stores are
    /// partitioned by their exact access set, so every class is a complete
    /// bipartite product routable through one
    /// [`NodeKind::ThreadJunction`] (k+m edges instead of k×m) with
    /// identical reachability — see [`Svfg::add_thread_group`]. `BTreeMap`
    /// grouping keeps the insertion order (and thus node ids) deterministic.
    pub fn insert_thread_edges_grouped(
        &mut self,
        edges: &[(StmtId, StmtId, MemId)],
    ) -> ThreadEdgeInsertion {
        use std::collections::BTreeSet;
        let mut by_obj: BTreeMap<MemId, Vec<(StmtId, StmtId)>> = BTreeMap::new();
        for &(s, a, o) in edges {
            by_obj.entry(o).or_default().push((s, a));
        }
        let mut outcome = ThreadEdgeInsertion::default();
        for (o, pairs) in by_obj {
            let mut access_sets: BTreeMap<StmtId, BTreeSet<StmtId>> = BTreeMap::new();
            for &(s, a) in &pairs {
                access_sets.entry(s).or_default().insert(a);
            }
            let mut classes: BTreeMap<Vec<StmtId>, Vec<StmtId>> = BTreeMap::new();
            for (s, accs) in access_sets {
                let key: Vec<StmtId> = accs.into_iter().collect();
                classes.entry(key).or_default().push(s);
            }
            for (accesses, stores) in classes {
                outcome.absorb(self.add_thread_group(&stores, &accesses, o));
            }
        }
        outcome
    }

    /// Appends a group of thread-aware def-use flows for one object: every
    /// store interferes with every access. Uses direct edges for small
    /// groups and a [`NodeKind::ThreadJunction`] above the fan-in threshold.
    pub fn add_thread_group(
        &mut self,
        stores: &[StmtId],
        accesses: &[StmtId],
        obj: MemId,
    ) -> ThreadEdgeInsertion {
        const DIRECT_LIMIT: usize = 64;
        let mut outcome = ThreadEdgeInsertion {
            classes: 1,
            ..ThreadEdgeInsertion::default()
        };
        if stores.len() * accesses.len() <= DIRECT_LIMIT {
            for &s in stores {
                for &a in accesses {
                    if s != a && self.add_thread_edge(s, a, obj) {
                        outcome.edges_added += 1;
                    }
                }
            }
            return outcome;
        }
        let nodes_before = self.nodes.len();
        let junction = self.node(NodeKind::ThreadJunction { obj });
        outcome.junctions = self.nodes.len() - nodes_before;
        for &s in stores {
            let n = self.node(NodeKind::Stmt(s));
            self.add_edge(n, junction, obj);
            self.thread_marks.insert((n, junction));
            outcome.edges_added += 1;
        }
        for &a in accesses {
            let n = self.node(NodeKind::Stmt(a));
            self.add_edge(junction, n, obj);
            self.thread_marks.insert((junction, n));
            outcome.edges_added += 1;
        }
        self.stats.thread_edges += stores.len() + accesses.len();
        self.stats.edges += stores.len() + accesses.len();
        outcome
    }

    /// Appends a thread-aware def-use edge (§3.3): a store interfering with
    /// a load or store in a parallel thread. Returns `true` if the edge is
    /// new.
    pub fn add_thread_edge(&mut self, from: StmtId, to: StmtId, obj: MemId) -> bool {
        let f = self.node(NodeKind::Stmt(from));
        let t = self.node(NodeKind::Stmt(to));
        if self.succs[f.index()]
            .iter()
            .any(|&(n, o)| n == t && o == obj)
        {
            return false;
        }
        self.add_edge(f, t, obj);
        self.thread_marks.insert((f, t));
        self.stats.thread_edges += 1;
        self.stats.edges += 1;
        true
    }

    /// Whether the `from → to` edge was appended by the thread
    /// interference phases (as opposed to intra-thread memory SSA
    /// def-use). Junction-routed flows mark both the store→junction and
    /// junction→access halves.
    pub fn is_thread_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.thread_marks.contains(&(from, to))
    }

    // ---- construction -----------------------------------------------------

    fn node(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.index.get(&kind) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many SVFG nodes"));
        self.nodes.push(kind);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.index.insert(kind, id);
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, obj: MemId) {
        if self.succs[from.index()]
            .iter()
            .any(|&(n, o)| n == to && o == obj)
        {
            return;
        }
        self.succs[from.index()].push((to, obj));
        self.preds[to.index()].push((from, obj));
    }

    fn rename_function(
        &mut self,
        module: &Module,
        pre: &PreAnalysis,
        tm: &ThreadModel,
        func: FuncId,
    ) {
        let f = module.func(func);
        let dom = DomTree::compute(f);
        let domain = self.modref.domain(func);
        if domain.is_empty() {
            return;
        }
        let cg = pre.call_graph();

        // Definition blocks per object (entry counts as a def via FormalIn).
        // BTreeMap: phi placement below allocates NodeIds in iteration
        // order, and node numbering must be deterministic (results are
        // compared bit-for-bit across drivers).
        let mut def_blocks: BTreeMap<MemId, Vec<BlockId>> = BTreeMap::new();
        for o in domain.iter() {
            def_blocks.insert(o, vec![BlockId::ENTRY]);
        }
        for (bid, block) in f.blocks() {
            for &sid in &block.stmts {
                for o in self.ann.chi(sid).iter() {
                    def_blocks.entry(o).or_default().push(bid);
                }
            }
        }

        // Place memory phis.
        let mut phis_at: HashMap<BlockId, Vec<(MemId, NodeId)>> = HashMap::new();
        for (&o, blocks) in &def_blocks {
            for b in dom.iterated_frontier(blocks) {
                let n = self.node(NodeKind::MemPhi {
                    func,
                    block: b,
                    obj: o,
                });
                phis_at.entry(b).or_default().push((o, n));
                self.stats.mem_phis += 1;
            }
        }

        // Dominator-tree children.
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
        for (bid, _) in f.blocks() {
            if let Some(idom) = dom.idom(bid) {
                children[idom.index()].push(bid);
            }
        }

        // Current version per object, with rollback on dom-tree unwinding.
        let mut cur: HashMap<MemId, NodeId> = HashMap::new();
        for o in domain.iter() {
            let n = self.node(NodeKind::FormalIn { func, obj: o });
            cur.insert(o, n);
        }

        enum Walk {
            Enter(BlockId),
            Leave(Vec<(MemId, NodeId)>),
        }
        let mut stack = vec![Walk::Enter(BlockId::ENTRY)];
        while let Some(step) = stack.pop() {
            match step {
                Walk::Leave(saved) => {
                    // Restore in reverse: a block that redefined the same
                    // object twice saved (original, intermediate) in that
                    // order, and the original must win.
                    for (o, n) in saved.into_iter().rev() {
                        cur.insert(o, n);
                    }
                }
                Walk::Enter(bid) => {
                    let mut saved: Vec<(MemId, NodeId)> = Vec::new();
                    let set_cur = |cur: &mut HashMap<MemId, NodeId>,
                                   saved: &mut Vec<(MemId, NodeId)>,
                                   o: MemId,
                                   n: NodeId| {
                        if let Some(old) = cur.insert(o, n) {
                            saved.push((o, old));
                        }
                    };

                    // Phis at block head define.
                    if let Some(phis) = phis_at.get(&bid) {
                        for &(o, n) in &phis.clone() {
                            set_cur(&mut cur, &mut saved, o, n);
                        }
                    }

                    let block = &module.func(func).blocks[bid];
                    for &sid in &block.stmts.clone() {
                        match &module.stmt(sid).kind {
                            StmtKind::Load { .. } => {
                                let snode = self.node(NodeKind::Stmt(sid));
                                for o in self.ann.mu(sid).clone().iter() {
                                    if let Some(&d) = cur.get(&o) {
                                        self.add_edge(d, snode, o);
                                    }
                                }
                            }
                            StmtKind::Store { .. } => {
                                let snode = self.node(NodeKind::Stmt(sid));
                                for o in self.ann.chi(sid).clone().iter() {
                                    if let Some(&d) = cur.get(&o) {
                                        self.add_edge(d, snode, o);
                                    }
                                    set_cur(&mut cur, &mut saved, o, snode);
                                }
                            }
                            StmtKind::Call { .. } | StmtKind::Fork { .. } => {
                                let callees: Vec<FuncId> = cg
                                    .targets(sid)
                                    .filter(|&c| !module.func(c).is_external)
                                    .collect();
                                // Flow current versions into each callee.
                                for &callee in &callees {
                                    for o in self.modref.domain(callee).iter() {
                                        if let Some(&d) = cur.get(&o) {
                                            let fin = self.node(NodeKind::FormalIn {
                                                func: callee,
                                                obj: o,
                                            });
                                            self.add_edge(d, fin, o);
                                        }
                                    }
                                }
                                // ActualOut per modified object (always weak:
                                // the incoming version merges in — for forks
                                // this is exactly the bypass of Fig. 6(c)).
                                for o in self.ann.chi(sid).clone().iter() {
                                    let ao = self.node(NodeKind::ActualOut { site: sid, obj: o });
                                    if let Some(&d) = cur.get(&o) {
                                        self.add_edge(d, ao, o);
                                    }
                                    for &callee in &callees {
                                        if self.modref.mods(callee).contains(o) {
                                            let fout = self.node(NodeKind::FormalOut {
                                                func: callee,
                                                obj: o,
                                            });
                                            self.add_edge(fout, ao, o);
                                        }
                                    }
                                    set_cur(&mut cur, &mut saved, o, ao);
                                }
                            }
                            StmtKind::Join { .. } => {
                                // Side effects of the joined routine become
                                // visible here (Fig. 6(d)). The incoming
                                // version is merged *weakly* only when some
                                // definition intervened between the fork and
                                // this join; otherwise the joined routine's
                                // FormalOut already subsumes it (its
                                // FormalIn passthrough), and keeping the
                                // fork-bypass value would defeat the strong
                                // updates the paper's Figure 1(c) relies on.
                                let entries = tm.joins_at(sid).to_vec();
                                let routines: Vec<FuncId> =
                                    entries.iter().map(|e| tm.info(e.thread).routine).collect();
                                for o in self.ann.chi(sid).clone().iter() {
                                    let ao = self.node(NodeKind::ActualOut { site: sid, obj: o });
                                    let cur_is_fork_out = !entries.is_empty()
                                        && entries.iter().all(|e| {
                                            tm.info(e.thread)
                                                .fork_site
                                                .and_then(|fk| {
                                                    self.lookup(NodeKind::ActualOut {
                                                        site: fk,
                                                        obj: o,
                                                    })
                                                })
                                                .is_some_and(|fork_ao| {
                                                    cur.get(&o) == Some(&fork_ao)
                                                })
                                        });
                                    if !cur_is_fork_out {
                                        if let Some(&d) = cur.get(&o) {
                                            self.add_edge(d, ao, o);
                                        }
                                    }
                                    for &r in &routines {
                                        if self.modref.mods(r).contains(o) {
                                            let fout =
                                                self.node(NodeKind::FormalOut { func: r, obj: o });
                                            self.add_edge(fout, ao, o);
                                        }
                                    }
                                    set_cur(&mut cur, &mut saved, o, ao);
                                }
                            }
                            _ => {}
                        }
                    }

                    // Returns feed FormalOut.
                    if matches!(block.term, Terminator::Ret(_)) {
                        for o in domain.iter() {
                            if let Some(&d) = cur.get(&o) {
                                let fout = self.node(NodeKind::FormalOut { func, obj: o });
                                self.add_edge(d, fout, o);
                            }
                        }
                    }

                    // Feed successor phis.
                    for succ in block.term.successors() {
                        if let Some(phis) = phis_at.get(&succ) {
                            for &(o, n) in &phis.clone() {
                                if let Some(&d) = cur.get(&o) {
                                    if d != n {
                                        self.add_edge(d, n, o);
                                    }
                                }
                            }
                        }
                    }

                    // Recurse into dominator children.
                    stack.push(Walk::Leave(saved));
                    for &c in children[bid.index()].iter().rev() {
                        stack.push(Walk::Enter(c));
                    }
                }
            }
        }
    }
}

/// A convenience bundle: everything the sparse solver needs about a module's
/// def-use structure.
#[derive(Debug)]
pub struct MemorySsa {
    /// The value-flow graph.
    pub svfg: Svfg,
}

impl MemorySsa {
    /// Builds memory SSA + SVFG in one step.
    pub fn build(module: &Module, pre: &PreAnalysis, tm: &ThreadModel) -> MemorySsa {
        MemorySsa {
            svfg: Svfg::build(module, pre, tm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;

    fn build(src: &str) -> (Module, PreAnalysis, Svfg) {
        let m = parse_module(src).unwrap();
        fsam_ir::verify::verify_module(&m).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let svfg = Svfg::build(&m, &pre, &tm);
        (m, pre, svfg)
    }

    fn stmt_where(m: &Module, f: &str, pred: impl Fn(&StmtKind) -> bool, skip: usize) -> StmtId {
        let fid = m.func_by_name(f).unwrap();
        m.stmts()
            .filter(|(_, s)| s.func == fid && pred(&s.kind))
            .nth(skip)
            .unwrap_or_else(|| panic!("no matching stmt in {f}"))
            .0
    }

    #[test]
    fn straight_line_store_load_chain() {
        let (m, pre, svfg) = build(
            r#"
            global g
            global v
            func main() {
            entry:
              p = &g
              q = &v
              store p, q     // s1: g = &v
              c = load p     // s2: c = g
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let s1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s2 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(svfg.reaches(s1, s2, g));
    }

    #[test]
    fn second_store_intercepts() {
        let (m, pre, svfg) = build(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p   // s1
              store p, p   // s2
              c = load p   // s3
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let s1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s2 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 1);
        let s3 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        // Chain goes s1 -> s2 -> s3; there is no direct s1 -> s3 edge.
        let n1 = svfg.stmt_node(s1).unwrap();
        let n3 = svfg.stmt_node(s3).unwrap();
        assert!(!svfg.succs(n1).iter().any(|&(n, _)| n == n3));
        assert!(svfg.reaches(s1, s2, g));
        assert!(svfg.reaches(s2, s3, g));
    }

    #[test]
    fn memphi_at_merge() {
        let (m, pre, svfg) = build(
            r#"
            global g
            func main() {
            entry:
              p = &g
              br ?, l, r
            l:
              store p, p    // def in left
              br merge
            r:
              store p, p    // def in right
              br merge
            merge:
              c = load p
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        assert!(svfg.stats.mem_phis >= 1);
        let s_l = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s_r = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 1);
        let load = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(svfg.reaches(s_l, load, g));
        assert!(svfg.reaches(s_r, load, g));
    }

    #[test]
    fn call_threading_through_callee() {
        let (m, pre, svfg) = build(
            r#"
            global g
            func reader() {
            entry:
              q = &g
              c = load q     // uses main's store through FormalIn
              ret
            }
            func main() {
            entry:
              p = &g
              store p, p     // s1
              call reader()
              c2 = load p    // s2: sees s1 (weak ActualOut merge)
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let s1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let callee_load = stmt_where(&m, "reader", |k| matches!(k, StmtKind::Load { .. }), 0);
        let s2 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(svfg.reaches(s1, callee_load, g), "def flows into callee");
        assert!(svfg.reaches(s1, s2, g), "def survives the (read-only) call");
    }

    #[test]
    fn callee_store_flows_back() {
        let (m, pre, svfg) = build(
            r#"
            global g
            func writer() {
            entry:
              q = &g
              store q, q    // sw
              ret
            }
            func main() {
            entry:
              p = &g
              call writer()
              c = load p    // sees sw through FormalOut -> ActualOut
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let sw = stmt_where(&m, "writer", |k| matches!(k, StmtKind::Store { .. }), 0);
        let load = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(svfg.reaches(sw, load, g));
    }

    /// Paper Figure 6: thread-oblivious def-use over Pseq with fork bypass
    /// and join side-effect edges.
    #[test]
    fn figure6_thread_oblivious_edges() {
        let (m, pre, svfg) = build(
            r#"
            global o
            func foo() {
            entry:
              q = &o
              store q, q      // s4: *q = ...
              c5 = load q     // s5: ... = *q
              ret
            }
            func main() {
            entry:
              p = &o
              store p, p      // s1: *p = ...
              t = fork foo()
              store p, p      // s2: *p = ...
              join t          // jn1
              c3 = load p     // s3: ... = *p
              ret
            }
        "#,
        );
        let o = pre.objects().base(m.global_by_name("o").unwrap());
        let s1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s2 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 1);
        let s3 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let s4 = stmt_where(&m, "foo", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s5 = stmt_where(&m, "foo", |k| matches!(k, StmtKind::Load { .. }), 0);

        // Fig 6(b): Pseq def-use.
        assert!(svfg.reaches(s1, s4, o), "s1 -> s4 (into forked routine)");
        assert!(svfg.reaches(s4, s5, o), "s4 -> s5 (inside foo)");
        assert!(svfg.reaches(s2, s3, o), "s2 -> s3");
        // Fig 6(c): fork bypass — s1 reaches s2 even though foo stores o.
        assert!(svfg.reaches(s1, s2, o), "fork-related bypass edge");
        // Fig 6(d): join side effect — s4 reaches s3.
        assert!(svfg.reaches(s4, s3, o), "join-related def-use edge");
    }

    /// Regression: a block that redefines the same object twice must not
    /// leak its first definition into a sibling branch (the dominator-walk
    /// rollback must restore the original version, not the intermediate).
    #[test]
    fn double_redefinition_does_not_leak_to_sibling() {
        let (m, pre, svfg) = build(
            r#"
            global g
            func main() {
            entry:
              p = &g
              br ?, l, r
            l:
              store p, p   // first def in l
              store p, p   // second def in l
              br merge
            r:
              c = load p   // must NOT see l's defs
              br merge
            merge:
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let s_l1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 0);
        let s_l2 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Store { .. }), 1);
        let load_r = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        assert!(
            !svfg.reaches(s_l1, load_r, g),
            "sibling-arm leak (first def)"
        );
        assert!(
            !svfg.reaches(s_l2, load_r, g),
            "sibling-arm leak (second def)"
        );
    }

    #[test]
    fn thread_edges_can_be_added() {
        let (m, pre, mut svfg) = build(
            r#"
            global g
            func worker() {
            entry:
              q = &g
              store q, q   // sw
              ret
            }
            func main() {
            entry:
              p = &g
              t = fork worker()
              c = load p   // sl
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let sw = stmt_where(&m, "worker", |k| matches!(k, StmtKind::Store { .. }), 0);
        let sl = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let before = svfg.stats.edges;
        assert!(svfg.add_thread_edge(sw, sl, g));
        assert!(!svfg.add_thread_edge(sw, sl, g), "deduplicated");
        assert_eq!(svfg.stats.edges, before + 1);
        assert_eq!(svfg.stats.thread_edges, 1);
        assert!(svfg.reaches(sw, sl, g));
        let (nw, nl) = (svfg.stmt_node(sw).unwrap(), svfg.stmt_node(sl).unwrap());
        assert!(svfg.is_thread_edge(nw, nl));
        assert!(!svfg.is_thread_edge(nl, nw), "marks are directed");
    }

    /// The worker/main skeleton used by the grouped-insertion tests: one
    /// shared global plus enough store/load statements to form products.
    fn interference_world() -> (Module, PreAnalysis, Svfg, MemId) {
        let (m, pre, svfg) = build(
            r#"
            global g
            func worker() {
            entry:
              q = &g
              store q, q   // sw0
              store q, q   // sw1
              ret
            }
            func main() {
            entry:
              p = &g
              t = fork worker()
              c0 = load p  // sl0
              c1 = load p  // sl1
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        (m, pre, svfg, g)
    }

    #[test]
    fn grouped_insertion_matches_naive_edges() {
        let (m, _, base, g) = interference_world();
        let sw0 = stmt_where(&m, "worker", |k| matches!(k, StmtKind::Store { .. }), 0);
        let sw1 = stmt_where(&m, "worker", |k| matches!(k, StmtKind::Store { .. }), 1);
        let sl0 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        let sl1 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 1);
        let edges = vec![(sw0, sl0, g), (sw0, sl1, g), (sw1, sl0, g), (sw1, sl1, g)];

        let mut naive = base.clone();
        for &(s, a, o) in &edges {
            naive.add_thread_edge(s, a, o);
        }
        let mut grouped = base;
        let outcome = grouped.insert_thread_edges_grouped(&edges);
        assert_eq!(
            outcome,
            ThreadEdgeInsertion {
                classes: 1,
                junctions: 0,
                edges_added: 4
            }
        );

        for &(s, a, o) in &edges {
            assert!(grouped.reaches(s, a, o), "grouped must keep {s:?} -> {a:?}");
            assert!(naive.reaches(s, a, o));
        }
        assert_eq!(grouped.stats.thread_edges, 4, "small product stays direct");
    }

    #[test]
    fn grouped_insertion_partitions_by_access_set() {
        let (m, _, mut svfg, g) = interference_world();
        // Synthetic statement ids: disconnected in the base graph, so any
        // reachability below comes from the inserted edges alone.
        let hi = m.stmt_count() as u32;
        let (sw0, sw1) = (StmtId::new(hi + 1), StmtId::new(hi + 2));
        let (sl0, sl1) = (StmtId::new(hi + 3), StmtId::new(hi + 4));
        // sw0 interferes only with sl0, sw1 only with sl1: two classes.
        svfg.insert_thread_edges_grouped(&[(sw0, sl0, g), (sw1, sl1, g)]);
        assert!(svfg.reaches(sw0, sl0, g));
        assert!(svfg.reaches(sw1, sl1, g));
        assert!(!svfg.reaches(sw0, sl1, g), "classes must not be merged");
        assert!(!svfg.reaches(sw1, sl0, g), "classes must not be merged");
    }

    #[test]
    fn grouped_insertion_uses_junction_for_large_products() {
        let (m, _, mut svfg, g) = interference_world();
        let sw0 = stmt_where(&m, "worker", |k| matches!(k, StmtKind::Store { .. }), 0);
        let sl0 = stmt_where(&m, "main", |k| matches!(k, StmtKind::Load { .. }), 0);
        // Synthesize a 9×9 product (> the direct-edge limit of 64). The
        // statement ids need not exist in the module: thread edges intern
        // their own `Stmt` nodes.
        let hi = m.stmt_count() as u32;
        let stores: Vec<StmtId> = (0..9)
            .map(|i| if i == 0 { sw0 } else { StmtId::new(hi + i) })
            .collect();
        let accesses: Vec<StmtId> = (0..9)
            .map(|i| {
                if i == 0 {
                    sl0
                } else {
                    StmtId::new(hi + 100 + i)
                }
            })
            .collect();
        let mut edges = Vec::new();
        for &s in &stores {
            for &a in &accesses {
                edges.push((s, a, g));
            }
        }
        let before = svfg.stats.edges;
        let outcome = svfg.insert_thread_edges_grouped(&edges);
        let junction = svfg
            .lookup(NodeKind::ThreadJunction { obj: g })
            .expect("large product must route through a junction");
        assert_eq!((outcome.classes, outcome.junctions), (1, 1));
        assert_eq!(outcome.edges_added, 18);
        assert_eq!(svfg.stats.edges - before, 18, "k+m edges, not k×m");
        // Both halves of the junction routing are marked as thread flow.
        let ns = svfg.stmt_node(sw0).unwrap();
        let na = svfg.stmt_node(sl0).unwrap();
        assert!(svfg.is_thread_edge(ns, junction));
        assert!(svfg.is_thread_edge(junction, na));
        for &s in &stores {
            for &a in &accesses {
                assert!(svfg.reaches(s, a, g));
            }
        }
    }

    #[test]
    fn direct_var_maps() {
        let (m, _, svfg) = build(
            r#"
            global g
            func main() {
            entry:
              p = &g
              q = p
              store q, p
              ret
            }
        "#,
        );
        let p = m.var_ids().find(|&v| m.var(v).name == "p").unwrap();
        let def = svfg.var_def(p).unwrap();
        assert!(matches!(m.stmt(def).kind, StmtKind::Addr { .. }));
        assert_eq!(svfg.var_uses(p).len(), 2, "q = p and store q, p");
    }
}

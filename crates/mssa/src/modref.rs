//! Interprocedural mod/ref summaries.
//!
//! For every function we compute the sets of abstract objects it may read
//! (*ref*) and write (*mod*), transitively through callees — and, because
//! the thread-oblivious def-use chains are built over the sequentialized
//! program `Pseq` (paper §3.2), also through fork sites (a fork behaves like
//! a call to the start routine in `Pseq`) and through the join sites
//! resolved by the thread model (a join makes the joined routine's side
//! effects visible, step 3 of §3.2).

use fsam_andersen::PreAnalysis;
use fsam_ir::{FuncId, Module, StmtKind};
use fsam_pts::PtsSet;
use fsam_threads::ThreadModel;

/// Per-function mod/ref sets.
#[derive(Clone, Debug)]
pub struct ModRef {
    mods: Vec<PtsSet>,
    refs: Vec<PtsSet>,
}

impl ModRef {
    /// Computes summaries to a fixpoint over the call graph (call edges,
    /// fork edges, and resolved join edges).
    pub fn compute(module: &Module, pre: &PreAnalysis, tm: &ThreadModel) -> ModRef {
        let n = module.func_count();
        let mut mods = vec![PtsSet::new(); n];
        let mut refs = vec![PtsSet::new(); n];
        let cg = pre.call_graph();

        // Local effects.
        for (_, stmt) in module.stmts() {
            match &stmt.kind {
                StmtKind::Load { ptr, .. } => {
                    refs[stmt.func.index()].union_in_place(pre.pt_var(*ptr));
                }
                StmtKind::Store { ptr, .. } => {
                    mods[stmt.func.index()].union_in_place(pre.pt_var(*ptr));
                }
                _ => {}
            }
        }

        // Summary edges: (from, to) means `from`'s summary flows into `to`.
        let mut edges: Vec<(FuncId, FuncId)> = Vec::new();
        for (sid, stmt) in module.stmts() {
            match &stmt.kind {
                StmtKind::Call { .. } | StmtKind::Fork { .. } => {
                    for callee in cg.targets(sid) {
                        edges.push((callee, stmt.func));
                    }
                }
                StmtKind::Join { .. } => {
                    for entry in tm.joins_at(sid) {
                        let routine = tm.info(entry.thread).routine;
                        edges.push((routine, stmt.func));
                    }
                }
                _ => {}
            }
        }

        // Fixpoint (the graph is small; simple iteration suffices).
        loop {
            let mut changed = false;
            for &(from, to) in &edges {
                if from == to {
                    continue;
                }
                let (fi, ti) = (from.index(), to.index());
                let from_mods = mods[fi].clone();
                let from_refs = refs[fi].clone();
                changed |= mods[ti].union_in_place(&from_mods);
                changed |= refs[ti].union_in_place(&from_refs);
            }
            if !changed {
                break;
            }
        }

        ModRef { mods, refs }
    }

    /// Objects `f` may write (including callees and forked/joined routines).
    pub fn mods(&self, f: FuncId) -> &PtsSet {
        &self.mods[f.index()]
    }

    /// Objects `f` may read.
    pub fn refs(&self, f: FuncId) -> &PtsSet {
        &self.refs[f.index()]
    }

    /// `mods(f) ∪ refs(f)` — the renaming domain of `f`.
    pub fn domain(&self, f: FuncId) -> PtsSet {
        let mut d = self.mods[f.index()].clone();
        d.union_in_place(&self.refs[f.index()]);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;

    fn compute(src: &str) -> (Module, PreAnalysis, ModRef) {
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let mr = ModRef::compute(&m, &pre, &tm);
        (m, pre, mr)
    }

    fn obj_in(pre: &PreAnalysis, m: &Module, set: &PtsSet, name: &str) -> bool {
        set.iter().any(|o| pre.objects().display_name(m, o) == name)
    }

    #[test]
    fn local_effects() {
        let (m, pre, mr) = compute(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
        "#,
        );
        let main = m.entry().unwrap();
        assert!(obj_in(&pre, &m, mr.mods(main), "g"));
        assert!(obj_in(&pre, &m, mr.refs(main), "g"));
    }

    #[test]
    fn transitive_through_calls() {
        let (m, pre, mr) = compute(
            r#"
            global g
            func writer(p) {
            entry:
              store p, p
              ret
            }
            func caller() {
            entry:
              q = &g
              call writer(q)
              ret
            }
            func main() {
            entry:
              call caller()
              ret
            }
        "#,
        );
        let main = m.entry().unwrap();
        let caller = m.func_by_name("caller").unwrap();
        let writer = m.func_by_name("writer").unwrap();
        assert!(obj_in(&pre, &m, mr.mods(writer), "g"));
        assert!(obj_in(&pre, &m, mr.mods(caller), "g"));
        assert!(obj_in(&pre, &m, mr.mods(main), "g"));
        assert!(!obj_in(&pre, &m, mr.refs(main), "g"));
    }

    #[test]
    fn fork_contributes_to_spawner() {
        let (m, pre, mr) = compute(
            r#"
            global g
            func worker() {
            entry:
              p = &g
              store p, p
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              ret
            }
        "#,
        );
        let main = m.entry().unwrap();
        assert!(
            obj_in(&pre, &m, mr.mods(main), "g"),
            "fork side effects in Pseq"
        );
    }

    #[test]
    fn join_contributes_to_joining_function() {
        // Fork in one helper, join in another: the joiner's summary must
        // carry the thread's side effects.
        let (m, pre, mr) = compute(
            r#"
            global g
            global array slot
            func worker() {
            entry:
              p = &g
              store p, p
              ret
            }
            func forker() {
            entry:
              s = &slot
              t = fork worker()
              store s, t
              ret
            }
            func joiner() {
            entry:
              s = &slot
              h = load s
              join h
              ret
            }
            func main() {
            entry:
              call forker()
              call joiner()
              ret
            }
        "#,
        );
        let joiner = m.func_by_name("joiner").unwrap();
        // Note: worker is forked by main (through forker) — the thread model
        // attributes the join to the spawner thread; either way, joiner's
        // summary must include worker's mods if the join resolved.
        let resolved = m
            .stmts()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .count();
        assert_eq!(resolved, 1);
        // The handle flows through an array; the pre-analysis still finds it.
        assert!(
            obj_in(&pre, &m, mr.mods(joiner), "g") || {
                // If the model rejected the join (multi-fork heuristics), mods
                // won't include g — but this program has a straight-line fork.
                false
            }
        );
    }

    #[test]
    fn domain_is_union() {
        let (m, _, mr) = compute(
            r#"
            global a
            global b
            func main() {
            entry:
              p = &a
              q = &b
              store p, q
              c = load q
              ret
            }
        "#,
        );
        let main = m.entry().unwrap();
        let d = mr.domain(main);
        assert!(mr.mods(main).is_subset(&d));
        assert!(mr.refs(main).is_subset(&d));
        assert_eq!(d.len(), 2);
    }
}

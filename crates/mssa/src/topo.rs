//! Tarjan SCC condensation and topological worklist priorities.
//!
//! Sparse solvers converge fastest when a fact crosses each acyclic region
//! of the def-use graph once per round instead of rippling in pop order
//! (Hardekopf–Lin; also the priority scheme of the SSI/sparse-dataflow
//! construction). [`condense`] computes the strongly connected components of
//! an arbitrary dense graph and assigns every vertex the topological
//! position of its component; a min-priority worklist keyed on that index
//! then processes definitions before their transitive uses whenever the
//! graph allows it.
//!
//! [`Svfg::solve_order`](crate::Svfg::solve_order) applies this to the
//! *combined* sparse graph the solver actually iterates: SVFG memory edges,
//! top-level def-use chains, and call-site argument/return bindings.

use fsam_ir::callgraph::CallGraph;
use fsam_ir::{Module, StmtKind, Terminator};

use crate::svfg::{NodeKind, Svfg};

/// The SCC condensation of a graph, with topological priorities.
#[derive(Clone, Debug)]
pub struct TopoOrder {
    /// Component id per vertex (assigned in *reverse* topological order —
    /// Tarjan completes a component only after everything it reaches).
    pub comp: Vec<u32>,
    /// Topological priority per vertex: if an edge `u → v` crosses
    /// components, `priority[u] < priority[v]`. Sources come first.
    pub priority: Vec<u32>,
    /// Topological *depth* per vertex: sources sit at level 0 and every
    /// cross-component edge strictly increases the level. Unlike
    /// `priority` — a total order with one distinct value per component —
    /// independent components share a level, which is exactly what a
    /// level-synchronous parallel schedule runs concurrently: two vertices
    /// on the same level are never connected by a def-use path outside
    /// their own component.
    pub level: Vec<u32>,
    /// Number of components.
    pub comp_count: usize,
    /// Number of distinct levels (`max(level) + 1`, 0 for the empty graph).
    pub level_count: usize,
}

impl TopoOrder {
    /// How many vertices sit at each level — the width profile a parallel
    /// schedule has to work with (level `l`'s width bounds its concurrency).
    pub fn level_widths(&self) -> Vec<u32> {
        let mut widths = vec![0u32; self.level_count];
        for &l in &self.level {
            widths[l as usize] += 1;
        }
        widths
    }
}

/// Condenses the graph `adj` (dense vertex ids, successor lists) into SCCs
/// and derives topological priorities. Iterative Tarjan — safe on deep
/// chains.
pub fn condense(adj: &[Vec<u32>]) -> TopoOrder {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![u32::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut comps = 0u32;
    // DFS frame: (vertex, next successor index).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        index[root as usize] = next;
        low[root as usize] = next;
        next += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, 0));

        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            let vu = v as usize;
            if let Some(&w) = adj[vu].get(*ci) {
                *ci += 1;
                let wu = w as usize;
                if index[wu] == u32::MAX {
                    index[wu] = next;
                    low[wu] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                if low[vu] == index[vu] {
                    loop {
                        let x = stack.pop().expect("tarjan stack underflow");
                        on_stack[x as usize] = false;
                        comp[x as usize] = comps;
                        if x == v {
                            break;
                        }
                    }
                    comps += 1;
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p as usize] = low[p as usize].min(low[vu]);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order; invert so that
    // sources get the smallest priority.
    let priority: Vec<u32> = comp.iter().map(|&c| comps - 1 - c).collect();

    // Longest-path depth of each component. Relaxing out-edges in ascending
    // priority order sees every in-edge of a component before any of its
    // own vertices are visited, so one pass suffices.
    let mut comp_level = vec![0u32; comps as usize];
    let mut by_prio: Vec<u32> = (0..n as u32).collect();
    by_prio.sort_unstable_by_key(|&v| priority[v as usize]);
    for &u in &by_prio {
        let cu = comp[u as usize] as usize;
        for &v in &adj[u as usize] {
            let cv = comp[v as usize] as usize;
            if cu != cv {
                comp_level[cv] = comp_level[cv].max(comp_level[cu] + 1);
            }
        }
    }
    let level_count = comp_level
        .iter()
        .map(|&l| l as usize + 1)
        .max()
        .unwrap_or(0);
    let level = comp.iter().map(|&c| comp_level[c as usize]).collect();

    TopoOrder {
        comp,
        priority,
        level,
        comp_count: comps as usize,
        level_count,
    }
}

/// Topological priorities for the sparse solver's combined item space:
/// one priority per statement and one per SVFG node, on a shared scale.
#[derive(Clone, Debug)]
pub struct SolveOrder {
    /// Priority per [`StmtId`](fsam_ir::StmtId) index.
    pub stmt_prio: Vec<u32>,
    /// Priority per SVFG [`NodeId`](crate::NodeId) index.
    pub node_prio: Vec<u32>,
    /// Topological depth per statement (see [`TopoOrder::level`]).
    pub stmt_level: Vec<u32>,
    /// Topological depth per SVFG node.
    pub node_level: Vec<u32>,
    /// Condensed component id per statement.
    pub stmt_comp: Vec<u32>,
    /// Condensed component id per SVFG node.
    pub node_comp: Vec<u32>,
    /// Number of condensed components.
    pub comp_count: usize,
    /// Number of distinct levels.
    pub level_count: usize,
}

impl Svfg {
    /// Computes topological priorities over the combined sparse graph the
    /// solver propagates along: the SVFG's memory def-use edges, the
    /// top-level variable def-use chains, and the call-site argument/return
    /// bindings resolved by `cg`.
    ///
    /// Statement-kind SVFG nodes share their statement's vertex, so the two
    /// priority tables live on one scale and a single worklist can order
    /// variable and memory items against each other.
    pub fn solve_order(&self, module: &Module, cg: &CallGraph) -> SolveOrder {
        let s_count = module.stmt_count();
        let n_count = self.node_count();
        // Vertex for an SVFG node: its statement's vertex when it is an
        // in-module statement node, otherwise a dedicated vertex. (Thread
        // edges may intern `Stmt` nodes with synthetic out-of-module ids;
        // those only exist in tests but must not panic here.)
        let vx_node = |i: usize| -> u32 {
            match self.kind(crate::NodeId::from_index(i)) {
                NodeKind::Stmt(s) if s.index() < s_count => s.raw(),
                _ => (s_count + i) as u32,
            }
        };

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); s_count + n_count];

        // SVFG memory edges.
        for n in self.node_ids() {
            let from = vx_node(n.index());
            for &(succ, _) in self.succs(n) {
                let to = vx_node(succ.index());
                if from != to {
                    adj[from as usize].push(to);
                }
            }
        }
        // Top-level def-use chains.
        for v in module.var_ids() {
            if let Some(d) = self.var_def(v) {
                for &u in self.var_uses(v) {
                    if u != d {
                        adj[d.index()].push(u.raw());
                    }
                }
            }
        }
        // Call bindings: a site feeds its callees' parameter uses; return
        // definitions feed the site (which defines its `dst`).
        for (sid, stmt) in module.stmts() {
            let (is_fork, dst) = match &stmt.kind {
                StmtKind::Call { dst, .. } => (false, *dst),
                StmtKind::Fork { .. } => (true, None),
                _ => continue,
            };
            for callee in cg.targets(sid) {
                let f = module.func(callee);
                let params: &[fsam_ir::VarId] = if is_fork {
                    f.params.get(..1).unwrap_or(&[])
                } else {
                    &f.params
                };
                for &p in params {
                    for &u in self.var_uses(p) {
                        if u != sid {
                            adj[sid.index()].push(u.raw());
                        }
                    }
                }
                if dst.is_some() && !f.is_external {
                    for (_, b) in f.blocks() {
                        if let Terminator::Ret(Some(r)) = b.term {
                            if let Some(dr) = self.var_def(r) {
                                if dr != sid {
                                    adj[dr.index()].push(sid.raw());
                                }
                            }
                        }
                    }
                }
            }
        }

        let order = condense(&adj);
        let stmt_prio = order.priority[..s_count].to_vec();
        let node_prio = (0..n_count)
            .map(|i| order.priority[vx_node(i) as usize])
            .collect();
        let stmt_level = order.level[..s_count].to_vec();
        let node_level = (0..n_count)
            .map(|i| order.level[vx_node(i) as usize])
            .collect();
        let stmt_comp = order.comp[..s_count].to_vec();
        let node_comp = (0..n_count)
            .map(|i| order.comp[vx_node(i) as usize])
            .collect();
        SolveOrder {
            stmt_prio,
            node_prio,
            stmt_level,
            node_level,
            stmt_comp,
            node_comp,
            comp_count: order.comp_count,
            level_count: order.level_count,
        }
    }
}

/// Checks the defining property of [`TopoOrder::priority`] on `adj`:
/// cross-component edges strictly increase priority. Used by tests.
pub fn priorities_are_topological(adj: &[Vec<u32>], order: &TopoOrder) -> bool {
    adj.iter().enumerate().all(|(u, succs)| {
        succs.iter().all(|&v| {
            let (cu, cv) = (order.comp[u], order.comp[v as usize]);
            cu == cv || order.priority[u] < order.priority[v as usize]
        })
    })
}

/// Checks the defining property of [`TopoOrder::level`] on `adj`:
/// cross-component edges strictly increase level, and vertices of one
/// component share one level. Used by tests.
pub fn levels_are_topological(adj: &[Vec<u32>], order: &TopoOrder) -> bool {
    let mut comp_level = vec![u32::MAX; order.comp_count];
    for (v, &c) in order.comp.iter().enumerate() {
        let slot = &mut comp_level[c as usize];
        if *slot == u32::MAX {
            *slot = order.level[v];
        } else if *slot != order.level[v] {
            return false;
        }
    }
    adj.iter().enumerate().all(|(u, succs)| {
        succs.iter().all(|&v| {
            let (cu, cv) = (order.comp[u], order.comp[v as usize]);
            cu == cv || order.level[u] < order.level[v as usize]
        })
    })
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;

    #[test]
    fn chain_gets_increasing_priorities() {
        // 0 -> 1 -> 2 -> 3
        let adj = vec![vec![1], vec![2], vec![3], vec![]];
        let order = condense(&adj);
        assert_eq!(order.comp_count, 4);
        assert!(priorities_are_topological(&adj, &order));
        assert!(order.priority[0] < order.priority[1]);
        assert!(order.priority[2] < order.priority[3]);
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        // 0 -> (1 <-> 2) -> 3
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let order = condense(&adj);
        assert_eq!(order.comp_count, 3);
        assert_eq!(order.comp[1], order.comp[2]);
        assert!(priorities_are_topological(&adj, &order));
    }

    #[test]
    fn disconnected_vertices_are_covered() {
        let adj = vec![vec![], vec![], vec![0]];
        let order = condense(&adj);
        assert_eq!(order.comp_count, 3);
        assert_eq!(order.priority.len(), 3);
        assert!(priorities_are_topological(&adj, &order));
    }

    #[test]
    fn self_loop_is_a_single_component() {
        let adj = vec![vec![0, 1], vec![]];
        let order = condense(&adj);
        assert_eq!(order.comp_count, 2);
        assert!(priorities_are_topological(&adj, &order));
    }

    #[test]
    fn chain_levels_count_depth() {
        // 0 -> 1 -> 2 -> 3: a pure chain has no same-level concurrency.
        let adj = vec![vec![1], vec![2], vec![3], vec![]];
        let order = condense(&adj);
        assert_eq!(order.level, vec![0, 1, 2, 3]);
        assert_eq!(order.level_count, 4);
        assert!(levels_are_topological(&adj, &order));
        assert_eq!(order.level_widths(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn diamond_branches_share_a_level() {
        // 0 -> {1, 2} -> 3: the two branches are independent, so unlike
        // `priority` (a total order) they sit on the same level.
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let order = condense(&adj);
        assert_eq!(order.comp_count, 4);
        assert_ne!(order.priority[1], order.priority[2]);
        assert_eq!(order.level[1], order.level[2]);
        assert_eq!(order.level, vec![0, 1, 1, 2]);
        assert_eq!(order.level_count, 3);
        assert_eq!(order.level_widths(), vec![1, 2, 1]);
        assert!(levels_are_topological(&adj, &order));
    }

    #[test]
    fn cycle_members_share_comp_and_level() {
        // 0 -> (1 <-> 2) -> 3: the SCC collapses to one level slot.
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let order = condense(&adj);
        assert_eq!(order.level, vec![0, 1, 1, 2]);
        assert_eq!(order.level_count, 3);
        assert!(levels_are_topological(&adj, &order));
    }

    #[test]
    fn empty_graph_has_no_levels() {
        let order = condense(&[]);
        assert_eq!(order.level_count, 0);
        assert!(order.level_widths().is_empty());
    }

    #[test]
    fn dag_levels_respect_all_edges_randomized() {
        use fsam_ir::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0x70_0902);
        for _ in 0..20 {
            let n = rng.gen_range(2usize..40);
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            let edges = rng.gen_range(0usize..(3 * n));
            for _ in 0..edges {
                let a = rng.gen_range(0u32..n as u32);
                let b = rng.gen_range(0u32..n as u32);
                adj[a as usize].push(b);
            }
            let order = condense(&adj);
            assert!(levels_are_topological(&adj, &order));
            assert_eq!(
                order.level_widths().iter().sum::<u32>() as usize,
                order.level.len()
            );
        }
    }

    #[test]
    fn dag_priorities_respect_all_edges_randomized() {
        use fsam_ir::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0x70_0901);
        for _ in 0..20 {
            let n = rng.gen_range(2usize..40);
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            let edges = rng.gen_range(0usize..(3 * n));
            for _ in 0..edges {
                let a = rng.gen_range(0u32..n as u32);
                let b = rng.gen_range(0u32..n as u32);
                adj[a as usize].push(b);
            }
            let order = condense(&adj);
            assert!(priorities_are_topological(&adj, &order));
            let seen: BTreeSet<u32> = order.comp.iter().copied().collect();
            assert_eq!(seen.len(), order.comp_count);
        }
    }
}

//! Per-statement `mu`/`chi` annotation (paper §2.2, Figure 4).
//!
//! Using the pre-analysis points-to sets, each load is annotated with
//! `mu(o)` for every object it may read, each store with `o = chi(o)` for
//! every object it may write, and each call site with the mu/chi of its
//! callees' mod/ref summaries. Fork sites are annotated like calls to the
//! start routine (the `Pseq` view of §3.2); join sites get a `chi` over the
//! joined routine's mods, making the thread's side effects visible at the
//! join (step 3 of §3.2).

use std::collections::HashMap;

use fsam_andersen::PreAnalysis;
use fsam_ir::{Module, StmtId, StmtKind};
use fsam_pts::PtsSet;
use fsam_threads::ThreadModel;

use crate::modref::ModRef;

/// The mu/chi maps for a module.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    mu: HashMap<StmtId, PtsSet>,
    chi: HashMap<StmtId, PtsSet>,
}

impl Annotations {
    /// Computes mu/chi for every statement.
    pub fn compute(
        module: &Module,
        pre: &PreAnalysis,
        tm: &ThreadModel,
        mr: &ModRef,
    ) -> Annotations {
        let mut mu: HashMap<StmtId, PtsSet> = HashMap::new();
        let mut chi: HashMap<StmtId, PtsSet> = HashMap::new();
        let cg = pre.call_graph();

        for (sid, stmt) in module.stmts() {
            match &stmt.kind {
                StmtKind::Load { ptr, .. } => {
                    let pts = pre.pt_var(*ptr).clone();
                    if !pts.is_empty() {
                        mu.insert(sid, pts);
                    }
                }
                StmtKind::Store { ptr, .. } => {
                    let pts = pre.pt_var(*ptr).clone();
                    if !pts.is_empty() {
                        chi.insert(sid, pts);
                    }
                }
                StmtKind::Call { .. } | StmtKind::Fork { .. } => {
                    let mut m = PtsSet::new();
                    let mut c = PtsSet::new();
                    for callee in cg.targets(sid) {
                        m.union_in_place(mr.refs(callee));
                        c.union_in_place(mr.mods(callee));
                    }
                    if !m.is_empty() {
                        mu.insert(sid, m);
                    }
                    if !c.is_empty() {
                        chi.insert(sid, c);
                    }
                }
                StmtKind::Join { .. } => {
                    let mut c = PtsSet::new();
                    for entry in tm.joins_at(sid) {
                        c.union_in_place(mr.mods(tm.info(entry.thread).routine));
                    }
                    if !c.is_empty() {
                        chi.insert(sid, c);
                    }
                }
                _ => {}
            }
        }

        Annotations { mu, chi }
    }

    /// Objects statement `s` may use indirectly (its `mu` set).
    pub fn mu(&self, s: StmtId) -> &PtsSet {
        static EMPTY: PtsSet = PtsSet::new();
        self.mu.get(&s).unwrap_or(&EMPTY)
    }

    /// Objects statement `s` may define indirectly (its `chi` set).
    pub fn chi(&self, s: StmtId) -> &PtsSet {
        static EMPTY: PtsSet = PtsSet::new();
        self.chi.get(&s).unwrap_or(&EMPTY)
    }

    /// Number of annotated statements (for statistics).
    pub fn annotated_count(&self) -> usize {
        self.mu.len() + self.chi.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::icfg::Icfg;
    use fsam_ir::parse::parse_module;

    fn annotate(src: &str) -> (Module, PreAnalysis, Annotations) {
        let m = parse_module(src).unwrap();
        let pre = PreAnalysis::run(&m);
        let icfg = Icfg::build(&m, pre.call_graph());
        let tm = ThreadModel::build(&m, &pre, &icfg);
        let mr = ModRef::compute(&m, &pre, &tm);
        let ann = Annotations::compute(&m, &pre, &tm, &mr);
        (m, pre, ann)
    }

    #[test]
    fn loads_get_mu_stores_get_chi() {
        let (m, pre, ann) = annotate(
            r#"
            global g
            func main() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
        "#,
        );
        let store = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Store { .. }))
            .unwrap()
            .0;
        let load = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Load { .. }))
            .unwrap()
            .0;
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        assert!(ann.chi(store).contains(g));
        assert!(ann.mu(store).is_empty());
        assert!(ann.mu(load).contains(g));
        assert!(ann.chi(load).is_empty());
    }

    #[test]
    fn callsites_carry_callee_summaries() {
        let (m, pre, ann) = annotate(
            r#"
            global g
            func w() {
            entry:
              p = &g
              store p, p
              ret
            }
            func main() {
            entry:
              call w()
              c2 = call load2()
              ret
            }
            func load2() {
            entry:
              q = &g
              c = load q
              ret c
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let main = m.entry().unwrap();
        let calls: Vec<StmtId> = m
            .stmts()
            .filter(|(_, s)| s.func == main && matches!(s.kind, StmtKind::Call { .. }))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(ann.chi(calls[0]).contains(g), "call w() mods g");
        assert!(ann.mu(calls[1]).contains(g), "call load2() refs g");
        assert!(!ann.chi(calls[1]).contains(g));
    }

    #[test]
    fn fork_and_join_sites_are_annotated() {
        let (m, pre, ann) = annotate(
            r#"
            global g
            func worker() {
            entry:
              p = &g
              store p, p
              c = load p
              ret
            }
            func main() {
            entry:
              t = fork worker()
              join t
              ret
            }
        "#,
        );
        let g = pre.objects().base(m.global_by_name("g").unwrap());
        let fork = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Fork { .. }))
            .unwrap()
            .0;
        let join = m
            .stmts()
            .find(|(_, s)| matches!(s.kind, StmtKind::Join { .. }))
            .unwrap()
            .0;
        assert!(
            ann.chi(fork).contains(g),
            "fork behaves like a call in Pseq"
        );
        assert!(ann.mu(fork).contains(g));
        assert!(
            ann.chi(join).contains(g),
            "join exposes thread side effects"
        );
    }
}

//! # fsam-mssa — memory SSA and the sparse value-flow graph
//!
//! Builds the *thread-oblivious* def-use chains of the paper's §3.2: mu/chi
//! annotation from the pre-analysis (§2.2, Figure 4), interprocedural
//! mod/ref summaries, SSA renaming of address-taken objects, and the sparse
//! value-flow graph (SVFG) over the sequentialized program `Pseq` — with
//! fork sites treated as weak calls (steps 1–2, Figure 6(c)) and resolved
//! join sites exposing the joined thread's side effects (step 3,
//! Figure 6(d)). Thread-aware edges (§3.3) are appended afterwards via
//! [`Svfg::add_thread_edge`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod modref;
pub mod svfg;
pub mod topo;

pub use annotate::Annotations;
pub use modref::ModRef;
pub use svfg::{MemorySsa, NodeId, NodeKind, Svfg, SvfgStats, ThreadEdgeInsertion};
pub use topo::{condense, SolveOrder, TopoOrder};

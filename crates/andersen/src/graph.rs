//! The constraint graph: nodes, union-find representatives and copy edges.
//!
//! Nodes cover both top-level variables and abstract memory objects; the
//! solver ([`crate::solve`]) merges cycle members through the union-find and
//! propagates points-to sets along copy edges in topological order (wave
//! propagation, Pereira & Berlin, the paper's pre-analysis implementation
//! choice in §4.2).

use fsam_ir::VarId;
use fsam_pts::{MemId, PtsSet};

/// A constraint-graph node: a top-level variable or a memory object.
///
/// Encoded densely: variables first, then memory objects (which can grow as
/// field objects are interned).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cg{}", self.0)
    }
}

/// The constraint graph state shared by the solver passes.
#[derive(Debug)]
pub struct ConstraintGraph {
    var_count: u32,
    /// Union-find parent; `rep[i] == i` for representatives.
    rep: Vec<u32>,
    /// Copy successors, stored at representatives.
    succs: Vec<Vec<u32>>,
    /// Points-to sets, stored at representatives.
    pts: Vec<PtsSet>,
    /// Nodes merged through a positive-weight cycle: gep constraints whose
    /// pointer lands here collapse their base objects.
    pwc: Vec<bool>,
}

impl ConstraintGraph {
    /// Creates a graph for `var_count` variables and `mem_count` initial
    /// memory objects.
    pub fn new(var_count: u32, mem_count: u32) -> Self {
        let n = (var_count + mem_count) as usize;
        Self {
            var_count,
            rep: (0..n as u32).collect(),
            succs: vec![Vec::new(); n],
            pts: vec![PtsSet::new(); n],
            pwc: vec![false; n],
        }
    }

    /// The node of a top-level variable.
    pub fn var_node(&self, v: VarId) -> NodeId {
        NodeId(v.raw())
    }

    /// The node of a memory object, growing the graph if the object was
    /// interned after construction.
    pub fn mem_node(&mut self, m: MemId) -> NodeId {
        let idx = self.var_count + m.raw();
        while self.rep.len() <= idx as usize {
            let i = self.rep.len() as u32;
            self.rep.push(i);
            self.succs.push(Vec::new());
            self.pts.push(PtsSet::new());
            self.pwc.push(false);
        }
        NodeId(idx)
    }

    /// The memory object of a node, if it is a memory node.
    pub fn node_mem(&self, n: NodeId) -> Option<MemId> {
        (n.0 >= self.var_count).then(|| MemId::new(n.0 - self.var_count))
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.rep.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.rep.is_empty()
    }

    /// Representative of `n` (path-halving union-find).
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut x = n.0;
        while self.rep[x as usize] != x {
            let parent = self.rep[x as usize];
            self.rep[x as usize] = self.rep[parent as usize];
            x = self.rep[x as usize];
        }
        NodeId(x)
    }

    /// Representative without path compression (for immutable access).
    pub fn find_imm(&self, n: NodeId) -> NodeId {
        let mut x = n.0;
        while self.rep[x as usize] != x {
            x = self.rep[x as usize];
        }
        NodeId(x)
    }

    /// Merges `b` into `a`'s class (both are resolved to reps first).
    /// Returns the surviving representative.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return a;
        }
        // Keep the node with more successors as rep to move less data.
        let (keep, gone) = if self.succs[a.index()].len() >= self.succs[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.rep[gone.0 as usize] = keep.0;
        let moved = std::mem::take(&mut self.succs[gone.index()]);
        self.succs[keep.index()].extend(moved);
        let moved_pts = std::mem::take(&mut self.pts[gone.index()]);
        self.pts[keep.index()].union_in_place(&moved_pts);
        if self.pwc[gone.index()] {
            self.pwc[keep.index()] = true;
        }
        keep
    }

    /// Adds a copy edge `from -> to` (at representatives). Returns `true` if
    /// the edge is new.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return false;
        }
        if self.succs[from.index()].contains(&to.0) {
            return false;
        }
        self.succs[from.index()].push(to.0);
        true
    }

    /// Copy successors of representative `n` (unresolved raw ids; resolve
    /// through [`ConstraintGraph::find`] before use).
    pub fn raw_succs(&self, n: NodeId) -> &[u32] {
        &self.succs[n.index()]
    }

    /// Deduplicates successor lists after merges, resolving stale ids.
    pub fn compact_succs(&mut self) {
        for i in 0..self.rep.len() {
            if self.rep[i] != i as u32 {
                continue;
            }
            let mut resolved: Vec<u32> = std::mem::take(&mut self.succs[i])
                .into_iter()
                .map(|s| self.find(NodeId(s)).0)
                .filter(|&s| s != i as u32)
                .collect();
            resolved.sort_unstable();
            resolved.dedup();
            self.succs[i] = resolved;
        }
    }

    /// Points-to set of `n`'s representative.
    pub fn pts(&mut self, n: NodeId) -> &PtsSet {
        let r = self.find(n);
        &self.pts[r.index()]
    }

    /// Points-to set without path compression.
    pub fn pts_imm(&self, n: NodeId) -> &PtsSet {
        let r = self.find_imm(n);
        &self.pts[r.index()]
    }

    /// Inserts `m` into `n`'s points-to set; returns `true` if new.
    pub fn insert_pts(&mut self, n: NodeId, m: MemId) -> bool {
        let r = self.find(n);
        self.pts[r.index()].insert(m)
    }

    /// Unions `set` into `n`'s points-to set; returns `true` if it grew.
    pub fn union_pts(&mut self, n: NodeId, set: &PtsSet) -> bool {
        let r = self.find(n);
        self.pts[r.index()].union_in_place(set)
    }

    /// Unions the points-to set of `src` into `dst` (used on edges). Returns
    /// `true` if `dst` grew.
    pub fn flow(&mut self, src: NodeId, dst: NodeId) -> bool {
        let s = self.find(src);
        let d = self.find(dst);
        if s == d {
            return false;
        }
        // Split-borrow via clone of the (shared) source set only when needed:
        // cheap path first.
        if self.pts[s.index()].is_empty() {
            return false;
        }
        let (a, b) = (s.index(), d.index());
        if a < b {
            let (left, right) = self.pts.split_at_mut(b);
            right[0].union_in_place(&left[a])
        } else {
            let (left, right) = self.pts.split_at_mut(a);
            left[b].union_in_place(&right[0])
        }
    }

    /// Marks `n`'s representative as part of a positive-weight cycle.
    pub fn mark_pwc(&mut self, n: NodeId) {
        let r = self.find(n);
        self.pwc[r.index()] = true;
    }

    /// Whether `n`'s representative is part of a positive-weight cycle.
    pub fn is_pwc(&mut self, n: NodeId) -> bool {
        let r = self.find(n);
        self.pwc[r.index()]
    }

    /// All current representatives.
    pub fn reps(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rep.len() as u32)
            .filter(|&i| self.rep[i as usize] == i)
            .map(NodeId)
    }

    /// Heap bytes held by all points-to sets (for the memory meter).
    pub fn pts_bytes(&self) -> usize {
        self.pts.iter().map(PtsSet::heap_bytes).sum()
    }

    /// Total number of points-to pairs (for statistics).
    pub fn pts_entries(&self) -> usize {
        self.pts.iter().map(PtsSet::len).sum()
    }

    /// Total number of copy edges (for statistics).
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MemId {
        MemId::new(i)
    }

    #[test]
    fn var_and_mem_nodes_are_disjoint() {
        let mut g = ConstraintGraph::new(3, 2);
        let v = g.var_node(VarId::new(1));
        let o = g.mem_node(m(0));
        assert_ne!(v, o);
        assert_eq!(g.node_mem(v), None);
        assert_eq!(g.node_mem(o), Some(m(0)));
    }

    #[test]
    fn mem_node_grows_graph() {
        let mut g = ConstraintGraph::new(1, 1);
        assert_eq!(g.len(), 2);
        let late = g.mem_node(m(5));
        assert_eq!(g.len(), 7);
        assert_eq!(g.node_mem(late), Some(m(5)));
    }

    #[test]
    fn merge_unions_pts_and_succs() {
        let mut g = ConstraintGraph::new(4, 0);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        g.insert_pts(a, m(1));
        g.insert_pts(b, m(2));
        g.add_edge(b, c);
        let rep = g.merge(a, b);
        assert_eq!(g.find(a), rep);
        assert_eq!(g.find(b), rep);
        assert!(g.pts(a).contains(m(1)));
        assert!(g.pts(a).contains(m(2)));
        assert_eq!(g.raw_succs(rep).len(), 1);
        // Merging again is a no-op.
        assert_eq!(g.merge(a, b), rep);
    }

    #[test]
    fn flow_propagates_and_reports_change() {
        let mut g = ConstraintGraph::new(2, 0);
        let (a, b) = (NodeId(0), NodeId(1));
        g.insert_pts(a, m(3));
        assert!(g.flow(a, b));
        assert!(!g.flow(a, b));
        assert!(g.pts(b).contains(m(3)));
        // Flow within one class is a no-op.
        g.merge(a, b);
        assert!(!g.flow(a, b));
    }

    #[test]
    fn compact_resolves_stale_edges() {
        let mut g = ConstraintGraph::new(4, 0);
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.merge(b, c); // now a has two edges to the same class
        g.add_edge(d, a);
        g.compact_succs();
        let rep_a = g.find(a);
        assert_eq!(g.raw_succs(rep_a).len(), 1);
    }

    #[test]
    fn pwc_flag_survives_merge() {
        let mut g = ConstraintGraph::new(2, 0);
        let (a, b) = (NodeId(0), NodeId(1));
        g.mark_pwc(a);
        g.merge(b, a);
        assert!(g.is_pwc(b));
    }
}

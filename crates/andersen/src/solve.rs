//! The inclusion-based (Andersen) solver — FSAM's pre-analysis.
//!
//! Flow- and context-insensitive, field-sensitive, with an on-the-fly call
//! graph. The solve loop is wave propagation (Pereira & Berlin, cited as the
//! paper's pre-analysis implementation, §4.2):
//!
//! 1. detect and collapse cycles in the copy graph (treating `gep` edges as
//!    weighted edges so positive-weight cycles are found and the affected
//!    objects collapsed to field-insensitive treatment);
//! 2. propagate points-to sets along copy edges in topological order;
//! 3. process the complex constraints (loads, stores, geps, indirect
//!    calls/forks) against the points-to deltas, adding copy edges and call
//!    edges;
//!
//! repeating until nothing changes.

use std::time::Instant;

use fsam_ir::callgraph::CallGraph;
use fsam_ir::stmt::{Callee, StmtKind, Terminator};
use fsam_ir::{FuncId, Module, StmtId, VarId};
use fsam_pts::{MemId, ObjectModel, PtsSet};

use crate::graph::{ConstraintGraph, NodeId};

/// Statistics of one pre-analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AndersenStats {
    /// Wave-propagation rounds until fixpoint.
    pub rounds: usize,
    /// Constraint-graph nodes at the end.
    pub nodes: usize,
    /// Copy edges at the end.
    pub copy_edges: usize,
    /// Total points-to pairs at the end.
    pub pts_entries: usize,
    /// Nodes merged by cycle collapsing.
    pub scc_merges: usize,
    /// Indirect call/fork targets resolved.
    pub indirect_resolved: usize,
    /// Objects collapsed due to positive-weight cycles or offset overflow.
    pub pwc_collapses: usize,
    /// Wall-clock microseconds spent solving.
    pub solve_micros: u128,
}

#[derive(Debug)]
struct LoadC {
    ptr: VarId,
    dst: VarId,
    processed: PtsSet,
}

#[derive(Debug)]
struct StoreC {
    ptr: VarId,
    src: VarId,
    processed: PtsSet,
}

#[derive(Debug)]
struct GepC {
    base: VarId,
    dst: VarId,
    field: u32,
    processed: PtsSet,
}

#[derive(Debug)]
struct CallC {
    site: StmtId,
    caller: FuncId,
    fptr: VarId,
    args: Vec<VarId>,
    dst: Option<VarId>,
    is_fork: bool,
    processed: PtsSet,
}

/// The result of running Andersen's analysis on a module.
///
/// This is the paper's *pre-analysis* (Figure 2): it over-approximates
/// points-to information, resolves function pointers (and hence fork
/// targets), and supplies the aliasing information that the memory-SSA and
/// thread-interference phases consume.
#[derive(Debug)]
pub struct PreAnalysis {
    pt_vars: Vec<PtsSet>,
    pt_mems: Vec<PtsSet>,
    om: ObjectModel,
    cg: CallGraph,
    /// Solver statistics.
    pub stats: AndersenStats,
}

impl PreAnalysis {
    /// Runs the pre-analysis on `module`.
    pub fn run(module: &Module) -> PreAnalysis {
        Solver::new(module).solve()
    }

    /// Points-to set of a top-level variable.
    pub fn pt_var(&self, v: VarId) -> &PtsSet {
        &self.pt_vars[v.index()]
    }

    /// Points-to set of a memory object (what the object *contains*).
    pub fn pt_mem(&self, m: MemId) -> &PtsSet {
        static EMPTY: PtsSet = PtsSet::new();
        self.pt_mems.get(m.index()).unwrap_or(&EMPTY)
    }

    /// The object model (with all interned field objects).
    pub fn objects(&self) -> &ObjectModel {
        &self.om
    }

    /// The resolved, finalized call graph.
    pub fn call_graph(&self) -> &CallGraph {
        &self.cg
    }

    /// `AS(*p, *q)`: the objects pointed to by both `p` and `q`
    /// (paper rule `THREAD-VF`).
    pub fn alias_set(&self, p: VarId, q: VarId) -> PtsSet {
        self.pt_var(p).intersection(self.pt_var(q))
    }

    /// Whether `*p` and `*q` may alias.
    pub fn may_alias(&self, p: VarId, q: VarId) -> bool {
        self.pt_var(p).intersects(self.pt_var(q))
    }

    /// Functions a variable may point to.
    pub fn functions_of(&self, v: VarId) -> Vec<FuncId> {
        self.pt_var(v)
            .iter()
            .filter_map(|m| self.om.as_function(m))
            .collect()
    }

    /// Fork sites whose thread handle `v` may hold.
    pub fn thread_handles_of(&self, v: VarId) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self
            .pt_var(v)
            .iter()
            .filter_map(|m| self.om.as_thread_handle(m))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The unique singleton lock object `v` must point to, if any — the
    /// paper's must-alias condition `l ≡ l'` for lock correlation (§3.3.3).
    pub fn must_lock_obj(&self, v: VarId) -> Option<MemId> {
        let m = self.pt_var(v).as_singleton()?;
        self.om.is_singleton(m).then_some(m)
    }

    /// Heap bytes of all final points-to sets (memory metering).
    pub fn pts_bytes(&self) -> usize {
        self.pt_vars
            .iter()
            .chain(self.pt_mems.iter())
            .map(PtsSet::heap_bytes)
            .sum()
    }
}

struct Solver<'m> {
    module: &'m Module,
    om: ObjectModel,
    g: ConstraintGraph,
    cg: CallGraph,
    loads: Vec<LoadC>,
    stores: Vec<StoreC>,
    geps: Vec<GepC>,
    calls: Vec<CallC>,
    /// Cache of each function's returned variables.
    returns: Vec<Option<Vec<VarId>>>,
    /// (site, callee) pairs already bound, to avoid re-binding.
    bound: std::collections::HashSet<(StmtId, FuncId)>,
    stats: AndersenStats,
}

impl<'m> Solver<'m> {
    fn new(module: &'m Module) -> Self {
        let om = ObjectModel::from_module(module);
        let g = ConstraintGraph::new(
            u32::try_from(module.var_count()).expect("too many variables"),
            om.base_count(),
        );
        let cg = CallGraph::new(module.func_count());
        Solver {
            module,
            om,
            g,
            cg,
            loads: Vec::new(),
            stores: Vec::new(),
            geps: Vec::new(),
            calls: Vec::new(),
            returns: vec![None; module.func_count()],
            bound: std::collections::HashSet::new(),
            stats: AndersenStats::default(),
        }
    }

    fn returns_of(&mut self, f: FuncId) -> Vec<VarId> {
        if self.returns[f.index()].is_none() {
            let mut out = Vec::new();
            for (_, block) in self.module.func(f).blocks() {
                if let Terminator::Ret(Some(v)) = block.term {
                    out.push(v);
                }
            }
            self.returns[f.index()] = Some(out);
        }
        self.returns[f.index()].clone().expect("just cached")
    }

    /// Binds a call site to a resolved callee: argument, return and call
    /// graph edges. Returns `true` if anything was new.
    fn bind_call(
        &mut self,
        site: StmtId,
        caller: FuncId,
        callee: FuncId,
        args: &[VarId],
        dst: Option<VarId>,
        is_fork: bool,
    ) -> bool {
        if !self.bound.insert((site, callee)) {
            return false;
        }
        let mut changed = if is_fork {
            self.cg.add_fork(caller, site, callee)
        } else {
            self.cg.add_call(caller, site, callee)
        };
        let params = self.module.func(callee).params.clone();
        for (&a, &p) in args.iter().zip(params.iter()) {
            changed |= self.g.add_edge(self.g.var_node(a), self.g.var_node(p));
        }
        if let Some(d) = dst {
            if !self.module.func(callee).is_external {
                for r in self.returns_of(callee) {
                    changed |= self.g.add_edge(self.g.var_node(r), self.g.var_node(d));
                }
            }
        }
        changed
    }

    fn generate(&mut self) {
        for (sid, stmt) in self.module.stmts() {
            match &stmt.kind {
                StmtKind::Addr { dst, obj } => {
                    let m = self.om.base(*obj);
                    let n = self.g.var_node(*dst);
                    self.g.insert_pts(n, m);
                }
                StmtKind::Copy { dst, src } => {
                    self.g
                        .add_edge(self.g.var_node(*src), self.g.var_node(*dst));
                }
                StmtKind::Phi { dst, arms } => {
                    for arm in arms {
                        self.g
                            .add_edge(self.g.var_node(arm.var), self.g.var_node(*dst));
                    }
                }
                StmtKind::Load { dst, ptr } => {
                    self.loads.push(LoadC {
                        ptr: *ptr,
                        dst: *dst,
                        processed: PtsSet::new(),
                    });
                }
                StmtKind::Store { ptr, val } => {
                    self.stores.push(StoreC {
                        ptr: *ptr,
                        src: *val,
                        processed: PtsSet::new(),
                    });
                }
                StmtKind::Gep { dst, base, field } => {
                    self.geps.push(GepC {
                        base: *base,
                        dst: *dst,
                        field: *field,
                        processed: PtsSet::new(),
                    });
                }
                StmtKind::Call { callee, args, dst } => match callee {
                    Callee::Direct(f) => {
                        self.bind_call(sid, stmt.func, *f, args, *dst, false);
                    }
                    Callee::Indirect(v) => {
                        self.calls.push(CallC {
                            site: sid,
                            caller: stmt.func,
                            fptr: *v,
                            args: args.clone(),
                            dst: *dst,
                            is_fork: false,
                            processed: PtsSet::new(),
                        });
                    }
                },
                StmtKind::Fork {
                    dst,
                    callee,
                    arg,
                    handle_obj,
                } => {
                    let m = self.om.base(*handle_obj);
                    let n = self.g.var_node(*dst);
                    self.g.insert_pts(n, m);
                    let args: Vec<VarId> = arg.iter().copied().collect();
                    match callee {
                        Callee::Direct(f) => {
                            self.bind_call(sid, stmt.func, *f, &args, None, true);
                        }
                        Callee::Indirect(v) => {
                            self.calls.push(CallC {
                                site: sid,
                                caller: stmt.func,
                                fptr: *v,
                                args,
                                dst: None,
                                is_fork: true,
                                processed: PtsSet::new(),
                            });
                        }
                    }
                }
                // Sync intrinsics add no points-to constraints: condvar,
                // barrier and atomic operands are uses of already-defined
                // pointers, and atomic cells hold sync-only scalars — the
                // AtomicLoad/AtomicRmw destinations have empty points-to by
                // IR contract (DESIGN §1.9).
                StmtKind::Join { .. }
                | StmtKind::Lock { .. }
                | StmtKind::Unlock { .. }
                | StmtKind::Signal { .. }
                | StmtKind::Wait { .. }
                | StmtKind::Broadcast { .. }
                | StmtKind::BarrierInit { .. }
                | StmtKind::BarrierWait { .. }
                | StmtKind::AtomicLoad { .. }
                | StmtKind::AtomicStore { .. }
                | StmtKind::AtomicRmw { .. } => {}
            }
        }
    }

    /// Collapses `root` to field-insensitive treatment and merges its field
    /// objects' constraint nodes into the root node.
    fn collapse_object(&mut self, root: MemId) {
        let root = self.om.root(root);
        if !self.om.is_collapsed(root) {
            self.om.collapse(root);
            self.stats.pwc_collapses += 1;
        }
        let fields = self.om.fields_of(root);
        let root_node = self.g.mem_node(root);
        for f in fields {
            let fnode = self.g.mem_node(f);
            if self.g.find(fnode) != self.g.find(root_node) {
                self.g.merge(root_node, fnode);
                self.stats.scc_merges += 1;
            }
        }
    }

    /// `field(o, f)` with node-merging on collapse.
    fn field_of(&mut self, o: MemId, field: u32) -> MemId {
        let root = self.om.root(o);
        let was_collapsed = self.om.is_collapsed(root);
        let result = self.om.field(o, field);
        if !was_collapsed && self.om.is_collapsed(root) {
            self.collapse_object(root);
            return self.om.root(o);
        }
        // Make sure the node exists.
        let _ = self.g.mem_node(result);
        result
    }

    /// Step 1: cycle detection over copy edges + weighted gep edges.
    /// Copy-only cycles merge; cycles through a gep edge additionally mark
    /// their representative as PWC.
    fn collapse_cycles(&mut self) {
        self.g.compact_succs();
        let n = self.g.len();
        // Build the edge list over representatives, with a weighted flag.
        let mut adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n];
        for rep in self.g.reps().collect::<Vec<_>>() {
            for &s in self.g.raw_succs(rep).to_vec().iter() {
                let t = self.g.find(NodeId(s));
                if t != rep {
                    adj[rep.index()].push((t.0, false));
                }
            }
        }
        // Weighted edges from gep constraints (base -> dst), field > 0.
        let gep_edges: Vec<(VarId, VarId, u32)> =
            self.geps.iter().map(|g| (g.base, g.dst, g.field)).collect();
        for (base, dst, field) in gep_edges {
            if field == 0 {
                continue;
            }
            let b = self.g.find(self.g.var_node(base));
            let d = self.g.find(self.g.var_node(dst));
            if b != d {
                adj[b.index()].push((d.0, true));
            } else {
                // Self-loop through a gep: immediate PWC.
                self.g.mark_pwc(b);
            }
        }

        // Iterative Tarjan over representatives.
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let is_rep: Vec<bool> = {
            let mut v = vec![false; n];
            for r in self.g.reps() {
                v[r.index()] = true;
            }
            v
        };
        enum Frame {
            Enter(u32),
            Resume(u32, usize),
        }
        for root in 0..n as u32 {
            if !is_rep[root as usize] || index[root as usize] != u32::MAX {
                continue;
            }
            let mut frames = vec![Frame::Enter(root)];
            while let Some(frame) = frames.pop() {
                match frame {
                    Frame::Enter(v) => {
                        index[v as usize] = next;
                        low[v as usize] = next;
                        next += 1;
                        stack.push(v);
                        on_stack[v as usize] = true;
                        frames.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, mut i) => {
                        let mut descended = false;
                        while i < adj[v as usize].len() {
                            let (w, _) = adj[v as usize][i];
                            i += 1;
                            if index[w as usize] == u32::MAX {
                                frames.push(Frame::Resume(v, i));
                                frames.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w as usize] {
                                low[v as usize] = low[v as usize].min(index[w as usize]);
                            }
                        }
                        if descended {
                            continue;
                        }
                        if low[v as usize] == index[v as usize] {
                            let mut scc = Vec::new();
                            loop {
                                let w = stack.pop().expect("tarjan stack");
                                on_stack[w as usize] = false;
                                scc.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            if scc.len() > 1 {
                                sccs.push(scc);
                            }
                        }
                        if let Some(Frame::Resume(p, _)) = frames.last() {
                            let p = *p;
                            low[p as usize] = low[p as usize].min(low[v as usize]);
                        }
                    }
                }
            }
        }

        for scc in sccs {
            let in_scc: std::collections::HashSet<u32> = scc.iter().copied().collect();
            // Does the SCC contain a weighted internal edge?
            let mut weighted = false;
            for &v in &scc {
                for &(w, wt) in &adj[v as usize] {
                    if wt && in_scc.contains(&w) {
                        weighted = true;
                    }
                }
            }
            let mut rep = NodeId(scc[0]);
            for &v in &scc[1..] {
                rep = self.g.merge(rep, NodeId(v));
                self.stats.scc_merges += 1;
            }
            if weighted {
                self.g.mark_pwc(rep);
            }
        }
        self.g.compact_succs();
    }

    /// Step 2: one topological wave over the (acyclic) copy graph.
    fn propagate(&mut self) -> bool {
        // Topo order of reps via DFS post-order.
        let n = self.g.len();
        let mut order: Vec<NodeId> = Vec::new();
        let mut state = vec![0u8; n];
        let reps: Vec<NodeId> = self.g.reps().collect();
        for &r in &reps {
            if state[r.index()] != 0 {
                continue;
            }
            let mut stack = vec![(r, 0usize)];
            state[r.index()] = 1;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                let succs = self.g.raw_succs(v);
                if *i < succs.len() {
                    let w = self.g.find_imm(NodeId(succs[*i]));
                    *i += 1;
                    if state[w.index()] == 0 {
                        state[w.index()] = 1;
                        stack.push((w, 0));
                    }
                } else {
                    state[v.index()] = 2;
                    order.push(v);
                    stack.pop();
                }
            }
        }
        order.reverse();

        let mut changed = false;
        // A single pass in topo order reaches the copy-edge fixpoint on a DAG;
        // residual cycles (possible if edges were added since the last
        // collapse) are handled by iterating until stable.
        loop {
            let mut pass_changed = false;
            for &v in &order {
                let succs: Vec<u32> = self.g.raw_succs(v).to_vec();
                for s in succs {
                    pass_changed |= self.g.flow(v, NodeId(s));
                }
            }
            changed |= pass_changed;
            if !pass_changed {
                break;
            }
        }
        changed
    }

    /// Step 3: process complex constraints against points-to deltas.
    fn process_complex(&mut self) -> bool {
        let mut changed = false;

        // Loads: dst ⊇ *ptr.
        for i in 0..self.loads.len() {
            let (ptr, dst) = (self.loads[i].ptr, self.loads[i].dst);
            let pts = self.g.pts(self.g.var_node(ptr)).clone();
            for o in pts.iter() {
                if self.loads[i].processed.contains(o) {
                    continue;
                }
                self.loads[i].processed.insert(o);
                let on = self.g.mem_node(o);
                changed |= self.g.add_edge(on, self.g.var_node(dst));
                changed |= self.g.flow(on, self.g.var_node(dst));
            }
        }

        // Stores: *ptr ⊇ src.
        for i in 0..self.stores.len() {
            let (ptr, src) = (self.stores[i].ptr, self.stores[i].src);
            let pts = self.g.pts(self.g.var_node(ptr)).clone();
            for o in pts.iter() {
                if self.stores[i].processed.contains(o) {
                    continue;
                }
                self.stores[i].processed.insert(o);
                let on = self.g.mem_node(o);
                changed |= self.g.add_edge(self.g.var_node(src), on);
                changed |= self.g.flow(self.g.var_node(src), on);
            }
        }

        // Geps: dst ⊇ {field(o, f) | o ∈ pt(base)}.
        for i in 0..self.geps.len() {
            let (base, dst, field) = (self.geps[i].base, self.geps[i].dst, self.geps[i].field);
            let base_node = self.g.var_node(base);
            let in_pwc = self.g.is_pwc(base_node) || {
                let d = self.g.var_node(dst);
                self.g.find(base_node) == self.g.find(d) && field > 0
            };
            let pts = self.g.pts(base_node).clone();
            for o in pts.iter() {
                if self.geps[i].processed.contains(o) {
                    continue;
                }
                self.geps[i].processed.insert(o);
                let fo = if in_pwc {
                    self.collapse_object(o);
                    self.om.root(o)
                } else {
                    self.field_of(o, field)
                };
                changed |= self.g.insert_pts(self.g.var_node(dst), fo);
            }
        }

        // Indirect calls and forks: bind as function objects arrive.
        for i in 0..self.calls.len() {
            let fptr = self.calls[i].fptr;
            let pts = self.g.pts(self.g.var_node(fptr)).clone();
            for o in pts.iter() {
                if self.calls[i].processed.contains(o) {
                    continue;
                }
                self.calls[i].processed.insert(o);
                if let Some(callee) = self.om.as_function(o) {
                    let (site, caller, dst, is_fork) = (
                        self.calls[i].site,
                        self.calls[i].caller,
                        self.calls[i].dst,
                        self.calls[i].is_fork,
                    );
                    let args = self.calls[i].args.clone();
                    if self.bind_call(site, caller, callee, &args, dst, is_fork) {
                        changed = true;
                        self.stats.indirect_resolved += 1;
                    }
                }
            }
        }

        changed
    }

    fn solve(mut self) -> PreAnalysis {
        let start = Instant::now();
        self.generate();
        loop {
            self.stats.rounds += 1;
            self.collapse_cycles();
            let p = self.propagate();
            let c = self.process_complex();
            if !p && !c {
                break;
            }
            // Safety valve: the analysis is monotone over a finite lattice,
            // but guard against implementation bugs in debug runs.
            debug_assert!(self.stats.rounds < 10_000, "andersen failed to converge");
        }
        self.cg.finalize();
        {
            // Demote locals of recursive functions from singleton status.
            let cg = &self.cg;
            self.om
                .demote_recursive_locals(self.module, |f| cg.in_cycle(f));
        }

        // Extract final points-to sets, canonicalizing members whose base
        // was collapsed after they were interned: a field object of a
        // collapsed base denotes the same memory as the base, and keeping
        // both ids in result sets would make equal abstractions compare
        // unequal downstream.
        let canonicalize = |om: &ObjectModel, set: &PtsSet| -> PtsSet {
            let needs = set.iter().any(|m| om.is_collapsed(m) && om.root(m) != m);
            if !needs {
                return set.clone();
            }
            set.iter()
                .map(|m| if om.is_collapsed(m) { om.root(m) } else { m })
                .collect()
        };
        let mut pt_vars = Vec::with_capacity(self.module.var_count());
        for v in self.module.var_ids() {
            let set = self.g.pts_imm(self.g.var_node(v)).clone();
            pt_vars.push(canonicalize(&self.om, &set));
        }
        let mem_count = self.om.len();
        let mut pt_mems = Vec::with_capacity(mem_count);
        for m in self.om.mem_ids() {
            let node = self.g.mem_node(m);
            let set = self.g.pts_imm(node).clone();
            pt_mems.push(canonicalize(&self.om, &set));
        }

        self.stats.nodes = self.g.len();
        self.stats.copy_edges = self.g.edge_count();
        self.stats.pts_entries = self.g.pts_entries();
        self.stats.solve_micros = start.elapsed().as_micros();

        PreAnalysis {
            pt_vars,
            pt_mems,
            om: self.om,
            cg: self.cg,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsam_ir::parse::parse_module;

    fn pt_names(pa: &PreAnalysis, m: &Module, func: &str, var: &str) -> Vec<String> {
        let v = m
            .var_ids()
            .find(|&v| m.var(v).name == var && m.func(m.var(v).func).name == func)
            .unwrap_or_else(|| panic!("no var {func}::{var}"));
        let mut names: Vec<String> = pa
            .pt_var(v)
            .iter()
            .map(|o| pa.objects().display_name(m, o))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn addr_copy_load_store() {
        let m = parse_module(
            r#"
            global x
            global y
            func main() {
            entry:
              p = &x
              q = &y
              store p, q    // x = &y
              c = load p    // c = x  => {y}
              d = p         // copy   => {x}
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "main", "p"), vec!["x"]);
        assert_eq!(pt_names(&pa, &m, "main", "c"), vec!["y"]);
        assert_eq!(pt_names(&pa, &m, "main", "d"), vec!["x"]);
    }

    #[test]
    fn phi_merges() {
        let m = parse_module(
            r#"
            global a
            global b
            func main() {
            entry:
              br ?, l, r
            l:
              p = &a
              br done
            r:
              q = &b
              br done
            done:
              c = phi [l: p, r: q]
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "main", "c"), vec!["a", "b"]);
    }

    #[test]
    fn interprocedural_params_and_returns() {
        let m = parse_module(
            r#"
            global g
            func id(x) {
            entry:
              ret x
            }
            func main() {
            entry:
              p = &g
              q = call id(p)
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "id", "x"), vec!["g"]);
        assert_eq!(pt_names(&pa, &m, "main", "q"), vec!["g"]);
    }

    #[test]
    fn indirect_call_resolved_on_the_fly() {
        let m = parse_module(
            r#"
            global g
            func target(x) {
            entry:
              ret x
            }
            func main() {
            entry:
              fp = &target
              p = &g
              r = call *fp(p)
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "main", "r"), vec!["g"]);
        let main = m.entry().unwrap();
        let call_site = m
            .stmts()
            .find(|(_, s)| s.func == main && matches!(s.kind, StmtKind::Call { .. }))
            .unwrap()
            .0;
        let target = m.func_by_name("target").unwrap();
        assert!(pa.call_graph().targets(call_site).any(|f| f == target));
        assert_eq!(pa.stats.indirect_resolved, 1);
    }

    #[test]
    fn fork_handle_and_arg_binding() {
        let m = parse_module(
            r#"
            global g
            func worker(w) {
            entry:
              v = load w
              ret
            }
            func main() {
            entry:
              p = &g
              t = fork worker(p)
              join t
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        // worker's parameter receives main's p.
        assert_eq!(pt_names(&pa, &m, "worker", "w"), vec!["g"]);
        // The handle points to exactly one fork site.
        let t = m.var_ids().find(|&v| m.var(v).name == "t").unwrap();
        assert_eq!(pa.thread_handles_of(t).len(), 1);
        // Fork edge in the call graph.
        let main = m.entry().unwrap();
        let worker = m.func_by_name("worker").unwrap();
        assert!(pa.call_graph().forked_from(main).any(|f| f == worker));
    }

    #[test]
    fn load_store_through_heap() {
        let m = parse_module(
            r#"
            global g
            func main() {
            entry:
              h = alloc "cell"
              p = &g
              store h, p    // cell = &g
              c = load h    // c = {g}
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "main", "c"), vec!["g"]);
    }

    #[test]
    fn field_sensitivity_distinguishes_fields() {
        let m = parse_module(
            r#"
            global s
            global a
            global b
            func main() {
            entry:
              p = &s
              f1 = gep p, 1
              f2 = gep p, 2
              pa = &a
              pb = &b
              store f1, pa   // s.f1 = &a
              store f2, pb   // s.f2 = &b
              c1 = load f1
              c2 = load f2
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert_eq!(pt_names(&pa, &m, "main", "c1"), vec!["a"]);
        assert_eq!(pt_names(&pa, &m, "main", "c2"), vec!["b"]);
    }

    #[test]
    fn arrays_are_monolithic() {
        let m = parse_module(
            r#"
            global array arr
            global a
            global b
            func main() {
            entry:
              p = &arr
              f1 = gep p, 1
              f2 = gep p, 2
              pa = &a
              pb = &b
              store f1, pa
              store f2, pb
              c1 = load f1
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        // Both stores land on the same monolithic array object.
        assert_eq!(pt_names(&pa, &m, "main", "c1"), vec!["a", "b"]);
    }

    #[test]
    fn positive_weight_cycle_collapses() {
        // p = &s; loop { p = gep p, 1 } — a positive-weight cycle: p's
        // points-to must terminate by collapsing s.
        let m = parse_module(
            r#"
            global s
            func main() {
            entry:
              p0 = &s
              br header
            header:
              p = phi [entry: p0, body: p1]
              br ?, body, exit
            body:
              p1 = gep p, 1
              br header
            exit:
              c = load p
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert!(pa.stats.pwc_collapses >= 1);
        // p still points to (the collapsed) s.
        let names = pt_names(&pa, &m, "main", "p");
        assert!(names.contains(&"s".to_owned()), "{names:?}");
    }

    #[test]
    fn copy_cycles_are_merged() {
        let m = parse_module(
            r#"
            global g
            func main() {
            entry:
              a0 = &g
              br header
            header:
              a = phi [entry: a0, body: b]
              br ?, body, exit
            body:
              b = a
              br header
            exit:
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        assert!(pa.stats.scc_merges >= 1);
        assert_eq!(pt_names(&pa, &m, "main", "b"), vec!["g"]);
    }

    #[test]
    fn alias_queries() {
        let m = parse_module(
            r#"
            global x
            global y
            func main() {
            entry:
              p = &x
              q = &x
              r = &y
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        let var = |name: &str| m.var_ids().find(|&v| m.var(v).name == name).unwrap();
        assert!(pa.may_alias(var("p"), var("q")));
        assert!(!pa.may_alias(var("p"), var("r")));
        assert_eq!(pa.alias_set(var("p"), var("q")).len(), 1);
        // x is a singleton global: must-lock candidate.
        assert!(pa.must_lock_obj(var("p")).is_some());
    }

    #[test]
    fn recursion_collapses_context_and_demotes_locals() {
        let m = parse_module(
            r#"
            func rec(x) {
            local slot
            entry:
              p = &slot
              r = call rec(p)
              ret p
            }
            func main() {
            entry:
              q = alloc "seed"
              t = call rec(q)
              ret
            }
        "#,
        )
        .unwrap();
        let pa = PreAnalysis::run(&m);
        let rec = m.func_by_name("rec").unwrap();
        assert!(pa.call_graph().in_cycle(rec));
        // `slot` is a local of a recursive function: not a singleton.
        let slot = m.objs().find(|(_, o)| o.name == "slot").unwrap().0;
        assert!(!pa.objects().is_singleton(pa.objects().base(slot)));
    }
}

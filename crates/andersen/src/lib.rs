//! # fsam-andersen — the FSAM pre-analysis
//!
//! An inclusion-based (Andersen-style) pointer analysis: flow- and
//! context-insensitive, field-sensitive, with wave propagation, online cycle
//! collapsing (including positive-weight cycles from field constraints) and
//! an on-the-fly call graph that resolves function pointers and fork targets.
//!
//! This is the *pre-analysis* stage of the paper's Figure 2 pipeline: its
//! over-approximate points-to sets bootstrap the memory SSA, the thread
//! interference analyses and, ultimately, the sparse flow-sensitive solver.
//!
//! ## Example
//!
//! ```
//! use fsam_andersen::PreAnalysis;
//! use fsam_ir::parse::parse_module;
//!
//! let module = parse_module(r#"
//!     global x
//!     func main() {
//!     entry:
//!       p = &x
//!       q = p
//!       ret
//!     }
//! "#)?;
//! let pre = PreAnalysis::run(&module);
//! let q = module.var_ids().find(|&v| module.var(v).name == "q").unwrap();
//! assert_eq!(pre.pt_var(q).len(), 1);
//! # Ok::<(), fsam_ir::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod solve;

pub use solve::{AndersenStats, PreAnalysis};

//! Textual frontend: the FIR language.
//!
//! FIR is a compact partial-SSA syntax for writing analysis inputs by hand —
//! the paper's example programs (Figures 1, 6, 8, 9, 11) are included as FIR
//! sources in the integration tests. The pretty printer
//! ([`crate::print::module_to_string`]) emits FIR that parses back to an
//! equivalent module.
//!
//! # Grammar
//!
//! ```text
//! module  := item*
//! item    := 'global' 'array'? NAME
//!          | 'extern' 'func' NAME '(' params? ')'
//!          | 'func' NAME '(' params? ')' '{' local* block+ '}'
//! local   := 'local' 'array'? NAME
//! block   := NAME ':' stmt* term
//! stmt    := NAME '=' rhs
//!          | 'store' NAME ',' NAME
//!          | 'call' callee '(' args? ')'
//!          | 'join' NAME | 'lock' NAME | 'unlock' NAME
//!          | 'signal' NAME | 'wait' NAME | 'broadcast' NAME
//!          | 'barrier_init' NAME ',' INT | 'barrier_wait' NAME
//!          | 'atomic_store' NAME ',' NAME order?
//! rhs     := '&' NAME | 'alloc' STRING? | 'load' NAME
//!          | 'gep' NAME ',' INT
//!          | 'phi' '[' NAME ':' NAME (',' NAME ':' NAME)* ']'
//!          | 'call' callee '(' args? ')'
//!          | 'fork' callee '(' NAME? ')'
//!          | 'atomic_load' NAME order?
//!          | 'atomic_rmw' NAME ',' NAME order?
//!          | NAME
//! order   := ',' ('acq' | 'rel' | 'acqrel')
//! term    := 'br' NAME | 'br' ('?' | NAME) ',' NAME ',' NAME | 'ret' NAME?
//! callee  := NAME | '*' NAME
//! ```
//!
//! `&NAME` resolves to a local of the current function, then a global, then
//! a function (function pointer). Line comments start with `//`.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! global x
//! global y
//!
//! func foo() {
//! entry:
//!   q = &y
//!   ret
//! }
//!
//! func main() {
//! entry:
//!   p = &x
//!   t = fork foo()
//!   join t
//!   c = load p
//!   ret
//! }
//! "#;
//! let module = fsam_ir::parse::parse_module(src)?;
//! assert_eq!(module.func_count(), 2);
//! # Ok::<(), fsam_ir::parse::ParseError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::builder::{FunctionBuilder, ModuleBuilder};
use crate::ids::{BlockId, FuncId, ObjId, VarId};
use crate::module::Module;

/// A parse failure with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- lexer ---

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Name(String),
    Str(String),
    Int(u32),
    Punct(char), // = & , ( ) { } [ ] : * ?
    Eof,
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: u32,
    col: u32,
}

/// A source comment: `(line, text after the `//`)`.
type Comment = (u32, String);

fn lex(src: &str) -> Result<(Vec<SpannedTok>, Vec<Comment>), ParseError> {
    let mut out = Vec::new();
    let mut comments: Vec<(u32, String)> = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    chars.next();
                    col += 1;
                    let mut text = String::new();
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                        text.push(c);
                    }
                    comments.push((tl, text));
                } else {
                    return Err(ParseError {
                        line: tl,
                        col: tc,
                        message: "unexpected `/` (comments are `//`)".into(),
                    });
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(ParseError {
                                line: tl,
                                col: tc,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(ch) => {
                            col += 1;
                            s.push(ch);
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let value = n.parse::<u32>().map_err(|_| ParseError {
                    line: tl,
                    col: tc,
                    message: format!("integer `{n}` out of range"),
                })?;
                out.push(SpannedTok {
                    tok: Tok::Int(value),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '.' || d == '$' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Name(s),
                    line: tl,
                    col: tc,
                });
            }
            '=' | '&' | ',' | '(' | ')' | '{' | '}' | '[' | ']' | ':' | '*' | '?' => {
                chars.next();
                col += 1;
                out.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(ParseError {
                    line: tl,
                    col: tc,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok((out, comments))
}

/// Recognizes `fsam-lint: allow(CODE, ...)` comments. Returns `Ok(None)`
/// for ordinary comments, the suppressed codes for well-formed directives,
/// and an error message for malformed ones (a directive that silently did
/// nothing would be worse than a parse error).
fn parse_lint_directive(text: &str) -> Result<Option<Vec<String>>, String> {
    let Some(rest) = text.trim_start().strip_prefix("fsam-lint:") else {
        return Ok(None);
    };
    let rest = rest.trim();
    let Some(args) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Err(format!(
            "malformed fsam-lint directive `{}` (expected `fsam-lint: allow(CODE, ...)`)",
            text.trim()
        ));
    };
    let mut codes = Vec::new();
    for code in args.split(',') {
        let code = code.trim();
        if code.is_empty() || !code.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(format!("bad checker code `{code}` in fsam-lint directive"));
        }
        codes.push(code.to_owned());
    }
    if codes.is_empty() {
        return Err("fsam-lint: allow(...) lists no checker codes".into());
    }
    Ok(Some(codes))
}

// --------------------------------------------------------------- parser ---

/// Parses FIR source text into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on malformed input. Note that
/// semantic SSA violations are *not* caught here; run
/// [`verify_module`](crate::verify::verify_module) afterwards.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let (toks, comments) = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        mb: ModuleBuilder::new(),
    };
    p.module()?;
    for (line, text) in comments {
        match parse_lint_directive(&text) {
            Ok(None) => {}
            Ok(Some(codes)) => p.mb.lint_directive(line, codes),
            Err(message) => {
                return Err(ParseError {
                    line,
                    col: 1,
                    message,
                })
            }
        }
    }
    Ok(p.mb.build())
}

const KEYWORDS: &[&str] = &[
    "global",
    "array",
    "extern",
    "func",
    "local",
    "store",
    "call",
    "join",
    "lock",
    "unlock",
    "alloc",
    "load",
    "gep",
    "phi",
    "fork",
    "br",
    "ret",
    "signal",
    "wait",
    "broadcast",
    "barrier_init",
    "barrier_wait",
    "atomic_load",
    "atomic_store",
    "atomic_rmw",
];

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    mb: ModuleBuilder,
}

/// A deferred function body: token range to parse in the second pass.
struct PendingBody {
    func: FuncId,
    start: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        (self.toks[self.pos].line, self.toks[self.pos].col)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(p) if *p == c => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Name(n) if n == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Name(n) => {
                if KEYWORDS.contains(&n.as_str()) {
                    return Err(self.error(format!("`{n}` is a keyword, not a name")));
                }
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected a name, found {other:?}"))),
        }
    }

    fn module(&mut self) -> Result<(), ParseError> {
        // Pass 1: globals + function signatures; remember body token ranges.
        let mut pending: Vec<PendingBody> = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Name(n) if n == "global" => {
                    self.bump();
                    let is_array = self.is_keyword("array");
                    if is_array {
                        self.bump();
                    }
                    let name = self.name()?;
                    if is_array {
                        self.mb.global_array(&name);
                    } else {
                        self.mb.global(&name);
                    }
                }
                Tok::Name(n) if n == "extern" => {
                    self.bump();
                    self.eat_keyword("func")?;
                    let (name, params) = self.signature()?;
                    let params_ref: Vec<&str> = params.iter().map(String::as_str).collect();
                    if self.mb.module().func_by_name(&name).is_some() {
                        return Err(self.error(format!("function `{name}` defined twice")));
                    }
                    self.mb.extern_func(&name, &params_ref);
                }
                Tok::Name(n) if n == "func" => {
                    self.bump();
                    let (name, params) = self.signature()?;
                    let params_ref: Vec<&str> = params.iter().map(String::as_str).collect();
                    if self.mb.module().func_by_name(&name).is_some() {
                        return Err(self.error(format!("function `{name}` defined twice")));
                    }
                    let id = self.mb.declare_func(&name, &params_ref);
                    self.eat_punct('{')?;
                    let start = self.pos;
                    let mut depth = 1;
                    while depth > 0 {
                        match self.peek() {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => depth -= 1,
                            Tok::Eof => return Err(self.error("unterminated function body")),
                            _ => {}
                        }
                        if depth > 0 {
                            self.bump();
                        }
                    }
                    let end = self.pos;
                    self.eat_punct('}')?;
                    pending.push(PendingBody {
                        func: id,
                        start,
                        end,
                    });
                }
                other => return Err(self.error(format!("expected an item, found {other:?}"))),
            }
        }
        // Pass 2: bodies.
        let final_pos = self.pos;
        for body in pending {
            self.pos = body.start;
            self.body(body.func, body.end)?;
        }
        self.pos = final_pos;
        Ok(())
    }

    fn signature(&mut self) -> Result<(String, Vec<String>), ParseError> {
        let name = self.name()?;
        self.eat_punct('(')?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::Punct(')')) {
            loop {
                params.push(self.name()?);
                if matches!(self.peek(), Tok::Punct(',')) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(')')?;
        Ok((name, params))
    }

    fn body(&mut self, func: FuncId, end: usize) -> Result<(), ParseError> {
        // Locals.
        let mut f = self.mb.define_func(func);
        let mut locals: HashMap<String, ObjId> = HashMap::new();
        // We interleave borrows of self.mb (through `f`) with token access;
        // token access only touches self.toks/self.pos, which is fine since
        // `f` borrows `self.mb` only. To satisfy the borrow checker we drive
        // everything through a helper struct.
        let mut ctx = BodyCtx {
            toks: &self.toks,
            pos: self.pos,
            end,
            f: &mut f,
            locals: &mut locals,
            labels: HashMap::new(),
        };
        ctx.parse()?;
        self.pos = ctx.pos;
        f.finish();
        Ok(())
    }
}

struct BodyCtx<'a, 'm> {
    toks: &'a [SpannedTok],
    pos: usize,
    end: usize,
    f: &'a mut FunctionBuilder<'m>,
    locals: &'a mut HashMap<String, ObjId>,
    labels: HashMap<String, BlockId>,
}

impl BodyCtx<'_, '_> {
    fn peek(&self) -> &Tok {
        if self.pos >= self.end {
            &Tok::Eof
        } else {
            &self.toks[self.pos].tok
        }
    }

    fn peek2(&self) -> &Tok {
        if self.pos + 1 >= self.end {
            &Tok::Eof
        } else {
            &self.toks[self.pos + 1].tok
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = &self.toks[self.pos.min(self.toks.len() - 1)];
        ParseError {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.end {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(p) if *p == c => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Name(n) => {
                if KEYWORDS.contains(&n.as_str()) {
                    return Err(self.error(format!("`{n}` is a keyword, not a name")));
                }
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected a name, found {other:?}"))),
        }
    }

    fn parse(&mut self) -> Result<(), ParseError> {
        // Locals first.
        while self.is_keyword("local") {
            self.bump();
            let is_array = self.is_keyword("array");
            if is_array {
                self.bump();
            }
            let name = self.name()?;
            let obj = if is_array {
                self.f.local_array(&name)
            } else {
                self.f.local(&name)
            };
            self.locals.insert(name, obj);
        }
        // Pre-scan labels: a label is NAME ':' at statement position. We scan
        // the token stream for `Name ':'` pairs that are not phi arms (phi
        // arms appear inside brackets).
        let mut depth = 0;
        let mut i = self.pos;
        let mut first = true;
        while i < self.end {
            match &self.toks[i].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Name(n)
                    if depth == 0
                        && i + 1 < self.end
                        && self.toks[i + 1].tok == Tok::Punct(':') =>
                {
                    let label = n.clone();
                    if self.labels.contains_key(&label) {
                        return Err(ParseError {
                            line: self.toks[i].line,
                            col: self.toks[i].col,
                            message: format!("duplicate label `{label}`"),
                        });
                    }
                    let bid = if first {
                        first = false;
                        self.f.rename_block(BlockId::ENTRY, &label);
                        BlockId::ENTRY
                    } else {
                        self.f.block(&label)
                    };
                    self.labels.insert(label, bid);
                    i += 1; // skip ':' too
                }
                _ => {}
            }
            i += 1;
        }
        if self.labels.is_empty() {
            return Err(self.error("function body has no blocks"));
        }

        // Parse blocks.
        while self.pos < self.end {
            let label = self.name()?;
            self.eat_punct(':')?;
            let bid = self.labels[&label];
            self.f.switch_to(bid);
            self.block_body()?;
        }
        Ok(())
    }

    fn lookup_label(&self, label: &str) -> Result<BlockId, ParseError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| self.error(format!("unknown label `{label}`")))
    }

    /// Resolves `&name`: local, then global, then function.
    fn resolve_addr(&mut self, name: &str) -> Result<AddrTarget, ParseError> {
        if let Some(&obj) = self.locals.get(name) {
            return Ok(AddrTarget::Obj(obj));
        }
        if let Some(obj) = self.f.module_globals_lookup(name) {
            return Ok(AddrTarget::Obj(obj));
        }
        if let Some(func) = self.f.module_func_lookup(name) {
            return Ok(AddrTarget::Func(func));
        }
        Err(self.error(format!(
            "`&{name}` does not name a local, global or function"
        )))
    }

    fn callee(&mut self) -> Result<CalleeSpec, ParseError> {
        if matches!(self.peek(), Tok::Punct('*')) {
            self.bump();
            let v = self.name()?;
            Ok(CalleeSpec::Indirect(self.f.named(&v)))
        } else {
            let name = self.name()?;
            let func = self
                .f
                .module_func_lookup(&name)
                .ok_or_else(|| self.error(format!("unknown function `{name}`")))?;
            Ok(CalleeSpec::Direct(func))
        }
    }

    fn args(&mut self) -> Result<Vec<VarId>, ParseError> {
        self.eat_punct('(')?;
        let mut out = Vec::new();
        if !matches!(self.peek(), Tok::Punct(')')) {
            loop {
                let a = self.name()?;
                out.push(self.f.named(&a));
                if matches!(self.peek(), Tok::Punct(',')) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(')')?;
        Ok(out)
    }

    /// Tags the function builder with the source line of the upcoming
    /// statement, so every appended statement records where it came from.
    fn tag_line(&mut self) {
        let line = self.toks[self.pos.min(self.toks.len() - 1)].line;
        self.f.at_line(line);
    }

    /// Parses the optional trailing memory-order of an atomic statement:
    /// `, acq` / `, rel` / `, acqrel`, defaulting to relaxed when absent.
    /// Statements never begin with `,`, so a trailing comma unambiguously
    /// introduces an order token.
    fn opt_order(&mut self) -> Result<crate::stmt::MemOrder, ParseError> {
        use crate::stmt::MemOrder;
        if !matches!(self.peek(), Tok::Punct(',')) {
            return Ok(MemOrder::Relaxed);
        }
        self.bump();
        match self.bump() {
            Tok::Name(n) if n == "acq" => Ok(MemOrder::Acquire),
            Tok::Name(n) if n == "rel" => Ok(MemOrder::Release),
            Tok::Name(n) if n == "acqrel" => Ok(MemOrder::AcqRel),
            other => Err(self.error(format!(
                "expected memory order `acq`, `rel` or `acqrel`, found {other:?}"
            ))),
        }
    }

    fn block_body(&mut self) -> Result<(), ParseError> {
        loop {
            self.tag_line();
            match self.peek().clone() {
                Tok::Name(n) if n == "br" => {
                    self.bump();
                    // `br label` or `br cond, l1, l2`
                    let first = match self.peek().clone() {
                        Tok::Punct('?') => {
                            self.bump();
                            None
                        }
                        Tok::Name(_) => Some(self.name()?),
                        other => {
                            return Err(
                                self.error(format!("expected branch target, found {other:?}"))
                            )
                        }
                    };
                    if matches!(self.peek(), Tok::Punct(',')) {
                        self.bump();
                        let t = self.name()?;
                        self.eat_punct(',')?;
                        let e = self.name()?;
                        let (t, e) = (self.lookup_label(&t)?, self.lookup_label(&e)?);
                        // A named condition variable is opaque; just reference it
                        // so typos in cond names surface through the verifier.
                        if let Some(c) = first {
                            if self.labels.contains_key(&c) {
                                return Err(self.error(format!(
                                    "`{c}` is a label; conditions must be `?` or a variable"
                                )));
                            }
                            let _ = self.f.named(&c);
                        }
                        self.f.branch(t, e);
                    } else {
                        let label = first.ok_or_else(|| self.error("`br ?` needs two targets"))?;
                        let t = self.lookup_label(&label)?;
                        self.f.jump(t);
                    }
                    return Ok(());
                }
                Tok::Name(n) if n == "ret" => {
                    self.bump();
                    let val = match self.peek().clone() {
                        Tok::Name(v) if !KEYWORDS.contains(&v.as_str()) => {
                            // Could be the next block's label (`ret` + `label:`)?
                            // Only treat as value if not followed by ':'.
                            if self.peek2() == &Tok::Punct(':') {
                                None
                            } else {
                                let v = self.name()?;
                                Some(self.f.named(&v))
                            }
                        }
                        _ => None,
                    };
                    self.f.ret(val);
                    return Ok(());
                }
                Tok::Name(n) if n == "store" => {
                    self.bump();
                    let p = self.name()?;
                    self.eat_punct(',')?;
                    let v = self.name()?;
                    let (p, v) = (self.f.named(&p), self.f.named(&v));
                    self.f.store(p, v);
                }
                Tok::Name(n) if n == "call" => {
                    self.bump();
                    let callee = self.callee()?;
                    let args = self.args()?;
                    match callee {
                        CalleeSpec::Direct(func) => {
                            self.f.call(None, func, &args);
                        }
                        CalleeSpec::Indirect(v) => {
                            self.f.call_indirect(None, v, &args);
                        }
                    }
                }
                Tok::Name(n) if n == "join" => {
                    self.bump();
                    let h = self.name()?;
                    let h = self.f.named(&h);
                    self.f.join(h);
                }
                Tok::Name(n) if n == "lock" => {
                    self.bump();
                    let l = self.name()?;
                    let l = self.f.named(&l);
                    self.f.lock(l);
                }
                Tok::Name(n) if n == "unlock" => {
                    self.bump();
                    let l = self.name()?;
                    let l = self.f.named(&l);
                    self.f.unlock(l);
                }
                Tok::Name(n) if n == "signal" => {
                    self.bump();
                    let c = self.name()?;
                    let c = self.f.named(&c);
                    self.f.signal(c);
                }
                Tok::Name(n) if n == "wait" => {
                    self.bump();
                    let c = self.name()?;
                    let c = self.f.named(&c);
                    self.f.wait(c);
                }
                Tok::Name(n) if n == "broadcast" => {
                    self.bump();
                    let c = self.name()?;
                    let c = self.f.named(&c);
                    self.f.broadcast(c);
                }
                Tok::Name(n) if n == "barrier_init" => {
                    self.bump();
                    let b = self.name()?;
                    self.eat_punct(',')?;
                    let count = match self.bump() {
                        Tok::Int(i) => i,
                        other => {
                            return Err(
                                self.error(format!("expected barrier count, found {other:?}"))
                            )
                        }
                    };
                    let b = self.f.named(&b);
                    self.f.barrier_init(b, count);
                }
                Tok::Name(n) if n == "barrier_wait" => {
                    self.bump();
                    let b = self.name()?;
                    let b = self.f.named(&b);
                    self.f.barrier_wait(b);
                }
                Tok::Name(n) if n == "atomic_store" => {
                    self.bump();
                    let p = self.name()?;
                    self.eat_punct(',')?;
                    let v = self.name()?;
                    let order = self.opt_order()?;
                    let (p, v) = (self.f.named(&p), self.f.named(&v));
                    self.f.atomic_store(p, v, order);
                }
                Tok::Name(_) => {
                    // Either `label:` (end of this block) or `dst = rhs`.
                    if self.peek2() == &Tok::Punct(':') {
                        // Block fell through without a terminator: default ret.
                        self.f.ret(None);
                        return Ok(());
                    }
                    let dst = self.name()?;
                    self.eat_punct('=')?;
                    self.rhs(&dst)?;
                }
                Tok::Eof => {
                    self.f.ret(None);
                    return Ok(());
                }
                other => return Err(self.error(format!("expected a statement, found {other:?}"))),
            }
        }
    }

    fn rhs(&mut self, dst: &str) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::Punct('&') => {
                self.bump();
                let name = self.name()?;
                match self.resolve_addr(&name)? {
                    AddrTarget::Obj(obj) => {
                        self.f.addr(dst, obj);
                    }
                    AddrTarget::Func(func) => {
                        self.f.addr_of_func(dst, func);
                    }
                }
            }
            Tok::Name(n) if n == "alloc" => {
                self.bump();
                let obj_name = match self.peek().clone() {
                    Tok::Str(s) => {
                        self.bump();
                        s
                    }
                    _ => format!("{dst}.heap"),
                };
                self.f.alloc(dst, &obj_name);
            }
            Tok::Name(n) if n == "load" => {
                self.bump();
                let p = self.name()?;
                let p = self.f.named(&p);
                self.f.load(dst, p);
            }
            Tok::Name(n) if n == "gep" => {
                self.bump();
                let base = self.name()?;
                self.eat_punct(',')?;
                let field = match self.bump() {
                    Tok::Int(i) => i,
                    other => {
                        return Err(self.error(format!("expected field index, found {other:?}")))
                    }
                };
                let base = self.f.named(&base);
                self.f.gep(dst, base, field);
            }
            Tok::Name(n) if n == "phi" => {
                self.bump();
                self.eat_punct('[')?;
                let mut arms = Vec::new();
                loop {
                    let label = self.name()?;
                    self.eat_punct(':')?;
                    let var = self.name()?;
                    let pred = self.lookup_label(&label)?;
                    arms.push((pred, self.f.named(&var)));
                    if matches!(self.peek(), Tok::Punct(',')) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat_punct(']')?;
                self.f.phi(dst, &arms);
            }
            Tok::Name(n) if n == "call" => {
                self.bump();
                let callee = self.callee()?;
                let args = self.args()?;
                match callee {
                    CalleeSpec::Direct(func) => {
                        self.f.call(Some(dst), func, &args);
                    }
                    CalleeSpec::Indirect(v) => {
                        self.f.call_indirect(Some(dst), v, &args);
                    }
                }
            }
            Tok::Name(n) if n == "atomic_load" => {
                self.bump();
                let p = self.name()?;
                let order = self.opt_order()?;
                let p = self.f.named(&p);
                self.f.atomic_load(dst, p, order);
            }
            Tok::Name(n) if n == "atomic_rmw" => {
                self.bump();
                let p = self.name()?;
                self.eat_punct(',')?;
                let v = self.name()?;
                let order = self.opt_order()?;
                let (p, v) = (self.f.named(&p), self.f.named(&v));
                self.f.atomic_rmw(dst, p, v, order);
            }
            Tok::Name(n) if n == "fork" => {
                self.bump();
                let callee = self.callee()?;
                let args = self.args()?;
                if args.len() > 1 {
                    return Err(self.error("fork takes at most one argument"));
                }
                let arg = args.first().copied();
                match callee {
                    CalleeSpec::Direct(func) => {
                        self.f.fork(dst, func, arg);
                    }
                    CalleeSpec::Indirect(v) => {
                        self.f.fork_indirect(dst, v, arg);
                    }
                }
            }
            Tok::Name(_) => {
                let src = self.name()?;
                let src = self.f.named(&src);
                self.f.copy(dst, src);
            }
            other => return Err(self.error(format!("expected an expression, found {other:?}"))),
        }
        Ok(())
    }
}

enum AddrTarget {
    Obj(ObjId),
    Func(FuncId),
}

enum CalleeSpec {
    Direct(FuncId),
    Indirect(VarId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ObjKind;
    use crate::stmt::StmtKind;
    use crate::verify::verify_module;

    #[test]
    fn parse_minimal_main() {
        let m = parse_module("func main() {\nentry:\n  ret\n}").unwrap();
        assert_eq!(m.func_count(), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn parse_figure_1a() {
        let src = r#"
            global x
            global y
            global z
            func foo() {
            entry:
              q = &y
              p2 = &x
              store p2, q      // *p = q
              ret
            }
            func main() {
            entry:
              p = &x
              r = &z
              t = fork foo()
              store p, r       // *p = r
              c = load p       // c = *p
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(m.func_count(), 2);
        assert!(m.global_by_name("x").is_some());
        let forks = m
            .stmts()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Fork { .. }))
            .count();
        assert_eq!(forks, 1);
    }

    #[test]
    fn parse_branches_and_phi() {
        let src = r#"
            global g
            func main() {
            entry:
              br ?, l, r
            l:
              p = &g
              br merge
            r:
              q = &g
              br merge
            merge:
              m = phi [l: p, r: q]
              ret m
            }
        "#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        let phis = m
            .stmts()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Phi { .. }))
            .count();
        assert_eq!(phis, 1);
    }

    #[test]
    fn parse_locals_arrays_and_alloc() {
        let src = r#"
            global array tids
            func main() {
            local buf
            local array cache
            entry:
              p = &buf
              q = &cache
              h = alloc "obj"
              t = &tids
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        let heap = m.objs().filter(|(_, o)| o.kind == ObjKind::Heap).count();
        assert_eq!(heap, 1);
        let arrays = m.objs().filter(|(_, o)| o.is_array).count();
        assert_eq!(arrays, 2);
    }

    #[test]
    fn parse_locks_and_indirect_calls() {
        let src = r#"
            global l1
            func handler(x) {
            entry:
              ret
            }
            func main() {
            entry:
              l = &l1
              fp = &handler
              lock l
              call *fp(l)
              unlock l
              r = call handler(l)
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        let locks = m
            .stmts()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Lock { .. }))
            .count();
        assert_eq!(locks, 1);
    }

    #[test]
    fn parse_sync_intrinsics_roundtrip() {
        let src = r#"
            global c
            global b
            global flag
            func worker() {
            entry:
              cv = &c
              wait cv
              bp = &b
              barrier_wait bp
              fp = &flag
              one = alloc "tok"
              v = atomic_rmw fp, one, acq
              ret
            }
            func main() {
            entry:
              cv = &c
              signal cv
              broadcast cv
              bp = &b
              barrier_init bp, 2
              barrier_wait bp
              fp = &flag
              tok = alloc "tok"
              atomic_store fp, tok, rel
              relaxed = atomic_load fp
              acd = atomic_load fp, acq
              both = atomic_rmw fp, tok, acqrel
              t = fork worker()
              join t
              ret
            }
        "#;
        let m1 = parse_module(src).unwrap();
        verify_module(&m1).unwrap();
        use crate::stmt::MemOrder;
        let mut orders = Vec::new();
        for (_, s) in m1.stmts() {
            match &s.kind {
                StmtKind::AtomicLoad { order, .. }
                | StmtKind::AtomicStore { order, .. }
                | StmtKind::AtomicRmw { order, .. } => orders.push(*order),
                _ => {}
            }
        }
        assert_eq!(
            orders,
            vec![
                MemOrder::Acquire, // worker rmw
                MemOrder::Release, // main store
                MemOrder::Relaxed, // main relaxed load
                MemOrder::Acquire, // main acq load
                MemOrder::AcqRel,  // main acqrel rmw
            ]
        );
        let sync = m1.stmts().filter(|(_, s)| s.is_sync_intrinsic()).count();
        assert_eq!(sync, 11);
        let printed = crate::print::module_to_string(&m1);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        verify_module(&m2).unwrap();
        assert_eq!(printed, crate::print::module_to_string(&m2));
    }

    #[test]
    fn bad_memory_order_is_rejected() {
        let src = "global f\nfunc main() {\nentry:\n  p = &f\n  q = alloc\n  atomic_store p, q, sequential\n  ret\n}";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("memory order"), "{err}");
    }

    #[test]
    fn error_has_position() {
        let err = parse_module("func main() {\nentry:\n  p = load\n  ret\n}").unwrap_err();
        assert_eq!(err.line, 4); // `ret` is where the bad operand shows up
        assert!(err.message.contains("keyword"));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let err = parse_module("func main() {\nentry:\n  call nope()\n  ret\n}").unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn unknown_label_is_rejected() {
        let err = parse_module("func main() {\nentry:\n  br nowhere\n}").unwrap_err();
        assert!(err.message.contains("unknown label"));
    }

    #[test]
    fn duplicate_function_is_rejected() {
        let err = parse_module("func f() {\ne:\n ret\n}\nfunc f() {\ne:\n ret\n}").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn statement_lines_are_recorded() {
        let src = "func main() {\nentry:\n  p = alloc\n  q = p\n  store q, p\n  ret\n}";
        let m = parse_module(src).unwrap();
        let lines: Vec<Option<u32>> = m.stmt_ids().map(|s| m.stmt_line(s)).collect();
        assert_eq!(lines, vec![Some(3), Some(4), Some(5)]);
        // Programmatic modules carry no lines.
        let mut mb = crate::builder::ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        f.addr("p", g);
        f.ret(None);
        f.finish();
        let m2 = mb.build();
        assert_eq!(m2.stmt_line(crate::ids::StmtId::new(0)), None);
    }

    #[test]
    fn lint_directives_are_collected() {
        let src = r#"
            global g
            func main() {
            entry:
              p = &g           // fsam-lint: allow(FL0001, FL0003)
              // fsam-lint: allow(FL0002)
              store p, p       // an ordinary trailing comment
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        let dirs = m.lint_directives();
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].codes, vec!["FL0001", "FL0003"]);
        assert_eq!(dirs[1].codes, vec!["FL0002"]);
        assert!(dirs[0].line < dirs[1].line);
    }

    #[test]
    fn malformed_lint_directive_is_rejected() {
        for bad in [
            "func main() {\nentry:\n  ret // fsam-lint: deny(FL0001)\n}",
            "func main() {\nentry:\n  ret // fsam-lint: allow()\n}",
            "func main() {\nentry:\n  ret // fsam-lint: allow(FL-1)\n}",
        ] {
            let err = parse_module(bad).unwrap_err();
            assert!(err.message.contains("fsam-lint"), "{err}");
        }
    }

    #[test]
    fn roundtrip_through_printer() {
        let src = r#"
            global x
            global array arr
            extern func ext(a)
            func worker(w) {
            entry:
              v = load w
              store w, v
              f = gep v, 3
              br ?, one, two
            one:
              a = &x
              br done
            two:
              b = &x
              br done
            done:
              m = phi [one: a, two: b]
              ret m
            }
            func main() {
            local slot
            entry:
              p = &slot
              t = fork worker(p)
              join t
              lock p
              unlock p
              h = alloc "blob"
              r = call worker(h)
              call ext(r)
              ret
            }
        "#;
        let m1 = parse_module(src).unwrap();
        verify_module(&m1).unwrap();
        let printed = crate::print::module_to_string(&m1);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        verify_module(&m2).unwrap();
        // Same shape: counts of everything match.
        assert_eq!(m1.func_count(), m2.func_count());
        assert_eq!(m1.stmt_count(), m2.stmt_count());
        assert_eq!(m1.var_count(), m2.var_count());
        assert_eq!(m1.obj_count(), m2.obj_count());
        // And printing again is a fixed point.
        assert_eq!(printed, crate::print::module_to_string(&m2));
    }
}

//! Structural and SSA well-formedness checks.
//!
//! The builders and the parser are permissive; [`verify_module`] enforces the
//! partial-SSA discipline the analyses rely on (§2.1 of the paper):
//! every top-level variable has exactly one definition that dominates all its
//! uses, phis are grouped at block heads with one arm per predecessor, and
//! direct calls pass the right number of arguments.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::dom::DomTree;
use crate::ids::{BlockId, FuncId, ObjId, StmtId, VarId};
use crate::module::{Function, Module};
use crate::stmt::{Callee, StmtKind, Terminator};

/// A well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the violation occurred, if attributable.
    pub func: Option<FuncId>,
    /// Offending statement, if attributable.
    pub stmt: Option<StmtId>,
    /// Violation category.
    pub kind: VerifyErrorKind,
    /// Human-readable message.
    pub message: String,
}

/// The category of a [`VerifyError`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A variable has zero or multiple definitions.
    SsaDef,
    /// A use is not dominated by its definition.
    SsaDominance,
    /// Phi arms don't match block predecessors or phi is misplaced.
    Phi,
    /// Wrong argument count at a direct call/fork.
    Arity,
    /// A variable is used in a function it does not belong to.
    VarScope,
    /// No `main` function.
    NoEntry,
    /// Misuse of a synchronization intrinsic: `wait` on an object that is
    /// never signalled, or `barrier_wait` with no reaching `barrier_init`.
    Sync,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies the whole module. Returns all violations found.
///
/// # Errors
///
/// Returns `Err` with every violation if the module is ill-formed.
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();

    if module.entry().is_none() {
        errors.push(VerifyError {
            func: None,
            stmt: None,
            kind: VerifyErrorKind::NoEntry,
            message: "module has no `main` function".to_owned(),
        });
    }

    // Definition sites per variable.
    let mut defs: HashMap<VarId, Vec<StmtId>> = HashMap::new();
    for (sid, stmt) in module.stmts() {
        if let Some(d) = stmt.def() {
            defs.entry(d).or_default().push(sid);
        }
    }

    for v in module.var_ids() {
        let info = module.var(v);
        let is_param = module.func(info.func).params.contains(&v);
        let n_defs = defs.get(&v).map_or(0, |d| d.len());
        if is_param && n_defs > 0 {
            errors.push(VerifyError {
                func: Some(info.func),
                stmt: defs[&v].first().copied(),
                kind: VerifyErrorKind::SsaDef,
                message: format!("parameter `{}` is redefined", module.var_name(v)),
            });
        } else if !is_param && n_defs == 0 {
            // Used-but-never-defined is only an error if it is actually used.
            let used = module.stmts().any(|(_, s)| s.uses().contains(&v));
            if used {
                errors.push(VerifyError {
                    func: Some(info.func),
                    stmt: None,
                    kind: VerifyErrorKind::SsaDef,
                    message: format!(
                        "variable `{}` is used but never defined",
                        module.var_name(v)
                    ),
                });
            }
        } else if n_defs > 1 {
            errors.push(VerifyError {
                func: Some(info.func),
                stmt: defs[&v].get(1).copied(),
                kind: VerifyErrorKind::SsaDef,
                message: format!(
                    "variable `{}` has {} definitions (SSA requires one)",
                    module.var_name(v),
                    n_defs
                ),
            });
        }
    }

    // Per-function checks.
    for func in module.funcs() {
        if func.is_external {
            continue;
        }
        let dom = DomTree::compute(func);
        let preds = func.predecessors();

        // Positions of statements within blocks, for same-block dominance.
        let mut pos: HashMap<StmtId, usize> = HashMap::new();
        for (_, block) in func.blocks() {
            for (i, &s) in block.stmts.iter().enumerate() {
                pos.insert(s, i);
            }
        }

        for (bid, block) in func.blocks() {
            if !dom.is_reachable(bid) {
                continue;
            }
            let mut seen_non_phi = false;
            for &sid in &block.stmts {
                let stmt = module.stmt(sid);
                match &stmt.kind {
                    StmtKind::Phi { arms, .. } => {
                        if seen_non_phi {
                            errors.push(VerifyError {
                                func: Some(func.id),
                                stmt: Some(sid),
                                kind: VerifyErrorKind::Phi,
                                message: format!(
                                    "phi `{}` is not at the head of its block",
                                    module.describe_stmt(sid)
                                ),
                            });
                        }
                        let mut arm_preds: Vec<BlockId> = arms.iter().map(|a| a.pred).collect();
                        arm_preds.sort();
                        let mut block_preds: Vec<BlockId> = preds[bid]
                            .iter()
                            .copied()
                            .filter(|&p| dom.is_reachable(p))
                            .collect();
                        block_preds.sort();
                        block_preds.dedup();
                        if arm_preds != block_preds {
                            errors.push(VerifyError {
                                func: Some(func.id),
                                stmt: Some(sid),
                                kind: VerifyErrorKind::Phi,
                                message: format!(
                                    "phi arms {:?} don't match predecessors {:?} of {}",
                                    arm_preds, block_preds, bid
                                ),
                            });
                        }
                        // Phi uses must dominate the corresponding predecessor.
                        for arm in arms {
                            check_use_dominated(
                                module,
                                func.id,
                                &dom,
                                &pos,
                                &defs,
                                arm.var,
                                sid,
                                UsePoint::EndOfBlock(arm.pred),
                                &mut errors,
                            );
                        }
                    }
                    _ => {
                        seen_non_phi = true;
                        for u in stmt.uses() {
                            check_use_dominated(
                                module,
                                func.id,
                                &dom,
                                &pos,
                                &defs,
                                u,
                                sid,
                                UsePoint::At(bid),
                                &mut errors,
                            );
                        }
                    }
                }

                // Variable scope: all operands belong to this function.
                let mut operands = stmt.uses();
                if let Some(d) = stmt.def() {
                    operands.push(d);
                }
                for v in operands {
                    if module.var(v).func != func.id {
                        errors.push(VerifyError {
                            func: Some(func.id),
                            stmt: Some(sid),
                            kind: VerifyErrorKind::VarScope,
                            message: format!(
                                "`{}` used outside its function in {}",
                                module.var_name(v),
                                module.describe_stmt(sid)
                            ),
                        });
                    }
                }

                // Arity of direct calls/forks.
                match &stmt.kind {
                    StmtKind::Call {
                        callee: Callee::Direct(f),
                        args,
                        ..
                    } => {
                        let want = module.func(*f).params.len();
                        if args.len() != want {
                            errors.push(VerifyError {
                                func: Some(func.id),
                                stmt: Some(sid),
                                kind: VerifyErrorKind::Arity,
                                message: format!(
                                    "call to `{}` passes {} args, expected {}",
                                    module.func(*f).name,
                                    args.len(),
                                    want
                                ),
                            });
                        }
                    }
                    StmtKind::Fork {
                        callee: Callee::Direct(f),
                        arg,
                        ..
                    } => {
                        let want = module.func(*f).params.len();
                        let got = usize::from(arg.is_some());
                        if got != want {
                            errors.push(VerifyError {
                                func: Some(func.id),
                                stmt: Some(sid),
                                kind: VerifyErrorKind::Arity,
                                message: format!(
                                    "fork of `{}` passes {} args, expected {}",
                                    module.func(*f).name,
                                    got,
                                    want
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    sync_checks(module, &defs, &mut errors);

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Condvar/barrier discipline (DESIGN §1.9): a `wait` whose condvar is never
/// the target of any `signal`/`broadcast` in the module would block forever,
/// and a `barrier_wait` needs a `barrier_init` that can actually have run.
/// Only operands resolvable through `Addr`/`Copy` chains are checked — a
/// condvar pointer that flows through memory, a phi or a call boundary is
/// out of reach for a structural check and is skipped rather than
/// misreported.
fn sync_checks(module: &Module, defs: &HashMap<VarId, Vec<StmtId>>, errors: &mut Vec<VerifyError>) {
    let mut signal_roots: HashSet<ObjId> = HashSet::new();
    let mut init_sites: Vec<(StmtId, ObjId)> = Vec::new();
    for (sid, stmt) in module.stmts() {
        match &stmt.kind {
            StmtKind::Signal { cond } | StmtKind::Broadcast { cond } => {
                if let Some(o) = resolve_root(module, defs, *cond) {
                    signal_roots.insert(o);
                }
            }
            StmtKind::BarrierInit { bar, .. } => {
                if let Some(o) = resolve_root(module, defs, *bar) {
                    init_sites.push((sid, o));
                }
            }
            _ => {}
        }
    }
    for (sid, stmt) in module.stmts() {
        match &stmt.kind {
            StmtKind::Wait { cond } => {
                let Some(obj) = resolve_root(module, defs, *cond) else {
                    continue;
                };
                if !signal_roots.contains(&obj) {
                    errors.push(VerifyError {
                        func: Some(stmt.func),
                        stmt: Some(sid),
                        kind: VerifyErrorKind::Sync,
                        message: format!(
                            "wait on `{}`, which no signal/broadcast in the module targets",
                            module.obj(obj).name
                        ),
                    });
                }
            }
            StmtKind::BarrierWait { bar } => {
                let Some(obj) = resolve_root(module, defs, *bar) else {
                    continue;
                };
                let inits: Vec<StmtId> = init_sites
                    .iter()
                    .filter(|&&(_, o)| o == obj)
                    .map(|&(s, _)| s)
                    .collect();
                if inits.is_empty() {
                    errors.push(VerifyError {
                        func: Some(stmt.func),
                        stmt: Some(sid),
                        kind: VerifyErrorKind::Sync,
                        message: format!(
                            "barrier_wait on `{}` with no barrier_init in the module",
                            module.obj(obj).name
                        ),
                    });
                    continue;
                }
                // When every init of this barrier lives in the waiting
                // function, at least one must be able to reach the wait
                // along the CFG; inits in other functions may reach it
                // through calls/forks and are given the benefit of the doubt.
                if inits.iter().any(|&i| module.stmt(i).func != stmt.func) {
                    continue;
                }
                let func = module.func(stmt.func);
                let reached = inits
                    .iter()
                    .any(|&i| init_reaches_wait(module, func, i, sid));
                if !reached {
                    errors.push(VerifyError {
                        func: Some(stmt.func),
                        stmt: Some(sid),
                        kind: VerifyErrorKind::Sync,
                        message: format!(
                            "no barrier_init of `{}` reaches this barrier_wait",
                            module.obj(obj).name
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Resolves a variable to the object whose address it holds, following
/// intra-function `Copy` chains back to an `Addr` definition. Returns
/// `None` for anything data-dependent (loads, phis, geps, call results,
/// parameters).
fn resolve_root(
    module: &Module,
    defs: &HashMap<VarId, Vec<StmtId>>,
    mut var: VarId,
) -> Option<ObjId> {
    // Bounded walk: guards against malformed cyclic copy chains, which the
    // SSA checks report separately.
    for _ in 0..=module.var_count() {
        let [d] = defs.get(&var)?.as_slice() else {
            return None;
        };
        match &module.stmt(*d).kind {
            StmtKind::Addr { obj, .. } => return Some(*obj),
            StmtKind::Copy { src, .. } => var = *src,
            _ => return None,
        }
    }
    None
}

fn block_successors(func: &Function, b: BlockId) -> Vec<BlockId> {
    match func.blocks[b].term {
        Terminator::Jump(t) => vec![t],
        Terminator::Branch(t, e) => vec![t, e],
        Terminator::Ret(_) => Vec::new(),
    }
}

/// Whether `init` can execute before `wait` on some CFG path: same block
/// with init first, or the wait's block is CFG-reachable from the init's.
fn init_reaches_wait(module: &Module, func: &Function, init: StmtId, wait: StmtId) -> bool {
    let (ib, wb) = (module.stmt(init).block, module.stmt(wait).block);
    if ib == wb {
        let stmts = &func.blocks[ib].stmts;
        let ip = stmts.iter().position(|&s| s == init);
        let wp = stmts.iter().position(|&s| s == wait);
        if ip < wp {
            return true;
        }
        // Otherwise the init might still loop back around to the wait.
    }
    let mut seen = vec![false; func.blocks.len()];
    let mut work = block_successors(func, ib);
    while let Some(b) = work.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        if b == wb {
            return true;
        }
        work.extend(block_successors(func, b));
    }
    false
}

enum UsePoint {
    /// Ordinary use at the statement's own block.
    At(BlockId),
    /// Phi use, conceptually at the end of the predecessor block.
    EndOfBlock(BlockId),
}

#[allow(clippy::too_many_arguments)]
fn check_use_dominated(
    module: &Module,
    func: FuncId,
    dom: &DomTree,
    pos: &HashMap<StmtId, usize>,
    defs: &HashMap<VarId, Vec<StmtId>>,
    var: VarId,
    use_stmt: StmtId,
    point: UsePoint,
    errors: &mut Vec<VerifyError>,
) {
    if module.var(var).func != func {
        return; // reported as VarScope elsewhere
    }
    if module.func(func).params.contains(&var) {
        return; // params dominate everything
    }
    let Some(def_sites) = defs.get(&var) else {
        return; // reported as SsaDef elsewhere
    };
    let [def_site] = def_sites.as_slice() else {
        return; // multiple defs reported elsewhere
    };
    let def_stmt = module.stmt(*def_site);
    if def_stmt.func != func {
        return;
    }
    let def_block = def_stmt.block;
    let dominated = match point {
        UsePoint::At(use_block) => {
            if def_block == use_block {
                pos[def_site] < pos[&use_stmt]
            } else {
                dom.dominates(def_block, use_block)
            }
        }
        // A phi use must be available at the end of the predecessor block:
        // the def block must dominate the predecessor (reflexively).
        UsePoint::EndOfBlock(pred) => dom.dominates(def_block, pred),
    };
    if !dominated {
        errors.push(VerifyError {
            func: Some(func),
            stmt: Some(use_stmt),
            kind: VerifyErrorKind::SsaDominance,
            message: format!(
                "use of `{}` in `{}` is not dominated by its definition",
                module.var_name(var),
                module.describe_stmt(use_stmt)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn well_formed_module_passes() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        let p = f.addr("p", g);
        let q = f.copy("q", p);
        f.store(q, p);
        f.ret(None);
        f.finish();
        assert!(verify_module(&mb.build()).is_ok());
    }

    #[test]
    fn double_definition_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        f.addr("p", g);
        f.addr("p", g); // redefines p
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::SsaDef));
    }

    #[test]
    fn use_before_def_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        let q = f.named("q"); // forward reference, never defined before use
        f.store(q, q);
        f.addr("q2", g);
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::SsaDef));
    }

    #[test]
    fn def_in_one_branch_does_not_dominate_merge() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        let l = f.block("l");
        let r = f.block("r");
        let merge = f.block("merge");
        f.branch(l, r);
        f.switch_to(l);
        let p = f.addr("p", g);
        f.jump(merge);
        f.switch_to(r);
        f.jump(merge);
        f.switch_to(merge);
        f.store(p, p); // p does not dominate merge
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::SsaDominance));
    }

    #[test]
    fn phi_arms_must_match_preds() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        let l = f.block("l");
        let r = f.block("r");
        let merge = f.block("merge");
        f.branch(l, r);
        f.switch_to(l);
        let p = f.addr("p", g);
        f.jump(merge);
        f.switch_to(r);
        f.jump(merge);
        f.switch_to(merge);
        f.phi("m", &[(l, p)]); // missing arm for r
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::Phi));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let callee = mb.declare_func("callee", &["a", "b"]);
        let mut f = mb.define_func(callee);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main", &[]);
        let g = f.local("l");
        let p = f.addr("p", g);
        f.call(None, callee, &[p]); // one arg, needs two
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::Arity));
    }

    #[test]
    fn missing_main_is_reported() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("not_main", &[]);
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs.iter().any(|e| e.kind == VerifyErrorKind::NoEntry));
    }

    #[test]
    fn wait_without_signal_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let c = mb.global("c");
        let mut f = mb.func("main", &[]);
        let cv = f.addr("cv", c);
        f.wait(cv);
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == VerifyErrorKind::Sync && e.message.contains("wait on")));
    }

    #[test]
    fn wait_with_signal_elsewhere_passes() {
        let mut mb = ModuleBuilder::new();
        let c = mb.global("c");
        let worker = mb.declare_func("worker", &[]);
        let mut f = mb.define_func(worker);
        let cv = f.addr("cv", c);
        f.signal(cv);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main", &[]);
        let cv = f.addr("cv", c);
        let cv2 = f.copy("cv2", cv); // through a copy chain
        let _t = f.fork("t", worker, None);
        f.wait(cv2);
        f.ret(None);
        f.finish();
        verify_module(&mb.build()).unwrap();
    }

    #[test]
    fn broadcast_also_satisfies_wait() {
        let mut mb = ModuleBuilder::new();
        let c = mb.global("c");
        let mut f = mb.func("main", &[]);
        let cv = f.addr("cv", c);
        f.broadcast(cv);
        f.wait(cv);
        f.ret(None);
        f.finish();
        verify_module(&mb.build()).unwrap();
    }

    #[test]
    fn barrier_wait_without_init_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let b = mb.global("b");
        let mut f = mb.func("main", &[]);
        let bp = f.addr("bp", b);
        f.barrier_wait(bp);
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == VerifyErrorKind::Sync && e.message.contains("no barrier_init")));
    }

    #[test]
    fn barrier_init_after_wait_does_not_reach() {
        let mut mb = ModuleBuilder::new();
        let b = mb.global("b");
        let mut f = mb.func("main", &[]);
        let bp = f.addr("bp", b);
        f.barrier_wait(bp);
        f.barrier_init(bp, 2); // too late: init follows the wait
        f.ret(None);
        f.finish();
        let errs = verify_module(&mb.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == VerifyErrorKind::Sync && e.message.contains("reaches")));
    }

    #[test]
    fn barrier_init_reaching_wait_passes() {
        let mut mb = ModuleBuilder::new();
        let b = mb.global("b");
        let worker = mb.declare_func("worker", &[]);
        let mut f = mb.define_func(worker);
        let bp = f.addr("bp", b);
        f.barrier_wait(bp); // init lives in main: benefit of the doubt
        f.ret(None);
        f.finish();
        let mut f = mb.func("main", &[]);
        let bp = f.addr("bp", b);
        f.barrier_init(bp, 2);
        let _t = f.fork("t", worker, None);
        f.barrier_wait(bp);
        f.ret(None);
        f.finish();
        verify_module(&mb.build()).unwrap();
    }

    #[test]
    fn unresolvable_sync_operand_is_skipped() {
        // A condvar pointer loaded from memory can't be structurally
        // resolved; the check must stay silent rather than misreport.
        let mut mb = ModuleBuilder::new();
        let slot = mb.global("slot");
        let mut f = mb.func("main", &[]);
        let sp = f.addr("sp", slot);
        let cv = f.load("cv", sp);
        f.wait(cv);
        f.ret(None);
        f.finish();
        verify_module(&mb.build()).unwrap();
    }

    #[test]
    fn loop_phi_with_back_edge_is_accepted() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g");
        let mut f = mb.func("main", &[]);
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let entry = f.current_block();
        let init = f.addr("init", g);
        f.jump(header);
        f.switch_to(header);
        let next = f.named("next"); // forward ref, defined in body
        f.phi("cur", &[(entry, init), (body, next)]);
        f.branch(body, exit);
        f.switch_to(body);
        let cur = f.named("cur");
        f.copy("next", cur);
        f.jump(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        verify_module(&mb.build()).unwrap();
    }
}
